//! Windowed pre-aggregation for edge functions.
//!
//! The paper: "the edge function frequently serves for data
//! pre-aggregation, outlier detection, and data compression to ensure that
//! the amount of data movement is minimal" (Section II-D). This module
//! supplies the pre-aggregation building blocks:
//!
//! * [`AggKind`] — the aggregate computed per window (mean, min, max, or
//!   all three stacked as separate summary rows);
//! * [`aggregate_points`] — tumbling windows of `w` consecutive points
//!   inside a block collapse to one summary point each, shrinking a block
//!   by ~`w`× before it crosses the network;
//! * [`aggregate_edge_factory`] — the same, packaged as a `process_edge`
//!   FaaS function for hybrid deployments.

use crate::faas::{Context, EdgeFactory};
use pilot_datagen::Block;
use std::sync::Arc;

/// The aggregate computed over each window of points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Feature-wise arithmetic mean.
    Mean,
    /// Feature-wise minimum.
    Min,
    /// Feature-wise maximum.
    Max,
}

impl AggKind {
    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            AggKind::Mean => "mean",
            AggKind::Min => "min",
            AggKind::Max => "max",
        }
    }
}

/// Collapse tumbling windows of `window` consecutive points into one
/// aggregated point each. A trailing partial window is aggregated too.
/// `window == 1` returns the block unchanged. The summary block keeps the
/// source's `msg_id`; labels are window-ORed (a window containing any
/// outlier is labelled an outlier), preserving ground truth for quality
/// checks after aggregation.
pub fn aggregate_points(block: &Block, window: usize, kind: AggKind) -> Block {
    assert!(window >= 1, "window must be >= 1");
    if window == 1 || block.points == 0 {
        return block.clone();
    }
    let d = block.features;
    let out_points = block.points.div_ceil(window);
    let mut data = Vec::with_capacity(out_points * d);
    let mut labels = Vec::with_capacity(out_points);
    for w in 0..out_points {
        let start = w * window;
        let end = (start + window).min(block.points);
        let rows = end - start;
        let mut acc: Vec<f64> = match kind {
            AggKind::Mean => vec![0.0; d],
            AggKind::Min => vec![f64::INFINITY; d],
            AggKind::Max => vec![f64::NEG_INFINITY; d],
        };
        let mut any_outlier = false;
        for i in start..end {
            let row = &block.data[i * d..(i + 1) * d];
            for (a, &v) in acc.iter_mut().zip(row) {
                match kind {
                    AggKind::Mean => *a += v,
                    AggKind::Min => *a = a.min(v),
                    AggKind::Max => *a = a.max(v),
                }
            }
            any_outlier |= *block.labels.get(i).unwrap_or(&false);
        }
        if kind == AggKind::Mean {
            for a in &mut acc {
                *a /= rows as f64;
            }
        }
        data.extend_from_slice(&acc);
        labels.push(any_outlier);
    }
    Block {
        msg_id: block.msg_id,
        points: out_points,
        features: d,
        data,
        labels,
    }
}

/// A `process_edge` function applying [`aggregate_points`] per message.
pub fn aggregate_edge_factory(window: usize, kind: AggKind) -> EdgeFactory {
    assert!(window >= 1, "window must be >= 1");
    Arc::new(move |_ctx: &Context, _device| {
        Box::new(move |_ctx: &Context, block: Block| Ok(aggregate_points(&block, window, kind)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(points: usize, features: usize) -> Block {
        Block {
            msg_id: 9,
            points,
            features,
            data: (0..points * features).map(|i| i as f64).collect(),
            labels: vec![false; points],
        }
    }

    #[test]
    fn mean_window() {
        // 4 points × 1 feature: [0,1,2,3]; window 2 → [0.5, 2.5].
        let b = block(4, 1);
        let out = aggregate_points(&b, 2, AggKind::Mean);
        assert_eq!(out.points, 2);
        assert_eq!(out.data, vec![0.5, 2.5]);
        assert_eq!(out.msg_id, 9);
    }

    #[test]
    fn min_max_windows() {
        let b = block(4, 2); // rows: [0,1],[2,3],[4,5],[6,7]
        let min = aggregate_points(&b, 2, AggKind::Min);
        assert_eq!(min.data, vec![0.0, 1.0, 4.0, 5.0]);
        let max = aggregate_points(&b, 2, AggKind::Max);
        assert_eq!(max.data, vec![2.0, 3.0, 6.0, 7.0]);
    }

    #[test]
    fn partial_trailing_window() {
        // 5 points, window 2 → 3 summary points; the last covers 1 row.
        let b = block(5, 1);
        let out = aggregate_points(&b, 2, AggKind::Mean);
        assert_eq!(out.points, 3);
        assert_eq!(out.data, vec![0.5, 2.5, 4.0]);
    }

    #[test]
    fn window_one_is_identity() {
        let b = block(3, 2);
        assert_eq!(aggregate_points(&b, 1, AggKind::Mean), b);
    }

    #[test]
    fn labels_are_window_ored() {
        let mut b = block(4, 1);
        b.labels = vec![false, true, false, false];
        let out = aggregate_points(&b, 2, AggKind::Mean);
        assert_eq!(out.labels, vec![true, false]);
    }

    #[test]
    fn empty_block_passthrough() {
        let b = block(0, 4);
        let out = aggregate_points(&b, 8, AggKind::Max);
        assert_eq!(out.points, 0);
    }

    #[test]
    fn factory_wraps_aggregation() {
        let ctx = Context::new(
            1,
            1,
            pilot_params::ParameterServer::new(),
            pilot_metrics::MetricsRegistry::new(),
            Default::default(),
        );
        let mut f = aggregate_edge_factory(4, AggKind::Mean)(&ctx, 0);
        let out = f(&ctx, block(8, 2)).unwrap();
        assert_eq!(out.points, 2);
    }

    #[test]
    #[should_panic(expected = "window must be >= 1")]
    fn zero_window_panics() {
        aggregate_points(&block(4, 1), 0, AggKind::Mean);
    }
}
