//! The feedback controller: closes the loop from the telemetry plane back
//! into the live knob table (DESIGN.md §15).
//!
//! ```text
//!   gauges ──▶ TelemetrySampler ──▶ frames ─┐
//!   spans  ──▶ MetricsRegistry ──▶ snapshot ┼─▶ attribute() ─▶ dominant
//!   broker ──▶ total_lag ────────────────────┘        │
//!                                                     ▼
//!                 ControllerCore (hysteresis, cooldowns, bounds)
//!                                                     │ Action
//!                     ┌───────────────┬───────────────┼──────────────┐
//!                     ▼               ▼               ▼              ▼
//!              scale_processors  ComputePool      TuneTable     cloud_slot
//!              (consumer pool)   set_width      (batch/prefetch  .replace
//!                                               /fetch cells)   (migration)
//! ```
//!
//! A controller thread ticks at `tick`, samples total consumer-group lag,
//! runs [`pilot_metrics::attribute`] over the recent span/frame window to
//! find the dominant component, and feeds the [`ControllerCore`] decision
//! machine. Released actions are applied to the live pipeline and appended
//! to a journal of [`ControlEvent`]s; two gauges export the loop's own
//! activity to the same telemetry plane it consumes:
//! [`GAUGE_CONTROL_ACTIONS`] (actions applied so far) and
//! [`GAUGE_CONTROL_LAST_CAUSE`] (coded cause of the most recent action).
//!
//! With `PipelineConfig::controller` unset (the default) none of this
//! exists: no thread, no gauges, a fixed-width compute pool, and stage
//! behaviour bit-identical to the frozen-config seed
//! (`tests/control.rs::defaults_leave_zero_footprint`).

mod action;
mod core;

pub use action::{Action, Cause, ControlEvent, Knob, Verdict};
pub use core::{BottleneckStage, ControlBounds, ControllerCore, Observation};

use crate::faas::CloudFactory;
use crate::runtime::PipelineCtl;
use parking_lot::Mutex;
use pilot_metrics::Component;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gauge counting actions the controller has applied (monotonic).
pub const GAUGE_CONTROL_ACTIONS: &str = "control.actions";

/// Gauge holding the coded cause of the most recent action: 0 = none yet,
/// 1 = lag-over (unattributed), 2 = lag-under, 3–8 = lag-over attributed
/// to producers / edge link / broker / cloud link / processors / other,
/// 9 = externally requested (the gateway's `POST /control/tune`).
pub const GAUGE_CONTROL_LAST_CAUSE: &str = "control.last_cause";

/// Model-migration lever: the pair of processing factories the controller
/// may swap between when a WAN link becomes the bottleneck (paper Section
/// II-D adaptation). `to_edge` should be the cheaper/lossier edge-side
/// variant, `to_cloud` the full-fidelity one restored after recovery.
#[derive(Clone)]
pub struct MigrationPolicy {
    /// Factory swapped in by [`Action::MigrateToEdge`].
    pub to_edge: CloudFactory,
    /// Factory restored by [`Action::MigrateToCloud`].
    pub to_cloud: CloudFactory,
}

impl std::fmt::Debug for MigrationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MigrationPolicy").finish_non_exhaustive()
    }
}

/// Controller tuning. Attach via
/// [`PipelineConfig::controller`](crate::pipeline::PipelineConfig) (the
/// runtime spawns it with the pipeline) or
/// [`RunningPipeline::attach_controller`](crate::runtime::RunningPipeline::attach_controller).
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Sampling interval of the control loop.
    pub tick: Duration,
    /// Consecutive same-direction observations required before acting.
    pub hysteresis: usize,
    /// Minimum spacing between two actions on the *same* knob. Distinct
    /// knobs may fire on consecutive ticks (escalation).
    pub cooldown: Duration,
    /// Act (scale up) when total lag exceeds this many records.
    pub lag_bound: u64,
    /// Walk knobs back down when total lag falls to or below this.
    pub lag_low: u64,
    /// Per-knob bounds; see [`ControlBounds::from_planner`] to derive the
    /// processor ceiling from an analytic plan.
    pub bounds: ControlBounds,
    /// Window width for [`pilot_metrics::attribute`], µs.
    pub attribution_window_us: u64,
    /// Whether to run bottleneck attribution at all (needs the telemetry
    /// plane; `false` gives the legacy lag-only behaviour at lower cost).
    pub use_attribution: bool,
    /// Optional model-migration lever.
    pub migration: Option<MigrationPolicy>,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            tick: Duration::from_millis(50),
            hysteresis: 2,
            cooldown: Duration::from_millis(200),
            lag_bound: 16,
            lag_low: 2,
            bounds: ControlBounds::default(),
            attribution_window_us: 250_000,
            use_attribution: true,
            migration: None,
        }
    }
}

impl ControllerConfig {
    pub(crate) fn validate(&self) -> Result<(), String> {
        if self.tick.is_zero() {
            return Err("controller tick must be > 0".into());
        }
        if self.hysteresis == 0 {
            return Err("controller hysteresis must be >= 1".into());
        }
        if self.lag_low > self.lag_bound {
            return Err(format!(
                "controller lag_low {} exceeds lag_bound {}",
                self.lag_low, self.lag_bound
            ));
        }
        if self.attribution_window_us == 0 {
            return Err("controller attribution_window_us must be > 0".into());
        }
        self.bounds.validate()
    }
}

/// Handle to a running controller thread: stop it, read its journal.
pub struct ControllerHandle {
    stop: Arc<AtomicBool>,
    events: Arc<Mutex<Vec<ControlEvent>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ControllerHandle {
    /// Stop the controller and join its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// The action journal so far (append-only; clones the entries).
    pub fn events(&self) -> Vec<ControlEvent> {
        self.events.lock().clone()
    }
}

impl Drop for ControllerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The controller loop (spawned by the runtime when
/// `PipelineConfig::controller` is set, or by `attach_controller`).
pub(crate) struct Controller;

impl Controller {
    pub(crate) fn spawn(ctl: Arc<PipelineCtl>, config: ControllerConfig) -> ControllerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let events = Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let events2 = Arc::clone(&events);
        let thread = std::thread::Builder::new()
            .name("pilot-edge-controller".into())
            .spawn(move || Self::run(&ctl, &config, &stop2, &events2))
            .expect("spawn controller thread");
        ControllerHandle {
            stop,
            events,
            thread: Some(thread),
        }
    }

    fn run(
        ctl: &PipelineCtl,
        config: &ControllerConfig,
        stop: &AtomicBool,
        events: &Mutex<Vec<ControlEvent>>,
    ) {
        let metrics = ctl.shared.metrics();
        let actions_gauge = metrics.gauge(GAUGE_CONTROL_ACTIONS);
        let cause_gauge = metrics.gauge(GAUGE_CONTROL_LAST_CAUSE);
        let started = Instant::now();
        let mut core = ControllerCore::from_config(config);
        while !stop.load(Ordering::Relaxed) && !ctl.is_stopped() && !ctl.all_done() {
            std::thread::sleep(config.tick);
            let (bottleneck, label, gauges) = Self::sense(ctl, config);
            let obs = Observation {
                now: started.elapsed(),
                lag: ctl.total_lag(),
                bottleneck,
                bottleneck_label: label,
                processors: ctl.processor_count(),
                compute_width: ctl.shared.ctx.compute.threads(),
                batch_max_bytes: ctl.shared.tune.batch_max_bytes(),
                prefetch_depth: ctl.shared.tune.prefetch_depth(),
                fetch_max: ctl.shared.tune.fetch_max(),
            };
            let Some((cause, action)) = core.observe(&obs) else {
                continue;
            };
            if Self::apply(ctl, config, &action) {
                actions_gauge.incr();
                cause_gauge.set(cause_code(cause.verdict, obs.bottleneck));
                events.lock().push(ControlEvent {
                    at: obs.now,
                    before: action.before(),
                    after: action.after(),
                    cause,
                    action,
                    gauges,
                });
            }
        }
    }

    /// One sensing pass: the latest gauge frame (for the journal) and —
    /// when attribution is on and telemetry exists — the dominant
    /// component of the most recent attribution window, mapped onto the
    /// planner's stage model via the pipeline's own link names.
    #[allow(clippy::type_complexity)]
    fn sense(
        ctl: &PipelineCtl,
        config: &ControllerConfig,
    ) -> (Option<BottleneckStage>, Option<String>, Vec<(String, i64)>) {
        let Some(sampler) = ctl.telemetry_sampler() else {
            return (None, None, Vec::new());
        };
        let gauges: Vec<(String, i64)> = sampler
            .latest()
            .map(|f| f.values.iter().map(|(n, v)| (n.to_string(), *v)).collect())
            .unwrap_or_default();
        if !config.use_attribution {
            return (None, None, gauges);
        }
        let frames = sampler.frames();
        if frames.len() < 2 {
            return (None, None, gauges);
        }
        let shared = &ctl.shared;
        // Only recent spans: the controller wants the bottleneck *now*,
        // not the run-to-date average (a drained early phase must not
        // outvote the current one).
        let cutoff = shared
            .metrics()
            .now_us()
            .saturating_sub(config.attribution_window_us.saturating_mul(4));
        let spans: Vec<pilot_metrics::Span> = shared
            .metrics()
            .snapshot()
            .into_iter()
            .filter(|s| s.job_id == shared.ctx.job_id && s.end_us >= cutoff)
            .collect();
        if spans.is_empty() {
            return (None, None, gauges);
        }
        let attr = pilot_metrics::attribute(&spans, &frames, config.attribution_window_us);
        let dominant = attr
            .windows
            .last()
            .and_then(|w| w.dominant())
            .or_else(|| attr.dominant())
            .cloned();
        let stage = dominant.as_ref().map(|c| map_component(ctl, c));
        let label = dominant.as_ref().map(|c| c.label());
        (stage, label, gauges)
    }

    fn apply(ctl: &PipelineCtl, config: &ControllerConfig, action: &Action) -> bool {
        let tune = &ctl.shared.tune;
        match action {
            Action::ScaleProcessors { to, .. } => ctl.scale_processors(*to).is_ok(),
            Action::ResizeComputePool { to, .. } => {
                let applied = ctl.shared.ctx.compute.set_width(*to);
                tune.set_compute_width(applied);
                applied != action.before() as usize
            }
            Action::SetBatchMaxBytes { to, .. } => {
                tune.set_batch_max_bytes(*to);
                true
            }
            Action::SetPrefetchDepth { to, .. } => {
                tune.set_prefetch_depth(*to);
                true
            }
            Action::SetFetchMax { to, .. } => {
                tune.set_fetch_max(*to);
                true
            }
            // The core never emits linger actions (external-only knob);
            // apply it anyway so a replayed journal stays executable.
            Action::SetLinger { to_us, .. } => {
                tune.set_linger(Duration::from_micros(*to_us));
                true
            }
            Action::MigrateToEdge => match &config.migration {
                Some(policy) => {
                    ctl.shared.cloud_slot.replace(Arc::clone(&policy.to_edge));
                    true
                }
                None => false,
            },
            Action::MigrateToCloud => match &config.migration {
                Some(policy) => {
                    ctl.shared.cloud_slot.replace(Arc::clone(&policy.to_cloud));
                    true
                }
                None => false,
            },
        }
    }
}

/// Map an attributed component onto the planner's stage model using this
/// pipeline's link names (the spans carry the names verbatim).
fn map_component(ctl: &PipelineCtl, c: &Component) -> BottleneckStage {
    let shared = &ctl.shared;
    match c {
        Component::EdgeProducer | Component::EdgeProcessor => BottleneckStage::Producers,
        Component::Broker => BottleneckStage::Broker,
        Component::CloudProcessor => BottleneckStage::Processors,
        Component::Network(name) if name == shared.link_edge_broker.name() => {
            BottleneckStage::EdgeLink
        }
        Component::Network(name) if name == shared.link_broker_cloud.name() => {
            BottleneckStage::CloudLink
        }
        _ => BottleneckStage::Other,
    }
}

/// The [`GAUGE_CONTROL_LAST_CAUSE`] encoding.
fn cause_code(verdict: Verdict, stage: Option<BottleneckStage>) -> i64 {
    match verdict {
        Verdict::External => 9,
        Verdict::LagUnder => 2,
        Verdict::LagOver => match stage {
            None => 1,
            Some(BottleneckStage::Producers) => 3,
            Some(BottleneckStage::EdgeLink) => 4,
            Some(BottleneckStage::Broker) => 5,
            Some(BottleneckStage::CloudLink) => 6,
            Some(BottleneckStage::Processors) => 7,
            Some(BottleneckStage::Other) => 8,
        },
    }
}
