//! Typed control actions and the append-only action journal.
//!
//! Every decision the controller makes is a value of [`Action`]; every
//! applied decision is journalled as a [`ControlEvent`] carrying the
//! [`Cause`] (observed lag, hysteresis verdict, attributed bottleneck) and
//! the gauge snapshot that triggered it — so a run's adaptation history is
//! fully replayable from the journal alone.

use std::time::Duration;

/// Which knob an [`Action`] turns. Cooldowns are tracked per knob: two
/// actions on the same knob are never closer than the configured cooldown,
/// while distinct knobs may fire on consecutive ticks (escalation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Knob {
    /// Consumer-pool size (`scale_processors`).
    Processors,
    /// Intra-task compute-pool width (`ComputePool::set_width`).
    Compute,
    /// Producer batch threshold (`TuneTable::set_batch_max_bytes`).
    Batch,
    /// Prefetch admission depth (`TuneTable::set_prefetch_depth`).
    Prefetch,
    /// Per-partition fetch budget (`TuneTable::set_fetch_max`).
    Fetch,
    /// Where the processing function runs (model migration).
    Placement,
    /// Producer linger window (`TuneTable::set_linger`). Turned only by
    /// external operators (the gateway's `POST /control/tune`), never by
    /// the controller core itself.
    Linger,
}

impl Knob {
    pub(crate) const COUNT: usize = 7;

    pub(crate) fn index(self) -> usize {
        match self {
            Knob::Processors => 0,
            Knob::Compute => 1,
            Knob::Batch => 2,
            Knob::Prefetch => 3,
            Knob::Fetch => 4,
            Knob::Placement => 5,
            Knob::Linger => 6,
        }
    }
}

/// One typed control decision. `from`/`to` carry the knob level before and
/// after, so the journal needs no out-of-band state to interpret.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Grow or shrink the consumer pool to `to` members.
    ScaleProcessors { from: usize, to: usize },
    /// Widen or narrow the shared compute pool to `to` worker threads.
    ResizeComputePool { from: usize, to: usize },
    /// Widen (or, at 0, disable) producer batching.
    SetBatchMaxBytes { from: usize, to: usize },
    /// Deepen or shallow the consumer prefetch admission gate.
    SetPrefetchDepth { from: usize, to: usize },
    /// Raise or lower the per-partition fetch budget.
    SetFetchMax { from: usize, to: usize },
    /// Set the producer linger window (µs). Emitted only for externally
    /// requested tunes (`Verdict::External`); the controller core never
    /// turns this knob on its own.
    SetLinger { from_us: u64, to_us: u64 },
    /// Hot-swap processing to the migration policy's edge-side factory
    /// (shed WAN bytes when the edge→broker link is the bottleneck).
    MigrateToEdge,
    /// Restore the cloud-side factory once the pressure passed.
    MigrateToCloud,
}

impl Action {
    /// The knob this action turns (for cooldown bookkeeping).
    pub fn knob(&self) -> Knob {
        match self {
            Action::ScaleProcessors { .. } => Knob::Processors,
            Action::ResizeComputePool { .. } => Knob::Compute,
            Action::SetBatchMaxBytes { .. } => Knob::Batch,
            Action::SetPrefetchDepth { .. } => Knob::Prefetch,
            Action::SetFetchMax { .. } => Knob::Fetch,
            Action::SetLinger { .. } => Knob::Linger,
            Action::MigrateToEdge | Action::MigrateToCloud => Knob::Placement,
        }
    }

    /// Knob level before the action (placement encoded 0 = cloud, 1 = edge).
    pub fn before(&self) -> i64 {
        match self {
            Action::ScaleProcessors { from, .. }
            | Action::ResizeComputePool { from, .. }
            | Action::SetBatchMaxBytes { from, .. }
            | Action::SetPrefetchDepth { from, .. }
            | Action::SetFetchMax { from, .. } => *from as i64,
            Action::SetLinger { from_us, .. } => *from_us as i64,
            Action::MigrateToEdge => 0,
            Action::MigrateToCloud => 1,
        }
    }

    /// Knob level after the action (placement encoded 0 = cloud, 1 = edge).
    pub fn after(&self) -> i64 {
        match self {
            Action::ScaleProcessors { to, .. }
            | Action::ResizeComputePool { to, .. }
            | Action::SetBatchMaxBytes { to, .. }
            | Action::SetPrefetchDepth { to, .. }
            | Action::SetFetchMax { to, .. } => *to as i64,
            Action::SetLinger { to_us, .. } => *to_us as i64,
            Action::MigrateToEdge => 1,
            Action::MigrateToCloud => 0,
        }
    }

    /// Short stable label for CSV output and logs.
    pub fn label(&self) -> &'static str {
        match self {
            Action::ScaleProcessors { .. } => "scale_processors",
            Action::ResizeComputePool { .. } => "resize_compute_pool",
            Action::SetBatchMaxBytes { .. } => "set_batch_max_bytes",
            Action::SetPrefetchDepth { .. } => "set_prefetch_depth",
            Action::SetFetchMax { .. } => "set_fetch_max",
            Action::SetLinger { .. } => "set_linger",
            Action::MigrateToEdge => "migrate_to_edge",
            Action::MigrateToCloud => "migrate_to_cloud",
        }
    }
}

/// The hysteresis verdict that released an action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Lag stayed above the bound for `hysteresis` consecutive ticks.
    LagOver,
    /// Lag stayed at or below the low-water mark for `hysteresis` ticks.
    LagUnder,
    /// An external operator requested the action (the gateway's
    /// `POST /control/tune`), bypassing the hysteresis machine entirely —
    /// but never the bounds check.
    External,
}

impl Verdict {
    /// Short stable label for CSV/JSON output.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::LagOver => "lag_over",
            Verdict::LagUnder => "lag_under",
            Verdict::External => "external",
        }
    }
}

/// Why the controller acted: the lag sample, the verdict, and — when the
/// telemetry plane is on — the dominant component of the bottleneck
/// attribution at decision time.
#[derive(Debug, Clone, PartialEq)]
pub struct Cause {
    /// Observed total consumer-group lag (records).
    pub lag: u64,
    /// Which hysteresis threshold tripped.
    pub verdict: Verdict,
    /// Dominant component label from [`pilot_metrics::attribute`], when
    /// telemetry was on and recent spans existed (e.g. `"net:b->c"`).
    pub bottleneck: Option<String>,
}

/// One entry of the append-only action journal.
#[derive(Debug, Clone)]
pub struct ControlEvent {
    /// Time since the controller started.
    pub at: Duration,
    /// What triggered the decision.
    pub cause: Cause,
    /// The typed decision.
    pub action: Action,
    /// Knob level before (mirrors `action`, for flat CSV export).
    pub before: i64,
    /// Knob level after.
    pub after: i64,
    /// The latest telemetry frame's gauge levels at decision time (empty
    /// when the telemetry plane is off).
    pub gauges: Vec<(String, i64)>,
}
