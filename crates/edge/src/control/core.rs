//! The pure decision core: hysteresis, per-knob cooldowns, and bounds.
//!
//! [`ControllerCore`] is deterministic and clock-injected — every input
//! arrives inside an [`Observation`] (including `now`), so the decision
//! logic is property-testable without threads, pipelines, or sleeps
//! (`tests/control.rs` drives it with adversarial gauge sequences).
//!
//! The bottleneck→action mapping (DESIGN.md §15): scale-up candidates are
//! tried in order, skipping knobs at their bound or still cooling down, so
//! the controller escalates to the next lever when the preferred one is
//! exhausted. Every list ends in the processor/compute levers — the only
//! ones that help regardless of attribution — which also makes the
//! lag-only legacy autoscaler a special case (no attribution, every other
//! knob pinned).
//!
//! | dominant bottleneck   | candidates (in order)                               |
//! |-----------------------|-----------------------------------------------------|
//! | edge→broker link      | widen batching, migrate to edge, +processor, +compute |
//! | broker→cloud link     | deepen prefetch, double fetch, +processor, +compute  |
//! | broker                | double fetch, +processor, +compute                   |
//! | processors / unknown  | +processor, +compute                                 |
//!
//! Scale-down (sustained lag ≤ `lag_low`) walks the knobs back toward
//! their minimum bounds in reverse-cost order: restore cloud placement,
//! −processor, −compute, shallower prefetch, halve fetch, halve batch.

use super::action::{Action, Cause, Knob, Verdict};
use crate::planner::{size_processors, Calibration, PlannerInput};
use std::time::Duration;

/// The pipeline stage a bottleneck attribution maps to (the planner's
/// five-stage tandem queue, plus `Other` for components outside it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BottleneckStage {
    /// `produce_edge` / `process_edge` dominate — the source is the limit.
    Producers,
    /// The edge→broker link dominates.
    EdgeLink,
    /// Broker append/fetch service time dominates.
    Broker,
    /// The broker→cloud link dominates.
    CloudLink,
    /// `process_cloud` dominates.
    Processors,
    /// Parameter server or application-defined components.
    Other,
}

/// Per-knob bounds the controller must stay within. An action whose target
/// would leave `[min, max]` is never emitted; when *every* candidate is at
/// its bound the controller is a guaranteed no-op (`tests/control.rs` pins
/// this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ControlBounds {
    /// Never shrink the consumer pool below this.
    pub min_processors: usize,
    /// Never grow the consumer pool beyond this.
    pub max_processors: usize,
    /// Never narrow the compute pool below this width.
    pub min_compute: usize,
    /// Never widen the compute pool beyond this width (also the resizable
    /// pool's spawn capacity — see `ComputePool::resizable`).
    pub max_compute: usize,
    /// Batch-threshold floor (0 = batching may be turned off).
    pub min_batch_bytes: usize,
    /// Batch-threshold ceiling.
    pub max_batch_bytes: usize,
    /// Prefetch-depth floor.
    pub min_prefetch: usize,
    /// Prefetch-depth ceiling.
    pub max_prefetch: usize,
    /// Fetch-budget floor (clamped to ≥ 1).
    pub min_fetch_max: usize,
    /// Fetch-budget ceiling.
    pub max_fetch_max: usize,
}

impl Default for ControlBounds {
    fn default() -> Self {
        Self {
            min_processors: 1,
            max_processors: 8,
            min_compute: 1,
            max_compute: 8,
            min_batch_bytes: 0,
            max_batch_bytes: 1 << 20,
            min_prefetch: 0,
            max_prefetch: 16,
            min_fetch_max: 1,
            max_fetch_max: 64,
        }
    }
}

impl ControlBounds {
    /// Derive bounds from an analytic plan: the processor ceiling comes
    /// from [`size_processors`] with 50% headroom (the controller may need
    /// more than the steady-state plan during a burst), everything else
    /// from the defaults.
    pub fn from_planner(input: &PlannerInput) -> Self {
        let max_processors = size_processors(input, 1.5)
            .unwrap_or_else(|| input.processors.max(Self::default().max_processors))
            .clamp(1, 64);
        Self {
            min_processors: 1,
            max_processors: max_processors.max(input.processors),
            ..Self::default()
        }
    }

    /// [`ControlBounds::from_planner`] with the plan corrected by measured
    /// telemetry: the processors-stage correction factor from
    /// [`crate::planner::Prediction::calibrate`] scales the per-message
    /// cost before sizing (a model measured 2× slower than planned doubles
    /// the ceiling).
    pub fn from_calibrated(input: &PlannerInput, calibration: &Calibration) -> Self {
        let mut corrected = input.clone();
        corrected.process_secs *= calibration.factor("processors").max(0.1);
        Self::from_planner(&corrected)
    }

    pub(crate) fn validate(&self) -> Result<(), String> {
        let pairs = [
            ("processors", self.min_processors, self.max_processors),
            ("compute", self.min_compute, self.max_compute),
            ("batch_bytes", self.min_batch_bytes, self.max_batch_bytes),
            ("prefetch", self.min_prefetch, self.max_prefetch),
            ("fetch_max", self.min_fetch_max, self.max_fetch_max),
        ];
        for (name, min, max) in pairs {
            if min > max {
                return Err(format!(
                    "controller bounds: min_{name} {min} > max_{name} {max}"
                ));
            }
        }
        if self.min_processors == 0 {
            return Err("controller bounds: min_processors must be >= 1".into());
        }
        Ok(())
    }
}

/// Everything the decision core sees on one tick. The caller (the
/// controller thread, or a test) samples the live pipeline and injects the
/// clock — the core itself never reads wall time.
#[derive(Debug, Clone)]
pub struct Observation {
    /// Time since the controller started (the cooldown clock).
    pub now: Duration,
    /// Total consumer-group lag (records).
    pub lag: u64,
    /// Dominant stage from bottleneck attribution, when available.
    pub bottleneck: Option<BottleneckStage>,
    /// The dominant component's label, journalled verbatim.
    pub bottleneck_label: Option<String>,
    /// Current consumer-pool size.
    pub processors: usize,
    /// Current compute-pool width.
    pub compute_width: usize,
    /// Current batch threshold (0 = serial).
    pub batch_max_bytes: usize,
    /// Current prefetch admission depth.
    pub prefetch_depth: usize,
    /// Current per-partition fetch budget.
    pub fetch_max: usize,
}

/// Static configuration of the decision core (a subset of
/// [`super::ControllerConfig`], without the thread/plumbing fields).
#[derive(Debug, Clone)]
pub(crate) struct CoreConfig {
    pub(crate) lag_bound: u64,
    pub(crate) lag_low: u64,
    pub(crate) hysteresis: usize,
    pub(crate) cooldown: Duration,
    pub(crate) bounds: ControlBounds,
    pub(crate) migration_available: bool,
}

/// The deterministic decision state machine: hysteresis counters, per-knob
/// last-fired times, and the tracked placement.
pub struct ControllerCore {
    cfg: CoreConfig,
    over: usize,
    under: usize,
    placement_edge: bool,
    last_fired: [Option<Duration>; Knob::COUNT],
}

impl ControllerCore {
    pub(crate) fn new(cfg: CoreConfig) -> Self {
        Self {
            cfg,
            over: 0,
            under: 0,
            placement_edge: false,
            last_fired: [None; Knob::COUNT],
        }
    }

    /// Build a core directly from a controller config — the entry point
    /// for property tests driving the pure logic without a pipeline.
    pub fn from_config(config: &super::ControllerConfig) -> Self {
        Self::new(CoreConfig {
            lag_bound: config.lag_bound,
            lag_low: config.lag_low,
            hysteresis: config.hysteresis.max(1),
            cooldown: config.cooldown,
            bounds: config.bounds.clone(),
            migration_available: config.migration.is_some(),
        })
    }

    /// Whether the core currently believes processing runs at the edge.
    pub fn placement_edge(&self) -> bool {
        self.placement_edge
    }

    /// Feed one observation; returns the released decision, if any.
    ///
    /// Hysteresis mirrors the legacy autoscaler exactly: `lag > lag_bound`
    /// bumps the over-counter and clears the under-counter (and vice versa
    /// at `lag <= lag_low`; the mid-band clears both); a counter reaching
    /// `hysteresis` releases at most one action and is then reset. A knob
    /// that fired stays untouchable for `cooldown`; candidates at their
    /// bound are skipped; if every candidate is blocked nothing fires and
    /// the counter saturates (the next viable tick acts immediately,
    /// as the legacy scaler did at `max_processors`).
    pub fn observe(&mut self, obs: &Observation) -> Option<(Cause, Action)> {
        if obs.lag > self.cfg.lag_bound {
            self.over += 1;
            self.under = 0;
        } else if obs.lag <= self.cfg.lag_low {
            self.under += 1;
            self.over = 0;
        } else {
            self.over = 0;
            self.under = 0;
        }
        if self.over >= self.cfg.hysteresis {
            if let Some(action) = self.first_viable(obs, &self.up_candidates(obs)) {
                self.over = 0;
                return Some((self.release(obs, Verdict::LagOver, action.clone()), action));
            }
            self.over = self.cfg.hysteresis;
        } else if self.under >= self.cfg.hysteresis {
            if let Some(action) = self.first_viable(obs, &self.down_candidates(obs)) {
                self.under = 0;
                return Some((self.release(obs, Verdict::LagUnder, action.clone()), action));
            }
            self.under = self.cfg.hysteresis;
        }
        None
    }

    fn release(&mut self, obs: &Observation, verdict: Verdict, action: Action) -> Cause {
        self.last_fired[action.knob().index()] = Some(obs.now);
        match action {
            Action::MigrateToEdge => self.placement_edge = true,
            Action::MigrateToCloud => self.placement_edge = false,
            _ => {}
        }
        Cause {
            lag: obs.lag,
            verdict,
            bottleneck: obs.bottleneck_label.clone(),
        }
    }

    fn cooling(&self, knob: Knob, now: Duration) -> bool {
        self.last_fired[knob.index()]
            .map(|t| now < t + self.cfg.cooldown)
            .unwrap_or(false)
    }

    fn first_viable(&self, obs: &Observation, candidates: &[Option<Action>]) -> Option<Action> {
        candidates
            .iter()
            .flatten()
            .find(|a| !self.cooling(a.knob(), obs.now))
            .cloned()
    }

    fn up_candidates(&self, obs: &Observation) -> Vec<Option<Action>> {
        let tail = [self.grow_processors(obs), self.grow_compute(obs)];
        let mut list: Vec<Option<Action>> = match obs.bottleneck {
            Some(BottleneckStage::EdgeLink) => {
                vec![self.widen_batch(obs), self.migrate_to_edge()]
            }
            Some(BottleneckStage::CloudLink) => {
                vec![self.deepen_prefetch(obs), self.grow_fetch(obs)]
            }
            Some(BottleneckStage::Broker) => vec![self.grow_fetch(obs)],
            _ => Vec::new(),
        };
        list.extend(tail);
        list
    }

    fn down_candidates(&self, obs: &Observation) -> Vec<Option<Action>> {
        vec![
            self.migrate_to_cloud(),
            self.shrink_processors(obs),
            self.shrink_compute(obs),
            self.shallow_prefetch(obs),
            self.shrink_fetch(obs),
            self.narrow_batch(obs),
        ]
    }

    fn grow_processors(&self, obs: &Observation) -> Option<Action> {
        let to = (obs.processors + 1).min(self.cfg.bounds.max_processors);
        (to > obs.processors).then_some(Action::ScaleProcessors {
            from: obs.processors,
            to,
        })
    }

    fn shrink_processors(&self, obs: &Observation) -> Option<Action> {
        (obs.processors > self.cfg.bounds.min_processors).then_some(Action::ScaleProcessors {
            from: obs.processors,
            to: obs.processors - 1,
        })
    }

    fn grow_compute(&self, obs: &Observation) -> Option<Action> {
        let to = (obs.compute_width + 1).min(self.cfg.bounds.max_compute);
        (to > obs.compute_width).then_some(Action::ResizeComputePool {
            from: obs.compute_width,
            to,
        })
    }

    fn shrink_compute(&self, obs: &Observation) -> Option<Action> {
        (obs.compute_width > self.cfg.bounds.min_compute).then_some(Action::ResizeComputePool {
            from: obs.compute_width,
            to: obs.compute_width - 1,
        })
    }

    /// First widen turns batching on at 64 KiB; after that the threshold
    /// doubles up to the bound.
    fn widen_batch(&self, obs: &Observation) -> Option<Action> {
        let cur = obs.batch_max_bytes;
        let target = if cur == 0 {
            64 * 1024
        } else {
            cur.saturating_mul(2)
        };
        let to = target.clamp(
            self.cfg.bounds.min_batch_bytes.max(1),
            self.cfg.bounds.max_batch_bytes.max(1),
        );
        (self.cfg.bounds.max_batch_bytes > 0 && to > cur)
            .then_some(Action::SetBatchMaxBytes { from: cur, to })
    }

    fn narrow_batch(&self, obs: &Observation) -> Option<Action> {
        let cur = obs.batch_max_bytes;
        if cur <= self.cfg.bounds.min_batch_bytes {
            return None;
        }
        let to = (cur / 2).max(self.cfg.bounds.min_batch_bytes);
        (to < cur).then_some(Action::SetBatchMaxBytes { from: cur, to })
    }

    /// Deepening only helps members that already prefetch (the shape is
    /// fixed at spawn), so a zero depth is left alone.
    fn deepen_prefetch(&self, obs: &Observation) -> Option<Action> {
        let cur = obs.prefetch_depth;
        let to = (cur + 1).min(self.cfg.bounds.max_prefetch);
        (cur > 0 && to > cur).then_some(Action::SetPrefetchDepth { from: cur, to })
    }

    fn shallow_prefetch(&self, obs: &Observation) -> Option<Action> {
        let cur = obs.prefetch_depth;
        let floor = self.cfg.bounds.min_prefetch.max(1);
        (cur > floor).then_some(Action::SetPrefetchDepth {
            from: cur,
            to: cur - 1,
        })
    }

    fn grow_fetch(&self, obs: &Observation) -> Option<Action> {
        let cur = obs.fetch_max.max(1);
        let to = cur.saturating_mul(2).min(self.cfg.bounds.max_fetch_max);
        (to > cur).then_some(Action::SetFetchMax { from: cur, to })
    }

    fn shrink_fetch(&self, obs: &Observation) -> Option<Action> {
        let cur = obs.fetch_max.max(1);
        let to = (cur / 2).max(self.cfg.bounds.min_fetch_max).max(1);
        (to < cur).then_some(Action::SetFetchMax { from: cur, to })
    }

    fn migrate_to_edge(&self) -> Option<Action> {
        (self.cfg.migration_available && !self.placement_edge).then_some(Action::MigrateToEdge)
    }

    fn migrate_to_cloud(&self) -> Option<Action> {
        self.placement_edge.then_some(Action::MigrateToCloud)
    }
}
