//! Placement advice: edge vs hybrid vs cloud for a given model and link.
//!
//! The paper's experiments "allow applications to evaluate task placement
//! based on multiple factors (e.g., model complexities, throughput, and
//! latency)" (abstract) and conclude that WAN-limited scenarios "would
//! benefit from a hybrid edge-to-cloud deployment". This module turns that
//! evaluation into an analytic advisor: given the per-message compute cost
//! of a model on edge vs cloud hardware and the link between them, which
//! [`DeploymentMode`] minimises expected per-message latency?

use crate::deployment::DeploymentMode;
use pilot_netsim::LinkSpec;

/// Cost model for one processing stage on one message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageCost {
    /// Seconds to process one message on an edge device.
    pub edge_secs: f64,
    /// Seconds to process one message on the cloud resource.
    pub cloud_secs: f64,
    /// Fraction of the message's bytes that survive edge processing
    /// (compression / pre-aggregation), in `(0, 1]`. 1.0 = no reduction.
    pub edge_reduction: f64,
}

/// Expected per-message latency of each deployment mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementEstimate {
    pub cloud_centric_secs: f64,
    pub hybrid_secs: f64,
    pub edge_centric_secs: f64,
}

impl PlacementEstimate {
    /// The mode with the lowest expected latency.
    pub fn best(&self) -> DeploymentMode {
        let mut best = (DeploymentMode::CloudCentric, self.cloud_centric_secs);
        if self.hybrid_secs < best.1 {
            best = (DeploymentMode::Hybrid, self.hybrid_secs);
        }
        if self.edge_centric_secs < best.1 {
            best = (DeploymentMode::EdgeCentric, self.edge_centric_secs);
        }
        best.0
    }
}

/// Estimate per-message latency of each deployment for a message of
/// `message_bytes` crossing `link`, with the given stage costs.
///
/// * cloud-centric: full message over the link, then cloud compute;
/// * hybrid: edge pre-processing, reduced message over the link, then cloud
///   compute (assumed unchanged — pre-aggregation rarely reduces model
///   cost proportionally, so this is the conservative estimate);
/// * edge-centric: edge compute only, plus a small (1%) result upload.
pub fn estimate(message_bytes: u64, link: &LinkSpec, cost: StageCost) -> PlacementEstimate {
    let transfer_full = link.expected_secs(message_bytes);
    let reduced_bytes = (message_bytes as f64 * cost.edge_reduction.clamp(0.0, 1.0)) as u64;
    let transfer_reduced = link.expected_secs(reduced_bytes);
    let transfer_result = link.expected_secs((message_bytes as f64 * 0.01) as u64);
    PlacementEstimate {
        cloud_centric_secs: transfer_full + cost.cloud_secs,
        hybrid_secs: cost.edge_secs + transfer_reduced + cost.cloud_secs,
        edge_centric_secs: cost.edge_secs + transfer_result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_netsim::profiles;

    /// k-means on a fast local link: shipping raw data to the (faster)
    /// cloud wins.
    #[test]
    fn fast_link_prefers_cloud_centric() {
        let cost = StageCost {
            edge_secs: 0.10, // slow edge CPU
            cloud_secs: 0.01,
            edge_reduction: 0.5,
        };
        let est = estimate(1_000_000, &profiles::cloud_local("l", 0), cost);
        assert_eq!(est.best(), DeploymentMode::CloudCentric);
    }

    /// Cheap edge compute over a transatlantic link: keep the work local.
    #[test]
    fn slow_link_cheap_model_prefers_edge_centric() {
        let cost = StageCost {
            edge_secs: 0.005,
            cloud_secs: 0.002,
            edge_reduction: 1.0,
        };
        let est = estimate(2_560_000, &profiles::transatlantic("wan", 0), cost);
        assert_eq!(est.best(), DeploymentMode::EdgeCentric);
    }

    /// Heavy model (too big for the edge) over the WAN with good
    /// compressibility: hybrid wins — the paper's recommendation.
    #[test]
    fn wan_with_compression_prefers_hybrid() {
        let cost = StageCost {
            edge_secs: 0.02,      // cheap pre-aggregation
            cloud_secs: 0.05,     // heavy model must run in the cloud
            edge_reduction: 0.05, // 20× reduction before transfer
        };
        let est = estimate(2_560_000, &profiles::transatlantic("wan", 0), cost);
        // Edge-centric is not viable in spirit (the model needs the cloud),
        // but even numerically hybrid beats cloud-centric here.
        assert!(est.hybrid_secs < est.cloud_centric_secs);
        // 2.56 MB at 80 Mbit/s ≈ 0.256 s; reduced to 0.128 MB ≈ 0.013 s.
        assert!(est.cloud_centric_secs > 0.25);
    }

    #[test]
    fn reduction_clamped_to_unit_interval() {
        let cost = StageCost {
            edge_secs: 0.0,
            cloud_secs: 0.0,
            edge_reduction: 7.0,
        };
        let est = estimate(1000, &profiles::lan("l", 0), cost);
        assert!(est.hybrid_secs <= est.cloud_centric_secs + 1e-9);
    }
}
