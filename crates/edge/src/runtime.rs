//! The running pipeline: task wiring, dataflow, termination, adaptation.
//!
//! What `start` builds (paper Fig. 1, step 2):
//!
//! ```text
//!  edge pilot                     broker pilot                cloud pilot
//!  ┌───────────────┐   link      ┌──────────────┐   link     ┌──────────────┐
//!  │ producer task ├────────────▶│ topic, 1 part│◀───────────┤ consumer task│
//!  │  (per device) │  e→broker   │  per device  │  broker→c  │ (per proc.)  │
//!  └───────────────┘             │ param server │            └──────────────┘
//!                                └──────────────┘
//! ```
//!
//! Producers run `produce_edge` (and, in hybrid mode, `process_edge`),
//! serialize, cross the simulated edge→broker link, and append to their
//! device's partition. Consumers poll their assigned partitions (range
//! assignment via the consumer-group coordinator), cross the broker→cloud
//! link, decode, and run `process_cloud`. Every step records a linked
//! metric span keyed by `(job_id, msg_id)`.
//!
//! **Termination**: each producer appends an empty *sentinel* record after
//! its stream ends; a partition is complete once its sentinel is consumed;
//! the run is complete when every partition is.
//!
//! **Pipelined transport** (off by default; see
//! [`PipelineConfig::batch_max_bytes`] and
//! [`PipelineConfig::prefetch_depth`]): producers batch encoded messages
//! and ship each batch over one non-blocking link reservation, completing
//! the previous batch (wait + per-message append) while the next one is
//! encoding; consumers move fetch + broker→cloud transfer onto a bounded
//! prefetch thread so batch N+1 crosses the WAN while batch N is in
//! `process_cloud`. Per-message metric spans are preserved in both modes:
//! every message of a batch gets its own Network/Broker/CloudProcessor
//! spans (network spans share the batch's wall-clock window, carrying the
//! message's own byte count).
//!
//! **Fan-in scale-out** (off by default; see
//! [`PipelineConfig::producer_threads`]): with `producer_threads = Some(k)`
//! the thread-per-device producers are replaced by a multiplexed engine — a
//! deadline heap of per-device `DeviceProducer` states driven by `k`
//! engine workers — so a 1024-device cell needs `k` edge cores instead of
//! 1024. Per-device message sets are identical between the two engines
//! under a fixed seed. Consumers always fetch via one multi-partition
//! `poll_many` (one shared condvar wait per member, not one timeout per
//! partition), pausing partitions whose sentinel arrived.
//!
//! **Adaptation** (paper Section II-D): [`RunningPipeline::replace_cloud_function`]
//! hot-swaps the processing function (consumers re-instantiate on the next
//! message); [`RunningPipeline::scale_processors`] grows or shrinks the
//! consumer pool at runtime, rebalancing partitions across members.

use crate::faas::{CloudFactory, CloudFn, Context, SwappableCloudFactory};
use crate::pipeline::{EdgeToCloudPipeline, PipelineConfig, PipelineError};
use crate::summary::RunSummary;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use pilot_broker::{Broker, Consumer, GroupCoordinator, Record};
use pilot_core::Pilot;
use pilot_dataflow::{Client, Payload, Resources, TaskFuture};
use pilot_datagen::RateLimiter;
use pilot_metrics::{Component, MetricsRegistry, PipelineReport};
use pilot_netsim::{Link, Reservation};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Process-global job-id source so concurrent pipelines never collide.
static NEXT_JOB_ID: AtomicU64 = AtomicU64::new(1);

/// Device ids are packed into the high bits of the metric msg id so message
/// ids are unique across devices while the wire format stays unchanged.
const DEVICE_SHIFT: u32 = 40;

fn metric_msg_id(device: usize, block_msg_id: u64) -> u64 {
    ((device as u64) << DEVICE_SHIFT) | (block_msg_id & ((1 << DEVICE_SHIFT) - 1))
}

pub(crate) struct Shared {
    pub ctx: Context,
    pub broker: Broker,
    pub topic: String,
    pub cfg: PipelineConfig,
    pub link_edge_broker: Link,
    pub link_broker_cloud: Link,
    pub cloud_slot: SwappableCloudFactory,
    pub coordinator: GroupCoordinator,
    pub done_partitions: Mutex<HashSet<usize>>,
    pub stop_all: AtomicBool,
}

impl Shared {
    fn metrics(&self) -> &MetricsRegistry {
        &self.ctx.metrics
    }

    fn mark_partition_done(&self, p: usize) {
        self.done_partitions.lock().insert(p);
    }

    fn partition_done(&self, p: usize) -> bool {
        self.done_partitions.lock().contains(&p)
    }

    fn all_partitions_done(&self) -> bool {
        self.done_partitions.lock().len() >= self.cfg.devices
    }
}

/// An encoded message waiting inside (or in flight with) a producer batch.
struct PendingMsg {
    payload: Bytes,
    mid: u64,
    t0: u64,
}

/// A producer batch whose link reservation is in flight: the reservation's
/// deadline, the batch's network-span start, and the messages aboard.
struct InFlightBatch {
    reservation: Reservation,
    net_start_us: u64,
    msgs: Vec<PendingMsg>,
}

/// Ship the accumulated batch over one link reservation (non-blocking) and
/// complete older batches so at most one stays in flight — the double
/// buffer: the batch in flight crosses the link while the caller encodes
/// the next one.
fn flush_batch(
    shared: &Shared,
    device: usize,
    pending: &mut Vec<PendingMsg>,
    in_flight: &mut VecDeque<InFlightBatch>,
) -> Result<(), String> {
    if pending.is_empty() {
        return Ok(());
    }
    let metrics = shared.metrics();
    let sizes: Vec<u64> = pending.iter().map(|m| m.payload.len() as u64).collect();
    let net_start_us = metrics.now_us();
    let reservation = shared.link_edge_broker.reserve_batch(&sizes);
    in_flight.push_back(InFlightBatch {
        reservation,
        net_start_us,
        msgs: std::mem::take(pending),
    });
    while in_flight.len() > 1 {
        complete_oldest_batch(shared, device, in_flight)?;
    }
    Ok(())
}

/// Wait out the oldest in-flight batch's reservation, then append its
/// messages individually (offsets and ordering as in the serial path) with
/// per-message Network and Broker spans.
fn complete_oldest_batch(
    shared: &Shared,
    device: usize,
    in_flight: &mut VecDeque<InFlightBatch>,
) -> Result<(), String> {
    let Some(batch) = in_flight.pop_front() else {
        return Ok(());
    };
    let ctx = &shared.ctx;
    let metrics = shared.metrics();
    batch.reservation.wait();
    let net_end_us = metrics.now_us();
    for msg in batch.msgs {
        let bytes = msg.payload.len() as u64;
        metrics.record(
            ctx.job_id,
            msg.mid,
            Component::Network(shared.link_edge_broker.name().to_string()),
            batch.net_start_us,
            net_end_us,
            bytes,
        );
        let b0 = metrics.now_us();
        shared
            .broker
            .append(
                &shared.topic,
                device,
                Record::new(msg.payload).with_timestamp(msg.t0),
            )
            .map_err(|e| e.to_string())?;
        metrics.record(
            ctx.job_id,
            msg.mid,
            Component::Broker,
            b0,
            metrics.now_us(),
            bytes,
        );
    }
    Ok(())
}

/// The complete producing state of one edge device, stepped one message at
/// a time so it can be driven either by a dedicated task per device
/// ([`producer_loop`]) or interleaved with hundreds of other devices on a
/// multiplexed engine worker ([`engine_worker`]). Message identity (the
/// per-device `msg_id` sequence), the long-lived encode scratch, the
/// batching double-buffer, and the sentinel all live here — so both drivers
/// produce byte-identical per-device message sets.
struct DeviceProducer {
    device: usize,
    produce: crate::faas::ProduceFn,
    edge_fn: Option<crate::faas::EdgeFn>,
    sent: u64,
    // One long-lived encode scratch per producer: every message encodes
    // through it (`encode_with_into`), the producer-side mirror of the
    // consumer's decode scratch — steady state allocates nothing.
    enc_scratch: bytes::BytesMut,
    pending: Vec<PendingMsg>,
    pending_bytes: usize,
    batch_open: Option<Instant>,
    in_flight: VecDeque<InFlightBatch>,
    /// Pacing schedule origin: message `n` is due at `epoch + interval × n`
    /// (the same ideal-schedule pacing as [`RateLimiter`]).
    epoch: Instant,
    interval: Option<Duration>,
}

impl DeviceProducer {
    fn new(shared: &Shared, device: usize, fns: &ProducerFns) -> Self {
        let ctx = &shared.ctx;
        let rate = shared.cfg.rate_per_device;
        let interval =
            (rate.is_finite() && rate > 0.0).then(|| Duration::from_secs_f64(1.0 / rate));
        Self {
            device,
            produce: (fns.produce)(ctx, device),
            edge_fn: shared
                .cfg
                .mode
                .edge_processing()
                .then(|| (fns.edge)(ctx, device)),
            sent: 0,
            enc_scratch: bytes::BytesMut::new(),
            pending: Vec::new(),
            pending_bytes: 0,
            batch_open: None,
            in_flight: VecDeque::new(),
            epoch: Instant::now(),
            interval,
        }
    }

    /// When this device's next message may be emitted — the multiplexed
    /// engine's deadline-heap key. Unthrottled devices are always due.
    fn next_due(&self) -> Instant {
        match self.interval {
            Some(iv) => self.epoch + iv * self.sent as u32,
            None => self.epoch,
        }
    }

    /// Produce, (optionally) edge-process, encode, and ship one message.
    /// `Ok(false)` means the device's stream ended.
    fn step(&mut self, shared: &Shared) -> Result<bool, String> {
        let ctx = &shared.ctx;
        let metrics = shared.metrics();
        let t0 = metrics.now_us();
        let Some(mut block) = (self.produce)(ctx) else {
            return Ok(false);
        };
        // The framework owns message identity ("a unique job identifier
        // ensures that progress and errors can be consistently tracked"):
        // a per-device sequence replaces whatever the produce function set,
        // so duplicate user-assigned ids cannot corrupt metric linking.
        block.msg_id = self.sent;
        let mid = metric_msg_id(self.device, block.msg_id);
        // Edge processing (hybrid / edge-centric deployments).
        let block = match self.edge_fn.as_mut() {
            Some(f) => {
                let e0 = metrics.now_us();
                let out = f(ctx, block)?;
                metrics.record(
                    ctx.job_id,
                    mid,
                    Component::EdgeProcessor,
                    e0,
                    metrics.now_us(),
                    0,
                );
                out
            }
            None => block,
        };
        let payload =
            pilot_datagen::encode_with_into(shared.cfg.codec, &block, t0, &mut self.enc_scratch);
        let bytes = payload.len() as u64;
        metrics.record(
            ctx.job_id,
            mid,
            Component::EdgeProducer,
            t0,
            metrics.now_us(),
            bytes,
        );
        if shared.cfg.batch_max_bytes > 0 {
            // Pipelined path: accumulate; ship when the batch is full or
            // its linger window closed. The reservation completes (and the
            // messages append) while later messages encode.
            self.pending_bytes += payload.len();
            self.pending.push(PendingMsg { payload, mid, t0 });
            let opened = *self.batch_open.get_or_insert_with(Instant::now);
            if self.pending_bytes >= shared.cfg.batch_max_bytes
                || opened.elapsed() >= shared.cfg.linger
            {
                flush_batch(shared, self.device, &mut self.pending, &mut self.in_flight)?;
                self.pending_bytes = 0;
                self.batch_open = None;
            }
        } else {
            // Serial path (the default): every message pays its own
            // blocking edge → broker transfer.
            let n0 = metrics.now_us();
            shared.link_edge_broker.transfer(bytes);
            metrics.record(
                ctx.job_id,
                mid,
                Component::Network(shared.link_edge_broker.name().to_string()),
                n0,
                metrics.now_us(),
                bytes,
            );
            // Broker append (service time).
            let b0 = metrics.now_us();
            shared
                .broker
                .append(
                    &shared.topic,
                    self.device,
                    Record::new(payload).with_timestamp(t0),
                )
                .map_err(|e| e.to_string())?;
            metrics.record(
                ctx.job_id,
                mid,
                Component::Broker,
                b0,
                metrics.now_us(),
                bytes,
            );
        }
        self.sent += 1;
        Ok(true)
    }

    /// Drain the batcher (everything accumulated or in flight must land in
    /// the partition first) and append the end-of-stream sentinel.
    fn finish(&mut self, shared: &Shared) -> Result<(), String> {
        flush_batch(shared, self.device, &mut self.pending, &mut self.in_flight)?;
        self.pending_bytes = 0;
        self.batch_open = None;
        while !self.in_flight.is_empty() {
            complete_oldest_batch(shared, self.device, &mut self.in_flight)?;
        }
        shared
            .broker
            .append(&shared.topic, self.device, Record::new(Bytes::new()))
            .map_err(|e| e.to_string())?;
        Ok(())
    }
}

/// One edge device's producing loop (the default, thread-per-device
/// engine). Returns messages produced.
fn producer_loop(shared: &Shared, device: usize, builder_fns: &ProducerFns) -> Result<u64, String> {
    let mut state = DeviceProducer::new(shared, device, builder_fns);
    let mut rate = RateLimiter::new(shared.cfg.rate_per_device);
    while !shared.stop_all.load(Ordering::Relaxed) {
        rate.pace();
        if !state.step(shared)? {
            break;
        }
    }
    state.finish(shared)?;
    Ok(state.sent)
}

/// One device's place in the multiplexed engine's deadline heap. Ordered
/// earliest-due first (the heap is a max-heap, so `Ord` is reversed), with
/// the requeue sequence number as tie-break so simultaneously-due devices
/// round-robin fairly instead of starving.
struct DueEntry {
    due: Instant,
    seq: u64,
    state: Box<DeviceProducer>,
}

impl PartialEq for DueEntry {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}
impl Eq for DueEntry {}
impl PartialOrd for DueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DueEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The multiplexed producer engine ([`PipelineConfig::producer_threads`]):
/// every device's [`DeviceProducer`] sits in a deadline heap keyed by its
/// next send time; a small pool of workers pops the earliest-due device,
/// steps it one message, and requeues it. A 1024-device cell therefore
/// needs `producer_threads` OS threads instead of 1024 — the producer-side
/// half of the fan-in scale-out. Per-device FIFO ordering is preserved
/// because a device is owned by exactly one worker while popped.
struct ProducerEngine {
    heap: Mutex<std::collections::BinaryHeap<DueEntry>>,
    work: Condvar,
    /// Devices whose sentinel has not been appended yet.
    active: AtomicUsize,
    /// Monotonic requeue counter (heap tie-break fairness).
    next_seq: AtomicU64,
}

impl ProducerEngine {
    fn new(devices: usize) -> Self {
        Self {
            heap: Mutex::new(std::collections::BinaryHeap::with_capacity(devices)),
            work: Condvar::new(),
            active: AtomicUsize::new(devices),
            next_seq: AtomicU64::new(0),
        }
    }

    /// (Re)queue a device at its next deadline and wake waiting workers.
    fn push(&self, state: Box<DeviceProducer>) {
        let entry = DueEntry {
            due: state.next_due(),
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            state,
        };
        self.heap.lock().push(entry);
        self.work.notify_all();
    }

    /// A device appended its sentinel (or failed terminally).
    fn device_finished(&self) {
        if self.active.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last device done: wake idle workers so they can exit.
            self.work.notify_all();
        }
    }
}

/// One worker of the multiplexed producer engine: pop the earliest-due
/// device, step it one message, requeue it. Exits once every device has
/// finished. On `stop_all` the remaining devices are drained and their
/// sentinels appended, exactly like the threaded path. Returns the number
/// of messages this worker stepped.
fn engine_worker(shared: &Shared, engine: &ProducerEngine) -> Result<u64, String> {
    let mut stepped = 0u64;
    loop {
        let mut entry = {
            let mut heap = engine.heap.lock();
            loop {
                if engine.active.load(Ordering::Acquire) == 0 {
                    return Ok(stepped);
                }
                let stopping = shared.stop_all.load(Ordering::Relaxed);
                match heap.peek() {
                    // Every unfinished device is held by another worker:
                    // wait for a requeue (bounded, so stop/finish without a
                    // notify are still observed).
                    None => {
                        engine.work.wait_for(&mut heap, Duration::from_millis(10));
                    }
                    Some(top) => {
                        let now = Instant::now();
                        if stopping || top.due <= now {
                            break heap.pop().expect("peeked entry");
                        }
                        // Sleep until the earliest deadline; a push with an
                        // earlier one notifies and we re-peek.
                        let wait = top.due - now;
                        engine.work.wait_for(&mut heap, wait);
                    }
                }
            }
        };
        let more = if shared.stop_all.load(Ordering::Relaxed) {
            false
        } else {
            match entry.state.step(shared) {
                Ok(more) => more,
                Err(e) => {
                    // A failed device fails the run (threaded-path
                    // semantics); unblock the other workers first.
                    shared.stop_all.store(true, Ordering::Relaxed);
                    engine.device_finished();
                    return Err(e);
                }
            }
        };
        if more {
            stepped += 1;
            engine.push(entry.state);
        } else {
            let res = entry.state.finish(shared);
            if res.is_err() {
                shared.stop_all.store(true, Ordering::Relaxed);
            }
            engine.device_finished();
            res?;
        }
    }
}

/// Hot-path counters resolved once per consumer loop. `ctx.counter(name)`
/// takes the registry's counter-map lock and hashes the name; at ~1M
/// messages per run that lookup is pure overhead, so the loops cache the
/// `Arc<Counter>` handles up front and bump them lock-free per message.
struct HotCounters {
    messages_processed: Arc<pilot_metrics::Counter>,
    process_errors: Arc<pilot_metrics::Counter>,
    decode_errors: Arc<pilot_metrics::Counter>,
}

impl HotCounters {
    fn new(ctx: &Context) -> Self {
        Self {
            messages_processed: ctx.counter("messages_processed"),
            process_errors: ctx.counter("process_errors"),
            decode_errors: ctx.counter("decode_errors"),
        }
    }
}

/// Decode one non-sentinel record and run the cloud function on it,
/// recording the Network span over `[net_start_us, net_end_us]` (the
/// record's transfer window — per-batch wall clock under prefetch) and a
/// CloudProcessor span covering decode + invoke. Returns 1 on success,
/// 0 when the invocation failed (the error span is recorded; the stream
/// continues — fault isolation).
#[allow(clippy::too_many_arguments)]
fn process_record(
    shared: &Shared,
    partition: usize,
    record: &Record,
    net_start_us: u64,
    net_end_us: u64,
    func: &mut CloudFn,
    scratch: &mut pilot_datagen::Block,
    counters: &HotCounters,
) -> Result<u64, String> {
    let ctx = &shared.ctx;
    let metrics = shared.metrics();
    let bytes = record.value.len() as u64;
    // Cloud processing: deserialization is part of the processing service
    // time (it is what the paper's Dask consumer tasks spend their floor
    // cost on).
    let p0 = metrics.now_us();
    let _produced_at = match pilot_datagen::decode_any_into(&record.value, scratch) {
        Ok(v) => v,
        Err(e) => {
            counters.decode_errors.incr();
            return Err(format!("wire decode failed: {e}"));
        }
    };
    let mid = metric_msg_id(partition, scratch.msg_id);
    metrics.record(
        ctx.job_id,
        mid,
        Component::Network(shared.link_broker_cloud.name().to_string()),
        net_start_us,
        net_end_us,
        bytes,
    );
    match func(ctx, scratch) {
        Ok(_outcome) => {
            metrics.record(
                ctx.job_id,
                mid,
                Component::CloudProcessor,
                p0,
                metrics.now_us(),
                bytes,
            );
            counters.messages_processed.incr();
            Ok(1)
        }
        Err(msg) => {
            metrics.record_span(pilot_metrics::Span {
                job_id: ctx.job_id,
                msg_id: mid,
                component: Component::CloudProcessor,
                start_us: p0,
                end_us: metrics.now_us(),
                bytes,
                error: true,
            });
            counters.process_errors.incr();
            // A failing function invocation is recorded and the stream
            // continues — one bad message must not kill the processor
            // (fault isolation).
            let _ = msg;
            Ok(0)
        }
    }
}

/// Pause every assigned partition that already saw its sentinel so
/// `poll_many` stops asking for it — a fresh consumer after a rebalance may
/// be handed partitions an earlier owner finished.
fn pause_finished(consumer: &mut Consumer, shared: &Shared, parts: &[usize]) {
    for &p in parts {
        if shared.partition_done(p) {
            let _ = consumer.pause(p);
        }
    }
}

/// One consumer member's processing loop. Returns messages processed.
fn consumer_loop(shared: &Arc<Shared>, member: String, stop: &AtomicBool) -> Result<u64, String> {
    if shared.cfg.prefetch_depth > 0 {
        return consumer_loop_prefetch(shared, member, stop);
    }
    let ctx = &shared.ctx;
    let group = format!("pilot-edge-{}", ctx.job_id);
    // Membership is registered synchronously at spawn time (see
    // `spawn_consumer`) so steady-state runs see no startup rebalances and
    // therefore no at-least-once redelivery; fall back to joining here for
    // robustness.
    let (mut my_gen, mut parts) = shared
        .coordinator
        .assignment(&member)
        .unwrap_or_else(|| shared.coordinator.join(&member));
    let mut consumer = Consumer::new(shared.broker.clone(), &shared.topic, &group, &parts)
        .map_err(|e| e.to_string())?;
    pause_finished(&mut consumer, shared, &parts);
    let (mut fn_gen, factory) = shared.cloud_slot.current();
    let mut func: CloudFn = factory(ctx);
    let counters = HotCounters::new(ctx);
    let mut processed = 0u64;
    // One scratch block per consumer: every message decodes into it
    // (`decode_any_into`), so the steady state allocates nothing even for
    // the paper's 2.6 MB messages — the data Vec reaches its high-water
    // capacity after the first message and is reused thereafter.
    let mut scratch = pilot_datagen::Block::default();

    while !stop.load(Ordering::Relaxed)
        && !shared.stop_all.load(Ordering::Relaxed)
        && !shared.all_partitions_done()
    {
        // Rebalance?
        if shared.coordinator.generation() != my_gen {
            match shared.coordinator.assignment(&member) {
                Some((g, p)) => {
                    my_gen = g;
                    parts = p;
                    consumer = Consumer::new(shared.broker.clone(), &shared.topic, &group, &parts)
                        .map_err(|e| e.to_string())?;
                    pause_finished(&mut consumer, shared, &parts);
                }
                None => break,
            }
        }
        // Hot-swapped processing function?
        let (g, factory) = shared.cloud_slot.current();
        if g != fn_gen {
            fn_gen = g;
            func = factory(ctx);
        }

        if parts.is_empty() || consumer.paused().len() == parts.len() {
            // Nothing assigned (or all assigned partitions finished): idle
            // politely until rebalance or completion.
            std::thread::sleep(shared.cfg.poll_timeout);
            continue;
        }
        // One multi-partition fetch for everything this member owns: a
        // single blocking wait on the topic's arrival condvar, however many
        // partitions are assigned (a member owning 128 partitions of a
        // 1024-device cell pays one wakeup, not 128 poll timeouts).
        let batches = consumer
            .poll_many(shared.cfg.fetch_max, shared.cfg.poll_timeout)
            .map_err(|e| e.to_string())?;
        if batches.is_empty() {
            continue;
        }
        let metrics = shared.metrics();
        for (p, records) in batches {
            for record in records {
                if record.value.is_empty() {
                    shared.mark_partition_done(p);
                    let _ = consumer.pause(p);
                    continue;
                }
                // Broker → cloud transport, paid inline.
                let n0 = metrics.now_us();
                shared.link_broker_cloud.transfer(record.value.len() as u64);
                let n1 = metrics.now_us();
                processed += process_record(
                    shared,
                    p,
                    &record,
                    n0,
                    n1,
                    &mut func,
                    &mut scratch,
                    &counters,
                )?;
            }
        }
        consumer.commit();
    }
    consumer.commit();
    shared.coordinator.leave(&member);
    Ok(processed)
}

/// A consumer batch fetched (and transferred) ahead by the prefetch
/// thread: records of one partition plus the wall-clock window their
/// shared broker→cloud transfer occupied.
struct FetchedBatch {
    partition: usize,
    records: Vec<Record>,
    net_start_us: u64,
    net_end_us: u64,
}

/// The prefetch thread: owns the `Consumer`, handles rebalances, polls
/// partitions round-robin, pays the broker→cloud transfer per batch (one
/// reservation, propagation charged once), and hands completed batches to
/// the processing loop through a depth-bounded queue (send blocks when the
/// processor is `prefetch_depth` batches behind — backpressure). Errors
/// travel through the same queue.
fn prefetch_loop(
    shared: &Shared,
    member: &str,
    quit: &AtomicBool,
    tx: &mpsc::SyncSender<Result<FetchedBatch, String>>,
) {
    let group = format!("pilot-edge-{}", shared.ctx.job_id);
    let (mut my_gen, mut parts) = shared
        .coordinator
        .assignment(member)
        .unwrap_or_else(|| shared.coordinator.join(member));
    let mut consumer = match Consumer::new(shared.broker.clone(), &shared.topic, &group, &parts) {
        Ok(c) => c,
        Err(e) => {
            let _ = tx.send(Err(e.to_string()));
            return;
        }
    };
    pause_finished(&mut consumer, shared, &parts);
    let metrics = shared.metrics();
    while !quit.load(Ordering::Relaxed)
        && !shared.stop_all.load(Ordering::Relaxed)
        && !shared.all_partitions_done()
    {
        if shared.coordinator.generation() != my_gen {
            match shared.coordinator.assignment(member) {
                Some((g, p)) => {
                    my_gen = g;
                    parts = p;
                    consumer =
                        match Consumer::new(shared.broker.clone(), &shared.topic, &group, &parts) {
                            Ok(c) => c,
                            Err(e) => {
                                let _ = tx.send(Err(e.to_string()));
                                return;
                            }
                        };
                    // A replayed sentinel after a rebalance is forwarded
                    // again; marking done is idempotent downstream.
                    pause_finished(&mut consumer, shared, &parts);
                }
                None => break,
            }
        }
        if parts.is_empty() || consumer.paused().len() == parts.len() {
            std::thread::sleep(shared.cfg.poll_timeout);
            continue;
        }
        // One multi-partition fetch across everything this member owns
        // (shared condvar wait, not a timeout per partition).
        let batches = match consumer.poll_many(shared.cfg.fetch_max, shared.cfg.poll_timeout) {
            Ok(b) => b,
            Err(e) => {
                let _ = tx.send(Err(e.to_string()));
                return;
            }
        };
        if batches.is_empty() {
            continue;
        }
        for (p, records) in batches {
            // Pay the broker → cloud transfer for the whole batch while
            // the processing loop chews on earlier batches: one
            // reservation, transit for the summed bytes, propagation once.
            let sizes: Vec<u64> = records
                .iter()
                .filter(|r| !r.value.is_empty())
                .map(|r| r.value.len() as u64)
                .collect();
            let net_start_us = metrics.now_us();
            if !sizes.is_empty() {
                shared.link_broker_cloud.reserve_batch(&sizes).wait();
            }
            let net_end_us = metrics.now_us();
            if records.iter().any(|r| r.value.is_empty()) {
                // Sentinel forwarded: stop polling this partition even
                // before the processing loop marks it done.
                let _ = consumer.pause(p);
            }
            let batch = FetchedBatch {
                partition: p,
                records,
                net_start_us,
                net_end_us,
            };
            if tx.send(Ok(batch)).is_err() {
                // Processing loop exited; offsets stay uncommitted so a
                // successor redelivers (at-least-once).
                return;
            }
        }
        // Commit only after the fetched batches are safely queued.
        consumer.commit();
    }
    consumer.commit();
}

/// Prefetching variant of [`consumer_loop`]: a dedicated thread fetches
/// and transfers batch N+1 while this loop decodes and processes batch N,
/// overlapping WAN flight time with compute.
fn consumer_loop_prefetch(
    shared: &Arc<Shared>,
    member: String,
    stop: &AtomicBool,
) -> Result<u64, String> {
    let ctx = &shared.ctx;
    let (tx, rx) = mpsc::sync_channel(shared.cfg.prefetch_depth);
    let quit = Arc::new(AtomicBool::new(false));
    let fetcher = {
        let shared2 = Arc::clone(shared);
        let member2 = member.clone();
        let quit2 = Arc::clone(&quit);
        std::thread::spawn(move || prefetch_loop(&shared2, &member2, &quit2, &tx))
    };
    let (mut fn_gen, factory) = shared.cloud_slot.current();
    let mut func: CloudFn = factory(ctx);
    let counters = HotCounters::new(ctx);
    let mut processed = 0u64;
    let mut scratch = pilot_datagen::Block::default();
    let result = loop {
        if stop.load(Ordering::Relaxed)
            || shared.stop_all.load(Ordering::Relaxed)
            || shared.all_partitions_done()
        {
            break Ok(());
        }
        match rx.recv_timeout(shared.cfg.poll_timeout) {
            Ok(Ok(batch)) => {
                // Hot-swapped processing function?
                let (g, factory) = shared.cloud_slot.current();
                if g != fn_gen {
                    fn_gen = g;
                    func = factory(ctx);
                }
                let mut failed = None;
                for record in &batch.records {
                    if record.value.is_empty() {
                        shared.mark_partition_done(batch.partition);
                        continue;
                    }
                    match process_record(
                        shared,
                        batch.partition,
                        record,
                        batch.net_start_us,
                        batch.net_end_us,
                        &mut func,
                        &mut scratch,
                        &counters,
                    ) {
                        Ok(n) => processed += n,
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                if let Some(e) = failed {
                    break Err(e);
                }
            }
            Ok(Err(e)) => break Err(e),
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break Ok(()),
        }
    };
    quit.store(true, Ordering::Relaxed);
    drop(rx); // unblocks a fetcher parked on a full queue
    let _ = fetcher.join();
    shared.coordinator.leave(&member);
    result.map(|()| processed)
}

/// Factories captured for producer tasks.
struct ProducerFns {
    produce: crate::faas::ProduceFactory,
    edge: crate::faas::EdgeFactory,
}

/// The shared control surface of a running pipeline: everything a monitor
/// thread (e.g. the [`crate::adapt::AutoScaler`]) needs to observe and
/// adapt it. Internal — applications hold a [`RunningPipeline`].
pub(crate) struct PipelineCtl {
    pub(crate) shared: Arc<Shared>,
    consumers: Mutex<Vec<(String, Arc<AtomicBool>, TaskFuture)>>,
    retired: Mutex<Vec<TaskFuture>>,
    cloud_client: Client,
    next_member: AtomicUsize,
}

/// A live pipeline. Obtain via [`EdgeToCloudPipeline::start`].
pub struct RunningPipeline {
    pub(crate) ctl: Arc<PipelineCtl>,
    producers: Vec<TaskFuture>,
    scaler: Mutex<Option<crate::adapt::AutoScalerHandle>>,
}

pub(crate) fn start(
    builder: EdgeToCloudPipeline,
    edge: Pilot,
    cloud: Pilot,
    broker_pilot: Pilot,
) -> Result<RunningPipeline, PipelineError> {
    let job_id = NEXT_JOB_ID.fetch_add(1, Ordering::Relaxed);
    let cfg = builder.config.clone();
    let broker = broker_pilot
        .start_broker()
        .map_err(|e| PipelineError::Task(e.to_string()))?;
    let params = broker_pilot
        .start_param_server()
        .map_err(|e| PipelineError::Task(e.to_string()))?;
    let metrics = builder.metrics.clone().unwrap_or_default();
    let topic = cfg
        .topic
        .clone()
        .unwrap_or_else(|| format!("pilot-edge-{job_id}"));
    broker.create_topic(&topic, cfg.devices, cfg.retention)?;
    // One intra-task compute pool per cloud pilot, sized from its cores
    // unless overridden: a 1-core pilot gets a width-1 (inline) pool, a
    // multi-core one lets each model invocation fan out. All consumers of
    // this pipeline share the pool; concurrent jobs serialise inside it.
    let compute_width = cfg
        .compute_threads
        .unwrap_or_else(|| cloud.description().cores);
    let ctx = Context::new(
        job_id,
        cfg.devices,
        params,
        metrics,
        builder.settings.clone(),
    )
    .with_compute_pool(Arc::new(pilot_dataflow::ComputePool::new(compute_width)));
    let shared = Arc::new(Shared {
        ctx,
        broker,
        topic,
        cfg: cfg.clone(),
        link_edge_broker: builder.link_edge_broker.clone(),
        link_broker_cloud: builder.link_broker_cloud.clone(),
        cloud_slot: SwappableCloudFactory::new(
            builder.cloud_factory.clone().expect("validated by builder"),
        ),
        coordinator: GroupCoordinator::new(cfg.devices),
        done_partitions: Mutex::new(HashSet::new()),
        stop_all: AtomicBool::new(false),
    });

    let edge_client = edge
        .client()
        .map_err(|e| PipelineError::Task(e.to_string()))?;
    let cloud_client = cloud
        .client()
        .map_err(|e| PipelineError::Task(e.to_string()))?;

    let fns = Arc::new(ProducerFns {
        produce: builder.produce_factory.clone().expect("validated"),
        edge: builder.edge_factory.clone(),
    });
    let mut producers = Vec::new();
    if let Some(workers) = cfg.producer_threads {
        // Multiplexed engine: N devices share `workers` engine tasks via a
        // deadline heap — the fan-in scale-out path for 1000-device cells,
        // where thread-per-device would need 1000 edge cores.
        let engine = Arc::new(ProducerEngine::new(cfg.devices));
        for device in 0..cfg.devices {
            engine.push(Box::new(DeviceProducer::new(&shared, device, &fns)));
        }
        for w in 0..workers {
            let shared2 = Arc::clone(&shared);
            let engine2 = Arc::clone(&engine);
            let fut = edge_client.submit_full(
                &format!("produce-mux-{w}"),
                Resources::default(),
                &[],
                move |_| engine_worker(&shared2, &engine2).map(|n| Arc::new(n) as Payload),
            )?;
            producers.push(fut);
        }
    } else {
        // Producer tasks: one per device, each occupying one edge worker
        // core (the paper's "edge devices are simulated with a Dask task").
        producers.reserve(cfg.devices);
        for device in 0..cfg.devices {
            let shared2 = Arc::clone(&shared);
            let fns2 = Arc::clone(&fns);
            let fut = edge_client.submit_full(
                &format!("produce-edge-{device}"),
                Resources::default(),
                &[],
                move |_| producer_loop(&shared2, device, &fns2).map(|n| Arc::new(n) as Payload),
            )?;
            producers.push(fut);
        }
    }

    let ctl = Arc::new(PipelineCtl {
        shared,
        consumers: Mutex::new(Vec::new()),
        retired: Mutex::new(Vec::new()),
        cloud_client,
        next_member: AtomicUsize::new(0),
    });
    // Join every startup member before submitting any consumer task, so
    // the first poll already sees the final assignment (no startup
    // rebalance, no at-least-once redelivery). Scale events later may
    // still redeliver in-flight batches — inherent to consumer-group
    // semantics and documented on `scale_processors`.
    let members: Vec<String> = (0..cfg.processors)
        .map(|_| {
            let m = format!(
                "processor-{}",
                ctl.next_member.fetch_add(1, Ordering::Relaxed)
            );
            ctl.shared.coordinator.join(&m);
            m
        })
        .collect();
    for member in members {
        ctl.spawn_joined_consumer(member)?;
    }
    Ok(RunningPipeline {
        ctl,
        producers,
        scaler: Mutex::new(None),
    })
}

impl PipelineCtl {
    fn spawn_consumer(&self) -> Result<(), PipelineError> {
        let member = format!(
            "processor-{}",
            self.next_member.fetch_add(1, Ordering::Relaxed)
        );
        // Register membership before the task runs so partition assignment
        // is stable from the first poll (no startup rebalance churn).
        self.shared.coordinator.join(&member);
        self.spawn_joined_consumer(member)
    }

    /// Submit the consumer task for an already-joined member.
    fn spawn_joined_consumer(&self, member: String) -> Result<(), PipelineError> {
        let stop = Arc::new(AtomicBool::new(false));
        let shared2 = Arc::clone(&self.shared);
        let member2 = member.clone();
        let stop2 = Arc::clone(&stop);
        let fut = self.cloud_client.submit_full(
            &format!("process-cloud-{member}"),
            Resources::default(),
            &[],
            move |_| consumer_loop(&shared2, member2, &stop2).map(|n| Arc::new(n) as Payload),
        )?;
        self.consumers.lock().push((member, stop, fut));
        Ok(())
    }

    pub(crate) fn processor_count(&self) -> usize {
        self.consumers.lock().len()
    }

    /// Total consumer-group lag (records behind the watermarks).
    pub(crate) fn total_lag(&self) -> u64 {
        let group = format!("pilot-edge-{}", self.shared.ctx.job_id);
        self.shared
            .broker
            .lag(&group, &self.shared.topic)
            .map(|v| v.iter().sum())
            .unwrap_or(0)
    }

    pub(crate) fn is_stopped(&self) -> bool {
        self.shared.stop_all.load(Ordering::Relaxed)
    }

    pub(crate) fn all_done(&self) -> bool {
        self.shared.all_partitions_done()
    }

    pub(crate) fn scale_processors(&self, n: usize) -> Result<(), PipelineError> {
        if n == 0 {
            return Err(PipelineError::Capacity(
                "cannot scale processors to 0".into(),
            ));
        }
        loop {
            let current = self.consumers.lock().len();
            if current == n {
                return Ok(());
            }
            if current < n {
                self.spawn_consumer()?;
            } else {
                let (_, stop, fut) = self.consumers.lock().pop().expect("non-empty");
                stop.store(true, Ordering::Relaxed);
                self.retired.lock().push(fut);
            }
        }
    }
}

impl RunningPipeline {
    /// The job id linking this run's metrics.
    pub fn job_id(&self) -> u64 {
        self.ctl.shared.ctx.job_id
    }

    /// The context shared with the FaaS functions.
    pub fn context(&self) -> &Context {
        &self.ctl.shared.ctx
    }

    /// The broker topic carrying this pipeline's data.
    pub fn topic(&self) -> &str {
        &self.ctl.shared.topic
    }

    /// Current consumer-pool size.
    pub fn processor_count(&self) -> usize {
        self.ctl.processor_count()
    }

    /// Total consumer-group lag: records produced but not yet consumed.
    /// The autoscaler's input signal; also useful for dashboards.
    pub fn lag(&self) -> u64 {
        self.ctl.total_lag()
    }

    /// Hot-swap the cloud-processing function (paper Section II-D). Every
    /// consumer re-instantiates from the new factory before its next
    /// message. Returns the new function generation.
    pub fn replace_cloud_function(&self, factory: CloudFactory) -> u64 {
        self.ctl.shared.cloud_slot.replace(factory)
    }

    /// Scale the consumer pool to `n` members at runtime; partitions are
    /// rebalanced across the new member set. During the rebalance, records
    /// in flight at the old owner may be redelivered to the new one
    /// (at-least-once, as in Kafka); distinct-message accounting in the
    /// run summary is unaffected.
    pub fn scale_processors(&self, n: usize) -> Result<(), PipelineError> {
        self.ctl.scale_processors(n)
    }

    /// Attach a lag-driven autoscaler (paper Section V: "a distributed
    /// workload management system that can select, acquire and dynamically
    /// scale resources across the continuum at runtime based on the
    /// application's objectives"). Replaces any previously attached scaler.
    pub fn autoscale(&self, config: crate::adapt::AutoScalerConfig) {
        let handle = crate::adapt::AutoScaler::spawn(Arc::clone(&self.ctl), config);
        if let Some(old) = self.scaler.lock().replace(handle) {
            old.stop();
        }
    }

    /// Scaling decisions made by the attached autoscaler so far.
    pub fn scaling_events(&self) -> Vec<crate::adapt::ScalingEvent> {
        self.scaler
            .lock()
            .as_ref()
            .map(|s| s.events())
            .unwrap_or_default()
    }

    /// Linked metrics for this job so far (usable mid-run).
    pub fn report(&self) -> PipelineReport {
        self.ctl.shared.metrics().report_for_job(self.job_id())
    }

    /// Stop everything without waiting for stream completion.
    pub fn abort(&self) {
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
    }

    /// Wait for the run to complete: producers finish their streams,
    /// consumers drain every partition's sentinel. Returns the run summary.
    pub fn wait(self, timeout: Duration) -> Result<RunSummary, PipelineError> {
        let deadline = Instant::now() + timeout;
        // 1. Producers run to end-of-stream.
        for fut in &self.producers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match fut.wait_timeout(remaining) {
                None => {
                    self.abort();
                    return Err(PipelineError::Timeout);
                }
                Some(Err(e)) => {
                    self.abort();
                    return Err(PipelineError::Task(e.to_string()));
                }
                Some(Ok(_)) => {}
            }
        }
        // 2. Consumers drain all partitions (skipped when the run was
        // aborted — consumers exit on `stop_all` without draining).
        let grace = Instant::now() + Duration::from_millis(500);
        let mut evicted: HashSet<String> = HashSet::new();
        while !self.ctl.all_done() && !self.ctl.is_stopped() {
            if Instant::now() >= deadline {
                self.abort();
                return Err(PipelineError::Timeout);
            }
            for (member, stop, fut) in self.ctl.consumers.lock().iter() {
                // Surface consumer crashes instead of spinning to timeout.
                if fut.is_finished() {
                    if let Some(Err(e)) = fut.wait_timeout(Duration::ZERO) {
                        self.abort();
                        return Err(PipelineError::Task(e.to_string()));
                    }
                }
                // Starvation eviction: a member whose task still has no
                // worker core after the grace period (e.g. its pilot is
                // oversubscribed by another pipeline) must not hold
                // partitions hostage — hand them to live members.
                if Instant::now() > grace
                    && !evicted.contains(member)
                    && matches!(
                        fut.state(),
                        Some(pilot_dataflow::TaskState::Pending)
                            | Some(pilot_dataflow::TaskState::Ready)
                    )
                {
                    stop.store(true, Ordering::Relaxed);
                    self.ctl.shared.coordinator.leave(member);
                    evicted.insert(member.clone());
                }
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // 3. Shut the pool down and collect.
        if let Some(scaler) = self.scaler.lock().take() {
            scaler.stop();
        }
        self.ctl.shared.stop_all.store(true, Ordering::Relaxed);
        let consumers = std::mem::take(&mut *self.ctl.consumers.lock());
        for (_, _, fut) in consumers {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if fut
                .wait_timeout(remaining.max(Duration::from_millis(100)))
                .is_none()
            {
                return Err(PipelineError::Timeout);
            }
        }
        for fut in std::mem::take(&mut *self.ctl.retired.lock()) {
            let _ = fut.wait_timeout(Duration::from_millis(100));
        }
        let ctx = &self.ctl.shared.ctx;
        Ok(RunSummary::from_report(
            ctx.job_id,
            ctx.metrics.report_for_job(ctx.job_id),
            ctx.counter("outliers_detected").get(),
        ))
    }
}

impl std::fmt::Debug for RunningPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunningPipeline")
            .field("job_id", &self.job_id())
            .field("topic", &self.ctl.shared.topic)
            .field("processors", &self.processor_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faas::ProcessOutcome;
    use crate::pipeline::EdgeToCloudPipeline;
    use crate::processors::{baseline_factory, datagen_produce_factory};
    use pilot_core::{PilotComputeService, PilotDescription};
    use pilot_datagen::DataGenConfig;

    const WAIT: Duration = Duration::from_secs(30);

    fn pilots(svc: &PilotComputeService, edge_cores: usize, cloud_cores: usize) -> (Pilot, Pilot) {
        let edge = svc
            .submit_and_wait(PilotDescription::local(edge_cores, 16.0), WAIT)
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(cloud_cores, 16.0), WAIT)
            .unwrap();
        (edge, cloud)
    }

    #[test]
    fn end_to_end_baseline_run() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 2, 2);
        let summary = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(25), 8))
            .process_cloud_function(baseline_factory())
            .devices(2)
            .run(WAIT)
            .unwrap();
        assert_eq!(summary.messages, 16, "2 devices × 8 messages");
        assert_eq!(summary.errors, 0);
        assert!(summary.throughput_msgs > 0.0);
        // All expected components reported.
        assert!(summary.report.component(&Component::EdgeProducer).is_some());
        assert!(summary.report.component(&Component::Broker).is_some());
        assert!(summary
            .report
            .component(&Component::CloudProcessor)
            .is_some());
    }

    #[test]
    fn per_message_point_counts_survive_transport() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 1, 1);
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(40), 5))
            .process_cloud_function(baseline_factory())
            .devices(1)
            .start()
            .unwrap();
        let ctx_points = running.context().counter("points_processed");
        let summary = running.wait(WAIT).unwrap();
        assert_eq!(summary.messages, 5);
        assert_eq!(ctx_points.get(), 200, "5 messages × 40 points");
    }

    #[test]
    fn processing_error_is_isolated() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 1, 1);
        // Fail on every other message; the stream must still complete.
        let flaky: CloudFactory = Arc::new(|_ctx| {
            let mut n = 0u64;
            Box::new(move |_ctx: &Context, _block| {
                n += 1;
                if n.is_multiple_of(2) {
                    Err("synthetic failure".into())
                } else {
                    Ok(ProcessOutcome::default())
                }
            })
        });
        let summary = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 6))
            .process_cloud_function(flaky)
            .devices(1)
            .run(WAIT)
            .unwrap();
        assert_eq!(summary.errors, 3, "3 of 6 messages fail");
        // All 6 still linked end-to-end through producer/broker spans.
        assert_eq!(summary.messages, 6);
    }

    #[test]
    fn hot_swap_changes_function_mid_run() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 1, 1);
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 30))
            .process_cloud_function(baseline_factory())
            .devices(1)
            .rate_per_device(100.0) // ~300 ms stream: time to swap
            .start()
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        let swapped: CloudFactory = Arc::new(|_ctx| {
            Box::new(move |ctx: &Context, _block| {
                ctx.counter("swapped_invocations").incr();
                Ok(ProcessOutcome::default())
            })
        });
        let gen = running.replace_cloud_function(swapped);
        assert_eq!(gen, 2);
        let ctx_counter = running.context().counter("swapped_invocations");
        let summary = running.wait(WAIT).unwrap();
        assert_eq!(summary.messages, 30);
        let swapped_count = ctx_counter.get();
        assert!(
            swapped_count > 0 && swapped_count < 30,
            "swap must take effect mid-stream (got {swapped_count})"
        );
    }

    #[test]
    fn scale_processors_up_and_down() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 4, 6);
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 20))
            .process_cloud_function(baseline_factory())
            .devices(4)
            .processors(1)
            .rate_per_device(100.0)
            .start()
            .unwrap();
        assert_eq!(running.processor_count(), 1);
        running.scale_processors(4).unwrap();
        assert_eq!(running.processor_count(), 4);
        std::thread::sleep(Duration::from_millis(50));
        running.scale_processors(2).unwrap();
        assert_eq!(running.processor_count(), 2);
        let summary = running.wait(WAIT).unwrap();
        assert_eq!(summary.messages, 80, "4 devices × 20 messages");
        assert_eq!(summary.errors, 0);
    }

    #[test]
    fn scale_to_zero_rejected() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 1, 1);
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 2))
            .process_cloud_function(baseline_factory())
            .devices(1)
            .start()
            .unwrap();
        assert!(running.scale_processors(0).is_err());
        running.wait(WAIT).unwrap();
    }

    #[test]
    fn metric_msg_ids_unique_across_devices() {
        assert_ne!(metric_msg_id(0, 5), metric_msg_id(1, 5));
        assert_eq!(metric_msg_id(0, 5), 5);
        assert_eq!(metric_msg_id(3, 0) >> DEVICE_SHIFT, 3);
    }

    #[test]
    fn abort_stops_early() {
        let svc = PilotComputeService::new();
        let (edge, cloud) = pilots(&svc, 1, 1);
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 100_000))
            .process_cloud_function(baseline_factory())
            .devices(1)
            .rate_per_device(50.0) // would take ~2000 s to finish
            .start()
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        running.abort();
        // After abort the producers stop, append sentinels, and wait()
        // completes quickly.
        let summary = running.wait(Duration::from_secs(10)).unwrap();
        assert!(summary.messages < 100_000);
    }
}
