//! One edge cell as a pair of reactor tasks on the shared pool.
//!
//! A cell is a self-contained ingest loop — its own broker (hosted by its
//! pooled pilot), one partition per device, a producer and a consumer —
//! but unlike [`crate::pipeline::EdgeToCloudPipeline`] it owns **no
//! threads**: both sides are [`ReactorTask`] state machines multiplexed
//! onto the federation's one [`pilot_dataflow::LocalExecutor`]. A
//! 1024-cell continuum is 2048 polled tasks on k reactor threads, not
//! 2048 OS threads.
//!
//! The message protocol is byte-identical to the single-cell pipeline:
//! blocks from the seeded generator, framework-owned per-device
//! `msg_id` sequence, codec-encoded payloads, an empty-record sentinel
//! per partition at end of stream, commit-after-round at-least-once
//! consumption. The conservation test in `tests/federation.rs` leans on
//! exactly this: a federated cell delivers the same `(msg_id, payload)`
//! set as the equivalent standalone pipeline run.

use crate::faas::{CloudFn, Context, ProduceFn};
use crate::runtime::sentinel;
use bytes::{Bytes, BytesMut};
use pilot_broker::{Broker, Consumer, Record};
use pilot_dataflow::{ReactorPoll, ReactorTask};
use pilot_datagen::{decode_any_into, Block, Codec};
use pilot_metrics::Counter;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::Waker;
use std::time::{Duration, Instant};

/// Messages a producer emits per poll before yielding (cooperative
/// fairness across cells sharing the reactor pool).
const PRODUCE_BUDGET: usize = 32;

/// How long an over-watermark producer parks before re-checking the
/// consumer's progress.
const BACKPRESSURE_PAUSE: Duration = Duration::from_micros(200);

/// One device's stream inside the producer task.
struct DeviceStream {
    produce: ProduceFn,
    /// Framework-owned per-device message sequence (matches the
    /// single-cell runtime's identity rule).
    sent: u64,
    done: bool,
}

/// The cell's producer side: every device's stream, multiplexed into one
/// reactor task appending to the cell's private broker.
pub(crate) struct CellProducerTask {
    ctx: Context,
    broker: Broker,
    topic: String,
    streams: Vec<DeviceStream>,
    scratch: BytesMut,
    /// Round-robin cursor over devices.
    cursor: usize,
    /// Cell-local messages appended, for the backpressure watermark.
    appended: u64,
    /// The consumer task's processed count (shared).
    processed: Arc<AtomicU64>,
    /// Park when `appended - processed` exceeds this (0 = unbounded).
    backpressure: usize,
    produced_ctr: Arc<Counter>,
    abort: Arc<AtomicBool>,
}

impl CellProducerTask {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: Context,
        broker: Broker,
        topic: String,
        streams: Vec<ProduceFn>,
        processed: Arc<AtomicU64>,
        backpressure: usize,
        produced_ctr: Arc<Counter>,
        abort: Arc<AtomicBool>,
    ) -> Self {
        Self {
            ctx,
            broker,
            topic,
            streams: streams
                .into_iter()
                .map(|produce| DeviceStream {
                    produce,
                    sent: 0,
                    done: false,
                })
                .collect(),
            scratch: BytesMut::new(),
            cursor: 0,
            appended: 0,
            processed,
            backpressure,
            produced_ctr,
            abort,
        }
    }

    fn fail(&self, e: String) -> ReactorPoll {
        self.abort.store(true, Ordering::Release);
        ReactorPoll::Complete(Err(e))
    }
}

impl ReactorTask for CellProducerTask {
    fn poll(&mut self, _waker: &Waker) -> ReactorPoll {
        if self.abort.load(Ordering::Acquire) {
            return ReactorPoll::Complete(Ok(self.appended));
        }
        let devices = self.streams.len();
        for _ in 0..PRODUCE_BUDGET {
            if self.streams.iter().all(|s| s.done) {
                return ReactorPoll::Complete(Ok(self.appended));
            }
            // Backpressure: a cell whose consumer lags keeps its broker
            // backlog bounded by parking instead of buffering the run.
            if self.backpressure > 0
                && self
                    .appended
                    .saturating_sub(self.processed.load(Ordering::Relaxed))
                    >= self.backpressure as u64
            {
                return ReactorPoll::PendingUntil(Instant::now() + BACKPRESSURE_PAUSE);
            }
            // Advance to the next live device.
            while self.streams[self.cursor % devices].done {
                self.cursor += 1;
            }
            let device = self.cursor % devices;
            self.cursor += 1;
            let stream = &mut self.streams[device];
            let t0 = self.ctx.metrics.now_us();
            match (stream.produce)(&self.ctx) {
                Some(mut block) => {
                    // The framework owns message identity (same rule as
                    // the single-cell producer stage).
                    block.msg_id = stream.sent;
                    stream.sent += 1;
                    let payload =
                        pilot_datagen::encode_with_into(Codec::F64, &block, t0, &mut self.scratch);
                    if let Err(e) = self.broker.append(
                        &self.topic,
                        device,
                        Record::new(payload).with_timestamp(t0),
                    ) {
                        return self.fail(e.to_string());
                    }
                    self.appended += 1;
                    self.produced_ctr.add(1);
                }
                None => {
                    stream.done = true;
                    if let Err(e) =
                        self.broker
                            .append(&self.topic, device, Record::new(Bytes::new()))
                    {
                        return self.fail(e.to_string());
                    }
                }
            }
        }
        ReactorPoll::Ready
    }
}

/// Completion bookkeeping shared between a cell's consumer and the
/// aggregation tiers above it.
pub(crate) struct CellCompletion {
    /// Completed cells in this cell's region (region aggregators run
    /// their final merge when this reaches the region's cell count).
    pub region_done: Arc<AtomicUsize>,
    /// Completed cells across the federation (drives the
    /// `federation.cells.active` gauge).
    pub cells_done: Arc<AtomicUsize>,
}

/// The cell's consumer side: one group member over every partition of the
/// cell's broker, decoding into a reusable scratch block and invoking the
/// cell's processing function.
pub(crate) struct CellConsumerTask {
    ctx: Context,
    consumer: Consumer,
    process: CloudFn,
    scratch: Block,
    fetch_max: usize,
    partitions: usize,
    finished: HashSet<usize>,
    processed: u64,
    processed_shared: Arc<AtomicU64>,
    processed_ctr: Arc<Counter>,
    completion: CellCompletion,
    abort: Arc<AtomicBool>,
}

impl CellConsumerTask {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        ctx: Context,
        broker: Broker,
        topic: &str,
        group: &str,
        partitions: usize,
        process: CloudFn,
        fetch_max: usize,
        processed_shared: Arc<AtomicU64>,
        processed_ctr: Arc<Counter>,
        completion: CellCompletion,
        abort: Arc<AtomicBool>,
    ) -> Result<Self, String> {
        let parts: Vec<usize> = (0..partitions).collect();
        let consumer = Consumer::new(broker, topic, group, &parts).map_err(|e| e.to_string())?;
        Ok(Self {
            ctx,
            consumer,
            process,
            scratch: Block {
                msg_id: 0,
                points: 0,
                features: 0,
                data: Vec::new(),
                labels: Vec::new(),
            },
            fetch_max,
            partitions,
            finished: HashSet::new(),
            processed: 0,
            processed_shared,
            processed_ctr,
            completion,
            abort,
        })
    }

    fn complete(&mut self) -> ReactorPoll {
        self.consumer.commit();
        self.completion.region_done.fetch_add(1, Ordering::AcqRel);
        self.completion.cells_done.fetch_add(1, Ordering::AcqRel);
        ReactorPoll::Complete(Ok(self.processed))
    }

    fn fail(&self, e: String) -> ReactorPoll {
        self.abort.store(true, Ordering::Release);
        ReactorPoll::Complete(Err(e))
    }
}

impl ReactorTask for CellConsumerTask {
    fn poll(&mut self, waker: &Waker) -> ReactorPoll {
        if self.abort.load(Ordering::Acquire) {
            return ReactorPoll::Complete(Ok(self.processed));
        }
        if self.finished.len() >= self.partitions {
            return self.complete();
        }
        let batches = match self.consumer.poll_many_ready(self.fetch_max, waker) {
            // Waker armed on the cell broker's arrival registry: the
            // producer's next append to a watched partition re-queues us.
            Ok(None) => return ReactorPoll::Pending,
            Ok(Some(b)) => b,
            Err(e) => return self.fail(e.to_string()),
        };
        if batches.is_empty() {
            // Every live partition paused (sentinel consumed) but the
            // finished check above has not fired: defensive pacing.
            return ReactorPoll::PendingUntil(Instant::now() + Duration::from_millis(1));
        }
        for (p, records) in batches {
            for record in records {
                if sentinel::is_sentinel(&record) {
                    self.finished.insert(p);
                    let _ = self.consumer.pause(p);
                    continue;
                }
                if let Err(e) = decode_any_into(&record.value, &mut self.scratch) {
                    return self.fail(format!("cell {}: decode: {e}", self.ctx.job_id));
                }
                if let Err(e) = (self.process)(&self.ctx, &self.scratch) {
                    return self.fail(format!("cell {}: process: {e}", self.ctx.job_id));
                }
                self.processed += 1;
                self.processed_shared.fetch_add(1, Ordering::Relaxed);
                self.processed_ctr.add(1);
            }
        }
        // Commit only after the fetched round is fully processed
        // (at-least-once, same policy as the pipeline consumer).
        self.consumer.commit();
        if self.finished.len() >= self.partitions {
            return self.complete();
        }
        ReactorPoll::Ready
    }
}
