//! Continuum scale-out: a 1024-cell federation on shared pools (DESIGN.md §14).
//!
//! This module runs **N edge cells** — each with its own broker shard and
//! its own (pooled) pilot — feeding **regional aggregators** feeding **one
//! cloud tier**, with continuous hierarchical FedAvg over the sharded
//! parameter plane under skewed per-cell data. It is the scale-out answer
//! to the single-cell [`crate::pipeline::EdgeToCloudPipeline`]: where the
//! pipeline spends OS threads per stage, the federation multiplexes every
//! cell onto shared infrastructure so cost grows O(k) in threads while the
//! cell count grows to 1024:
//!
//! * **One reactor.** All cells' producer and consumer tasks are
//!   [`pilot_dataflow::ReactorTask`] state machines on a single
//!   [`pilot_dataflow::LocalExecutor`] — `reactor_threads` OS threads
//!   total, not `cells × stages`.
//! * **One compute pool.** Every cell's processing function shares one
//!   [`ComputePool`] through its [`Context`].
//! * **Pooled pilots.** Each cell, region, and the cloud tier is backed by
//!   a [`pilot_core::PilotDescription::pooled`] pilot: it books capacity
//!   and hosts frameworks (broker / parameter server) but boots no private
//!   task cluster, so a 1024-pilot fleet adds no worker threads. The whole
//!   fleet activates on **one** lifecycle thread
//!   ([`pilot_core::PilotComputeService::submit_fleet`]).
//! * **Per-cell brokers.** Each cell appends to its own [`Broker`]
//!   instance — no cross-cell broker lock, and consumer wakeups stay exact
//!   (a cell's consumer is woken by its own producer's append, nothing
//!   else).
//! * **Sharded parameter plane with batched merges.** Cells publish to
//!   their *regional* parameter server; regions merge with one batched
//!   [`pilot_params::ParameterServer::get_many_if_newer`] per round (one
//!   shard-lock acquisition per shard per batch, not per cell) and push
//!   one model up to the cloud server; the cloud merges regions the same
//!   way and publishes the global model, which regions mirror back down
//!   with one batched `put_many` (see `aggregate.rs` for the key layout).
//!
//! Defaults elsewhere are untouched: the federation is opt-in via
//! [`FederationConfig`] / [`start`] / [`run`], and a single cell run this
//! way delivers exactly the same per-device message streams as the
//! standalone pipeline (see `tests/federation.rs`).

mod aggregate;
mod cell;

pub use aggregate::{GLOBAL_KEY, REGION_KEY};

use crate::faas::{CloudFactory, Context, ProcessOutcome, ProduceFn};
use crate::processors::datagen_produce_factory;
use aggregate::{CloudAggregatorTask, RegionAggregatorTask};
use cell::{CellCompletion, CellConsumerTask, CellProducerTask};
use pilot_broker::{Broker, RetentionPolicy};
use pilot_core::{PilotComputeService, PilotDescription};
use pilot_dataflow::{ComputePool, LocalExecutor, ReactorHandle};
use pilot_datagen::DataGenConfig;
use pilot_gateway::{Gateway, GatewayConfig, Request, Response, Router, StopFlag};
use pilot_metrics::{
    frames_json, prometheus_exposition, write_chrome_trace_to, Counter, MetricsRegistry, Probe,
    TelemetrySampler, TopView,
};
use pilot_params::ParameterServer;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Topic every cell's broker carries (one partition per device).
pub const CELL_TOPIC: &str = "cell";
/// Consumer group of the cell consumer tasks.
pub const FED_GROUP: &str = "fed";

/// Gauge: cloud merge rounds completed.
pub const GAUGE_FED_ROUNDS: &str = "federation.rounds";
/// Gauge: milliseconds between the last two cloud merge rounds.
pub const GAUGE_FED_ROUND_MS: &str = "federation.round_ms";
/// Gauge: cells still streaming (total − completed).
pub const GAUGE_FED_CELLS_ACTIVE: &str = "federation.cells.active";
/// Gauge: edge-tier lag — messages appended but not yet processed.
pub const GAUGE_FED_LAG_CELLS: &str = "federation.lag.cells";
/// Gauge: region-tier lag — cell updates published but not yet merged.
pub const GAUGE_FED_LAG_REGIONS: &str = "federation.lag.regions";
/// Gauge: cloud-tier lag — region publishes not yet merged globally.
pub const GAUGE_FED_LAG_CLOUD: &str = "federation.lag.cloud";
/// Gauge: total parameter-plane gets (all regional servers + cloud).
pub const GAUGE_PARAMS_GETS: &str = "params.gets";
/// Gauge: total parameter-plane puts (all regional servers + cloud).
pub const GAUGE_PARAMS_PUTS: &str = "params.puts";

/// Counter: messages appended across all cells.
pub const CTR_PRODUCED: &str = "fed.produced";
/// Counter: messages processed across all cells.
pub const CTR_PROCESSED: &str = "fed.processed";
/// Counter: model updates cells published to their regional server.
pub const CTR_UPDATES_PUBLISHED: &str = "fed.updates_published";
/// Counter: fresh cell updates folded by region aggregators.
pub const CTR_UPDATES_MERGED: &str = "fed.updates_merged";
/// Counter: regional models published to the cloud server.
pub const CTR_REGION_PUBLISHES: &str = "fed.region_publishes";
/// Counter: fresh regional models folded by the cloud aggregator.
pub const CTR_REGION_MERGES: &str = "fed.region_merges";
/// Counter: times a cell observed a newer global model.
pub const CTR_GLOBAL_REFRESHES: &str = "fed.global_refreshes";

/// The federation gauges shown in the live table, in display order — one
/// list consumed by both the `pilot_top` federation scenario and the
/// federation gateway's `GET /top`, so the two renderings cannot drift.
pub const FEDERATION_GAUGES: &[&str] = &[
    GAUGE_FED_CELLS_ACTIVE,
    GAUGE_FED_LAG_CELLS,
    GAUGE_FED_LAG_REGIONS,
    GAUGE_FED_LAG_CLOUD,
    GAUGE_FED_ROUNDS,
    GAUGE_FED_ROUND_MS,
    GAUGE_PARAMS_GETS,
    GAUGE_PARAMS_PUTS,
    "consumer.reactor.ready_queue_depth",
];

/// Configuration of a federation run. Everything is opt-in: constructing
/// one of these (and calling [`start`]/[`run`]) is the only way any of
/// this machinery activates.
#[derive(Clone)]
pub struct FederationConfig {
    /// Number of edge cells (each gets its own broker + pooled pilot).
    pub cells: usize,
    /// Number of regional aggregation tiers (each gets its own parameter
    /// server). Cells are assigned round-robin: `region = cell % regions`.
    pub regions: usize,
    /// Devices per cell (= partitions of the cell's topic).
    pub devices_per_cell: usize,
    /// Messages each device emits before its sentinel.
    pub messages_per_device: usize,
    /// Points per message (the paper's "message size").
    pub points: usize,
    /// Base RNG seed; per-cell generator seeds derive deterministically
    /// (see [`Self::cell_datagen`]).
    pub seed: u64,
    /// Data skew across cells: cell `c`'s outlier fraction is scaled by
    /// `1 + skew · c/(cells-1)` (clamped to 50%). 0 = iid cells.
    pub skew: f64,
    /// Worker threads of the one shared reactor.
    pub reactor_threads: usize,
    /// Width of the one shared compute pool (≤1 = sequential, zero
    /// threads).
    pub compute_threads: usize,
    /// A cell publishes its model update every this many messages
    /// (1 = every message, making the final cell state exact).
    pub round_every: usize,
    /// Pacing of the region/cloud merge loops.
    pub merge_interval: Duration,
    /// Max records per partition a cell consumer fetches per poll.
    pub fetch_max: usize,
    /// Per-cell producer watermark: park while `appended − processed`
    /// is at or above this (0 = unbounded).
    pub backpressure: usize,
    /// Sample interval for the telemetry thread; `None` = no telemetry
    /// thread at all.
    pub telemetry_sample_ms: Option<u64>,
    /// Processing function factory for every cell (`job_id` = cell id).
    /// `None` = the built-in streaming-mean FedAvg participant.
    pub cell_factory: Option<CloudFactory>,
    /// `Some(cfg)` opens the observability front door over the federation
    /// (DESIGN.md §16): `GET /metrics`, `/telemetry/frames`,
    /// `/telemetry/stream`, `/top`, and `/trace` over the run's registry.
    /// `None` (the default) builds nothing.
    pub gateway: Option<GatewayConfig>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        Self {
            cells: 4,
            regions: 2,
            devices_per_cell: 4,
            messages_per_device: 8,
            points: 25,
            seed: 42,
            skew: 0.0,
            reactor_threads: 4,
            compute_threads: 1,
            round_every: 1,
            merge_interval: Duration::from_millis(1),
            fetch_max: 64,
            backpressure: 1024,
            telemetry_sample_ms: None,
            cell_factory: None,
            gateway: None,
        }
    }
}

impl FederationConfig {
    /// Check the topology is well-formed.
    pub fn validate(&self) -> Result<(), String> {
        if self.cells == 0 {
            return Err("cells must be >= 1".into());
        }
        if self.regions == 0 || self.regions > self.cells {
            return Err(format!(
                "regions must be in 1..={} (got {})",
                self.cells, self.regions
            ));
        }
        if self.devices_per_cell == 0 {
            return Err("devices_per_cell must be >= 1".into());
        }
        if self.messages_per_device == 0 {
            return Err("messages_per_device must be >= 1".into());
        }
        if self.points == 0 {
            return Err("points must be >= 1".into());
        }
        if self.reactor_threads == 0 {
            return Err("reactor_threads must be >= 1".into());
        }
        if self.round_every == 0 {
            return Err("round_every must be >= 1".into());
        }
        if self.fetch_max == 0 {
            return Err("fetch_max must be >= 1".into());
        }
        if !self.skew.is_finite() || self.skew < 0.0 {
            return Err("skew must be finite and >= 0".into());
        }
        if let Some(gw) = &self.gateway {
            gw.validate().map_err(|e| format!("gateway: {e}"))?;
        }
        Ok(())
    }

    /// Region a cell belongs to (round-robin).
    pub fn region_of(&self, cell: usize) -> usize {
        cell % self.regions
    }

    /// The data-generator config of one cell: the paper's workload at
    /// `points` per message, seeded per cell, with the outlier fraction
    /// skewed up for later cells when `skew > 0`. Deterministic, so tests
    /// can reproduce any cell's stream independently of the federation.
    pub fn cell_datagen(&self, cell: usize) -> DataGenConfig {
        let mut cfg = DataGenConfig::paper(self.points)
            .with_seed(self.seed ^ (cell as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        if self.skew > 0.0 && self.cells > 1 {
            let frac = cell as f64 / (self.cells - 1) as f64;
            cfg.outlier_fraction = (cfg.outlier_fraction * (1.0 + self.skew * frac)).min(0.5);
        }
        cfg
    }

    /// Total messages the run will deliver.
    pub fn expected_messages(&self) -> u64 {
        (self.cells * self.devices_per_cell * self.messages_per_device) as u64
    }
}

/// The built-in FedAvg participant: a streaming per-feature mean. Every
/// `round_every` messages the cell publishes `[points_seen, mean_0, ..]`
/// under `cell:<id>` on its regional server and polls the global model.
/// With `round_every = 1` the final published state is the cell's exact
/// mean over all of its data, which makes the hierarchical merge exact
/// (global = weighted mean over every point in the federation) — the
/// property `tests/federation.rs` pins down.
pub fn streaming_mean_factory(round_every: usize) -> CloudFactory {
    let round_every = round_every.max(1);
    Arc::new(move |ctx: &Context| {
        let key = format!("cell:{}", ctx.job_id);
        let published = ctx.counter(CTR_UPDATES_PUBLISHED);
        let refreshes = ctx.counter(CTR_GLOBAL_REFRESHES);
        let params = ctx.params.clone();
        let mut sums: Vec<f64> = Vec::new();
        let mut count: u64 = 0;
        let mut messages = 0usize;
        let mut global_since = 0;
        Box::new(move |_ctx: &Context, block| {
            if sums.len() != block.features {
                // First block fixes the model shape.
                sums = vec![0.0; block.features];
            }
            for point in block.data.chunks_exact(block.features) {
                for (s, v) in sums.iter_mut().zip(point) {
                    *s += v;
                }
            }
            count += block.points as u64;
            messages += 1;
            if messages.is_multiple_of(round_every) && count > 0 {
                let mut update = Vec::with_capacity(sums.len() + 1);
                update.push(count as f64);
                update.extend(sums.iter().map(|s| s / count as f64));
                params.put(&key, update);
                published.add(1);
                if let Some((_, version)) = params.get_if_newer(GLOBAL_KEY, global_since) {
                    global_since = version;
                    refreshes.add(1);
                }
            }
            Ok(ProcessOutcome::default())
        })
    })
}

/// Digest of a completed federation run.
#[derive(Debug, Clone)]
pub struct FederationSummary {
    /// Topology: cell count.
    pub cells: usize,
    /// Topology: region count.
    pub regions: usize,
    /// Topology: devices per cell.
    pub devices_per_cell: usize,
    /// Messages appended across all cells.
    pub produced: u64,
    /// Messages processed across all cells.
    pub processed: u64,
    /// Wall-clock time from [`start`] to the last task completing.
    pub wall: Duration,
    /// Cloud merge rounds.
    pub cloud_rounds: u64,
    /// Region merge rounds summed over regions.
    pub region_rounds: u64,
    /// Parameter-plane gets summed over every server.
    pub params_gets: u64,
    /// Parameter-plane puts summed over every server.
    pub params_puts: u64,
    /// Total reactor polls across all tasks.
    pub reactor_polls: u64,
    /// Reactor worker threads the run used.
    pub reactor_threads: usize,
    /// Final global model as `(total_samples, per_feature_model)`.
    pub global: Option<(f64, Vec<f64>)>,
}

impl FederationSummary {
    /// Mean wall-clock microseconds per processed message.
    pub fn per_message_us(&self) -> f64 {
        if self.processed == 0 {
            return 0.0;
        }
        self.wall.as_secs_f64() * 1e6 / self.processed as f64
    }

    /// Messages per second.
    pub fn throughput(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.processed as f64 / self.wall.as_secs_f64()
    }
}

/// A live federation: every tier spawned, nothing joined yet. Obtain from
/// [`start`]; consume with [`Self::wait`].
pub struct RunningFederation {
    cfg: FederationConfig,
    // Dropping the service cancels the fleet; keep it alive for the run.
    _svc: PilotComputeService,
    executor: Arc<LocalExecutor>,
    registry: MetricsRegistry,
    /// `Arc` so the gateway's stream handlers can hold the sampler across
    /// their own thread lifetimes (the sampler itself is not `Clone`).
    sampler: Option<Arc<TelemetrySampler>>,
    /// The observability gateway, when [`FederationConfig::gateway`] is set.
    gateway: Option<Gateway>,
    abort: Arc<AtomicBool>,
    producers: Vec<ReactorHandle>,
    consumers: Vec<ReactorHandle>,
    region_tasks: Vec<ReactorHandle>,
    cloud_task: ReactorHandle,
    region_servers: Vec<ParameterServer>,
    cloud_server: ParameterServer,
    produced: Arc<Counter>,
    processed: Arc<Counter>,
    started: Instant,
}

impl RunningFederation {
    /// Messages processed so far.
    pub fn processed(&self) -> u64 {
        self.processed.get()
    }

    /// Messages appended so far.
    pub fn produced(&self) -> u64 {
        self.produced.get()
    }

    /// Total messages the run will deliver.
    pub fn expected(&self) -> u64 {
        self.cfg.expected_messages()
    }

    /// The run's metrics registry (gauges live here).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The telemetry sampler, when `telemetry_sample_ms` was set.
    pub fn sampler(&self) -> Option<&TelemetrySampler> {
        self.sampler.as_deref()
    }

    /// The bound address of the observability gateway, when
    /// [`FederationConfig::gateway`] is set (resolves `:0` ephemeral ports).
    pub fn gateway_addr(&self) -> Option<std::net::SocketAddr> {
        self.gateway.as_ref().map(|g| g.addr())
    }

    /// The shared reactor (thread count, poll stats).
    pub fn executor(&self) -> &LocalExecutor {
        &self.executor
    }

    /// Current global model on the cloud server.
    pub fn global_model(&self) -> Option<(f64, Vec<f64>)> {
        split_payload(self.cloud_server.get(GLOBAL_KEY).map(|(v, _)| v))
    }

    /// Regional parameter servers (index = region).
    pub fn region_servers(&self) -> &[ParameterServer] {
        &self.region_servers
    }

    /// The cloud parameter server.
    pub fn cloud_server(&self) -> &ParameterServer {
        &self.cloud_server
    }

    /// Block until every tier completes (producers → consumers → regions →
    /// cloud), then tear the run down and summarize it. On any task error
    /// the whole federation aborts and the first error is returned.
    pub fn wait(mut self, timeout: Duration) -> Result<FederationSummary, String> {
        let deadline = Instant::now() + timeout;
        let mut first_error: Option<String> = None;
        let mut cloud_rounds = 0u64;
        let mut region_rounds = 0u64;

        let producers = std::mem::take(&mut self.producers);
        let consumers = std::mem::take(&mut self.consumers);
        let regions = std::mem::take(&mut self.region_tasks);
        for handle in producers.iter().chain(&consumers) {
            if let Err(e) = self.join(handle, deadline)? {
                first_error.get_or_insert(e);
            }
        }
        for handle in &regions {
            match self.join(handle, deadline)? {
                Ok(rounds) => region_rounds += rounds,
                Err(e) => {
                    first_error.get_or_insert(e);
                }
            }
        }
        match self.join(&self.cloud_task, deadline)? {
            Ok(rounds) => cloud_rounds = rounds,
            Err(e) => {
                first_error.get_or_insert(e);
            }
        }
        let wall = self.started.elapsed();
        let reactor_threads = self.executor.thread_count();
        // The gateway goes down before the sampler: its streams poll the
        // sampler, and shutdown() joins the worker threads.
        if let Some(mut gw) = self.gateway.take() {
            gw.shutdown();
        }
        if let Some(sampler) = self.sampler.take() {
            sampler.stop();
        }
        self.executor.shutdown();
        if let Some(e) = first_error {
            return Err(e);
        }
        let (gets, puts) = param_traffic(&self.region_servers, &self.cloud_server);
        Ok(FederationSummary {
            cells: self.cfg.cells,
            regions: self.cfg.regions,
            devices_per_cell: self.cfg.devices_per_cell,
            produced: self.produced.get(),
            processed: self.processed.get(),
            wall,
            cloud_rounds,
            region_rounds,
            params_gets: gets,
            params_puts: puts,
            reactor_polls: self.executor.poll_count(),
            reactor_threads,
            global: self.global_model(),
        })
    }

    /// Wait for one handle in short slices so an abort raised elsewhere can
    /// be fanned out (parked consumers only observe `abort` when polled).
    fn join(
        &self,
        handle: &ReactorHandle,
        deadline: Instant,
    ) -> Result<Result<u64, String>, String> {
        loop {
            let now = Instant::now();
            if now >= deadline {
                self.abort.store(true, Ordering::Release);
                self.executor.wake_all();
                return Err(format!(
                    "federation timed out: {}/{} messages processed",
                    self.processed(),
                    self.expected()
                ));
            }
            let slice = (deadline - now).min(Duration::from_millis(50));
            if let Some(result) = handle.wait_timeout(slice) {
                return Ok(result);
            }
            if self.abort.load(Ordering::Acquire) {
                // Re-queue parked tasks so they can observe the abort.
                self.executor.wake_all();
            }
        }
    }
}

fn split_payload(value: Option<Arc<Vec<f64>>>) -> Option<(f64, Vec<f64>)> {
    let v = value?;
    if v.len() < 2 {
        return None;
    }
    Some((v[0], v[1..].to_vec()))
}

fn param_traffic(regions: &[ParameterServer], cloud: &ParameterServer) -> (u64, u64) {
    let mut gets = 0;
    let mut puts = 0;
    for server in regions.iter().chain(std::iter::once(cloud)) {
        let stats = server.stats();
        gets += stats.gets.load(Ordering::Relaxed);
        puts += stats.puts.load(Ordering::Relaxed);
    }
    (gets, puts)
}

/// Provision the fleet, spawn every tier on the shared pools, and return
/// the live run.
pub fn start(cfg: FederationConfig) -> Result<RunningFederation, String> {
    cfg.validate()?;
    let svc = PilotComputeService::new();
    // One pooled pilot per cell (hosts the cell's broker), one per region
    // (hosts the regional parameter server), one for the cloud tier — the
    // whole fleet activates on a single lifecycle thread and boots no
    // per-pilot task clusters.
    let mut descs = Vec::with_capacity(cfg.cells + cfg.regions + 1);
    for _ in 0..cfg.cells {
        descs.push(PilotDescription::pooled(1, 0.5).with_site("edge"));
    }
    for _ in 0..cfg.regions {
        descs.push(PilotDescription::pooled(1, 1.0).with_site("region"));
    }
    descs.push(PilotDescription::pooled(1, 2.0).with_site("cloud"));
    let fleet = svc
        .submit_fleet(descs, Duration::from_secs(120))
        .map_err(|e| format!("fleet activation: {e}"))?;
    let (cell_pilots, upper) = fleet.split_at(cfg.cells);
    let (region_pilots, cloud_pilot) = upper.split_at(cfg.regions);

    let registry = MetricsRegistry::new();
    let executor = Arc::new(LocalExecutor::new(cfg.reactor_threads));
    let compute = Arc::new(if cfg.compute_threads > 1 {
        ComputePool::new(cfg.compute_threads)
    } else {
        ComputePool::sequential()
    });
    let region_servers: Vec<ParameterServer> = region_pilots
        .iter()
        .map(|p| p.start_param_server().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let cloud_server = cloud_pilot[0]
        .start_param_server()
        .map_err(|e| e.to_string())?;

    let produced = registry.counter(CTR_PRODUCED);
    let processed = registry.counter(CTR_PROCESSED);
    let abort = Arc::new(AtomicBool::new(false));
    let cells_done = Arc::new(AtomicUsize::new(0));
    let region_done: Vec<Arc<AtomicUsize>> = (0..cfg.regions)
        .map(|_| Arc::new(AtomicUsize::new(0)))
        .collect();
    let regions_done = Arc::new(AtomicUsize::new(0));
    let factory: CloudFactory = cfg
        .cell_factory
        .clone()
        .unwrap_or_else(|| streaming_mean_factory(cfg.round_every));

    let mut producers = Vec::with_capacity(cfg.cells);
    let mut consumers = Vec::with_capacity(cfg.cells);
    for (cell, cell_pilot) in cell_pilots.iter().enumerate() {
        let broker: Broker = cell_pilot.start_broker().map_err(|e| e.to_string())?;
        broker
            .create_topic(
                CELL_TOPIC,
                cfg.devices_per_cell,
                RetentionPolicy::unbounded(),
            )
            .map_err(|e| e.to_string())?;
        let region = cfg.region_of(cell);
        let ctx = Context::new(
            cell as u64,
            cfg.devices_per_cell,
            region_servers[region].clone(),
            registry.clone(),
            HashMap::new(),
        )
        .with_compute_pool(compute.clone());
        let produce_factory =
            datagen_produce_factory(cfg.cell_datagen(cell), cfg.messages_per_device);
        let streams: Vec<ProduceFn> = (0..cfg.devices_per_cell)
            .map(|d| produce_factory(&ctx, d))
            .collect();
        let process = factory(&ctx);
        let cell_processed = Arc::new(AtomicU64::new(0));
        let producer = CellProducerTask::new(
            ctx.clone(),
            broker.clone(),
            CELL_TOPIC.to_string(),
            streams,
            cell_processed.clone(),
            cfg.backpressure,
            produced.clone(),
            abort.clone(),
        );
        let consumer = CellConsumerTask::new(
            ctx,
            broker,
            CELL_TOPIC,
            FED_GROUP,
            cfg.devices_per_cell,
            process,
            cfg.fetch_max,
            cell_processed,
            processed.clone(),
            CellCompletion {
                region_done: region_done[region].clone(),
                cells_done: cells_done.clone(),
            },
            abort.clone(),
        )?;
        producers.push(executor.spawn(&format!("fed-cell-{cell}-produce"), Box::new(producer)));
        consumers.push(executor.spawn(&format!("fed-cell-{cell}-consume"), Box::new(consumer)));
    }

    let mut region_tasks = Vec::with_capacity(cfg.regions);
    for (r, server) in region_servers.iter().enumerate() {
        let cell_ids: Vec<u64> = (0..cfg.cells)
            .filter(|c| cfg.region_of(*c) == r)
            .map(|c| c as u64)
            .collect();
        let task = RegionAggregatorTask::new(
            r,
            server.clone(),
            cloud_server.clone(),
            cell_ids,
            cfg.merge_interval,
            region_done[r].clone(),
            regions_done.clone(),
            registry.counter(CTR_UPDATES_MERGED),
            registry.counter(CTR_REGION_PUBLISHES),
            abort.clone(),
        );
        region_tasks.push(executor.spawn(&format!("fed-region-{r}"), Box::new(task)));
    }
    let cloud = CloudAggregatorTask::new(
        cloud_server.clone(),
        cfg.regions,
        cfg.merge_interval,
        regions_done,
        registry.gauge(GAUGE_FED_ROUNDS),
        registry.gauge(GAUGE_FED_ROUND_MS),
        registry.counter(CTR_REGION_MERGES),
        abort.clone(),
    );
    let cloud_task = executor.spawn("fed-cloud", Box::new(cloud));

    let sampler = cfg.telemetry_sample_ms.map(|ms| {
        let probes: Vec<Probe> = vec![federation_probe(
            &registry,
            &cfg,
            executor.clone(),
            region_servers.clone(),
            cloud_server.clone(),
            cells_done,
        )];
        Arc::new(TelemetrySampler::spawn(
            registry.clone(),
            Duration::from_millis(ms.max(1)),
            TelemetrySampler::DEFAULT_CAPACITY,
            probes,
        ))
    });

    let gateway = match &cfg.gateway {
        Some(gw_cfg) => Some(
            start_federation_gateway(
                gw_cfg,
                &registry,
                sampler.clone(),
                processed.clone(),
                cfg.expected_messages(),
            )
            .map_err(|e| format!("gateway: {e}"))?,
        ),
        None => None,
    };

    Ok(RunningFederation {
        cfg,
        _svc: svc,
        executor,
        registry,
        sampler,
        gateway,
        abort,
        producers,
        consumers,
        region_tasks,
        cloud_task,
        region_servers,
        cloud_server,
        produced,
        processed,
        started: Instant::now(),
    })
}

/// Build and start the federation's observability gateway: the read-only
/// endpoint subset (`/metrics`, `/telemetry/frames`, `/telemetry/stream`,
/// `/top`, `/trace`) over the run's registry. The federation has no tune
/// table and no external ingestion path, so the control and produce
/// endpoints of the pipeline gateway do not exist here.
fn start_federation_gateway(
    cfg: &GatewayConfig,
    registry: &MetricsRegistry,
    sampler: Option<Arc<TelemetrySampler>>,
    processed: Arc<Counter>,
    expected: u64,
) -> std::io::Result<Gateway> {
    let stop = StopFlag::new();
    let metrics_registry = registry.clone();
    let frames_sampler = sampler.clone();
    let stream_sampler = sampler.clone();
    let stream_stop = stop.clone();
    let top_sampler = sampler;
    let trace_registry = registry.clone();

    let router = Router::new()
        .get(
            "/metrics",
            Box::new(move |_req: &Request| Response::Full {
                status: 200,
                content_type: "text/plain; version=0.0.4",
                body: prometheus_exposition(&metrics_registry).into_bytes(),
            }),
        )
        .get(
            "/telemetry/frames",
            Box::new(move |_req: &Request| {
                let frames = frames_sampler
                    .as_ref()
                    .map(|s| s.frames())
                    .unwrap_or_default();
                Response::json(frames_json(&frames))
            }),
        )
        .get(
            "/telemetry/stream",
            Box::new(move |_req: &Request| {
                let Some(sampler) = stream_sampler.clone() else {
                    return federation_telemetry_off();
                };
                let stop = stream_stop.clone();
                Response::Stream {
                    content_type: "text/event-stream",
                    write: Box::new(move |w| {
                        let mut cursor = 0u64;
                        while !stop.is_stopped() {
                            for frame in sampler.frames() {
                                if frame.t_us <= cursor {
                                    continue;
                                }
                                pilot_gateway::write_sse_event(w, Some("frame"), &frame.to_json())?;
                                cursor = frame.t_us;
                            }
                            std::thread::sleep(Duration::from_millis(25));
                        }
                        Ok(())
                    }),
                }
            }),
        )
        .get(
            "/top",
            Box::new(move |_req: &Request| {
                let Some(sampler) = &top_sampler else {
                    return federation_telemetry_off();
                };
                let Some(latest) = sampler.latest() else {
                    return Response::text(503, "no telemetry frame sampled yet\n");
                };
                let view = TopView::from_frame(
                    &latest,
                    FEDERATION_GAUGES,
                    processed.get(),
                    Some(expected),
                );
                Response::json(view.to_json())
            }),
        )
        .get(
            "/trace",
            Box::new(move |_req: &Request| {
                let registry = trace_registry.clone();
                Response::Stream {
                    content_type: "application/json",
                    write: Box::new(move |w| write_chrome_trace_to(w, &registry.snapshot(), &[])),
                }
            }),
        );

    Gateway::start(cfg, router, registry, stop)
}

fn federation_telemetry_off() -> Response {
    Response::text(
        404,
        "telemetry plane is off (set telemetry_sample_ms on the federation)\n",
    )
}

/// One probe refreshing every federation gauge before each telemetry
/// snapshot (per-tier lag, live cells, parameter-plane traffic, reactor
/// health — the `pilot_top` federation scenario reads these).
fn federation_probe(
    registry: &MetricsRegistry,
    cfg: &FederationConfig,
    executor: Arc<LocalExecutor>,
    region_servers: Vec<ParameterServer>,
    cloud_server: ParameterServer,
    cells_done: Arc<AtomicUsize>,
) -> Probe {
    let produced = registry.counter(CTR_PRODUCED);
    let processed = registry.counter(CTR_PROCESSED);
    let published = registry.counter(CTR_UPDATES_PUBLISHED);
    let merged = registry.counter(CTR_UPDATES_MERGED);
    let region_pubs = registry.counter(CTR_REGION_PUBLISHES);
    let region_merges = registry.counter(CTR_REGION_MERGES);
    let lag_cells = registry.gauge(GAUGE_FED_LAG_CELLS);
    let lag_regions = registry.gauge(GAUGE_FED_LAG_REGIONS);
    let lag_cloud = registry.gauge(GAUGE_FED_LAG_CLOUD);
    let cells_active = registry.gauge(GAUGE_FED_CELLS_ACTIVE);
    let params_gets = registry.gauge(GAUGE_PARAMS_GETS);
    let params_puts = registry.gauge(GAUGE_PARAMS_PUTS);
    let ready_depth = registry.gauge(crate::runtime::telemetry::GAUGE_REACTOR_READY_DEPTH);
    let poll_us = registry.gauge(crate::runtime::telemetry::GAUGE_REACTOR_POLL_US);
    let cells = cfg.cells;
    Box::new(move || {
        lag_cells.set(produced.get().saturating_sub(processed.get()) as i64);
        lag_regions.set(published.get().saturating_sub(merged.get()) as i64);
        lag_cloud.set(region_pubs.get().saturating_sub(region_merges.get()) as i64);
        cells_active.set(cells.saturating_sub(cells_done.load(Ordering::Relaxed)) as i64);
        let (gets, puts) = param_traffic(&region_servers, &cloud_server);
        params_gets.set(gets as i64);
        params_puts.set(puts as i64);
        ready_depth.set(executor.ready_depth());
        poll_us.set(executor.poll_time_us() as i64);
    })
}

/// Convenience: [`start`] then [`RunningFederation::wait`].
pub fn run(cfg: FederationConfig, timeout: Duration) -> Result<FederationSummary, String> {
    start(cfg)?.wait(timeout)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FederationConfig {
        FederationConfig {
            cells: 4,
            regions: 2,
            devices_per_cell: 2,
            messages_per_device: 5,
            points: 10,
            reactor_threads: 2,
            ..FederationConfig::default()
        }
    }

    #[test]
    fn validate_rejects_bad_topologies() {
        let mut cfg = small();
        cfg.regions = 5; // > cells
        assert!(cfg.validate().is_err());
        cfg = small();
        cfg.cells = 0;
        assert!(cfg.validate().is_err());
        cfg = small();
        cfg.skew = f64::NAN;
        assert!(cfg.validate().is_err());
        assert!(small().validate().is_ok());
    }

    #[test]
    fn cell_datagen_is_deterministic_and_skewed() {
        let mut cfg = small();
        cfg.skew = 2.0;
        assert_eq!(cfg.cell_datagen(3).seed, cfg.cell_datagen(3).seed);
        // Cell 0 keeps the base workload; later cells drift upward.
        assert_eq!(cfg.cell_datagen(0).outlier_fraction, 0.05);
        assert!(cfg.cell_datagen(3).outlier_fraction > cfg.cell_datagen(1).outlier_fraction);
        // Distinct cells get distinct streams.
        assert_ne!(cfg.cell_datagen(0).seed, cfg.cell_datagen(1).seed);
    }

    #[test]
    fn federation_conserves_messages_and_merges_globally() {
        let cfg = small();
        let expected = cfg.expected_messages();
        let points = cfg.points as u64;
        let summary = run(cfg, Duration::from_secs(60)).expect("federation run");
        assert_eq!(summary.produced, expected);
        assert_eq!(summary.processed, expected);
        assert!(summary.cloud_rounds >= 1);
        assert!(summary.region_rounds >= 2);
        let (samples, model) = summary.global.expect("global model published");
        // Exact hierarchical accounting: every generated point is
        // represented in the final global model exactly once.
        assert_eq!(samples, (expected * points) as f64);
        assert_eq!(model.len(), 32); // paper feature width
        assert!(model.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn federation_reports_param_traffic_and_polls() {
        let summary = run(small(), Duration::from_secs(60)).expect("federation run");
        assert!(summary.params_puts > 0);
        assert!(summary.params_gets > 0);
        assert!(summary.reactor_polls > 0);
        assert_eq!(summary.reactor_threads, 2);
        assert!(summary.per_message_us() > 0.0);
        assert!(summary.throughput() > 0.0);
    }

    #[test]
    fn telemetry_probe_populates_federation_gauges() {
        let mut cfg = small();
        cfg.telemetry_sample_ms = Some(1);
        let running = start(cfg).expect("start");
        let registry = running.registry().clone();
        let summary = running.wait(Duration::from_secs(60)).expect("wait");
        assert_eq!(summary.processed, summary.produced);
        // The final stop() snapshot ran the probe at least once.
        assert!(registry.gauge_value(GAUGE_PARAMS_PUTS).unwrap_or(0) > 0);
        assert_eq!(registry.gauge_value(GAUGE_FED_CELLS_ACTIVE), Some(0));
    }

    #[test]
    fn custom_cell_factory_and_unbalanced_regions() {
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let mut cfg = small();
        cfg.cells = 3;
        cfg.regions = 2; // regions of 2 and 1 cells
        cfg.cell_factory = Some(Arc::new(move |_ctx: &Context| {
            let seen = seen2.clone();
            Box::new(move |_ctx: &Context, block: &pilot_datagen::Block| {
                seen.fetch_add(block.points as u64, Ordering::Relaxed);
                Ok(ProcessOutcome::default())
            })
        }));
        let expected = cfg.expected_messages();
        let points = cfg.points as u64;
        let summary = run(cfg, Duration::from_secs(60)).expect("federation run");
        assert_eq!(summary.processed, expected);
        assert_eq!(seen.load(Ordering::Relaxed), expected * points);
        // A factory that never publishes leaves no global model.
        assert!(summary.global.is_none());
    }
}
