//! Region and cloud aggregation tiers of the federation.
//!
//! Both tiers are timer-paced reactor tasks over the sharded parameter
//! plane. A region aggregator merges its cells' published updates with
//! **one batched freshness read per merge round**
//! ([`ParameterServer::get_many_if_newer`] takes each underlying shard
//! lock at most once per batch, not once per cell), folds them through a
//! streaming [`FedAvgAccumulator`], and publishes the regional model to
//! the cloud server. The cloud aggregator does the same one tier up and
//! publishes the global model, which regions then fan back down into
//! their own shard with one batched [`ParameterServer::put_many`].
//!
//! Parameter-plane key layout (all values are `[samples, mean_0, ..]`):
//!
//! | server   | key         | writer            | reader            |
//! |----------|-------------|-------------------|-------------------|
//! | regional | `cell:<id>` | cell process fn   | region aggregator |
//! | regional | `global`    | region aggregator | cell process fn   |
//! | regional | `region`    | region aggregator | cells / observers |
//! | cloud    | `region:<r>`| region aggregator | cloud aggregator  |
//! | cloud    | `global`    | cloud aggregator  | region aggregators|

use pilot_dataflow::{ReactorPoll, ReactorTask};
use pilot_metrics::{Counter, Gauge};
use pilot_ml::federated::FedAvgAccumulator;
use pilot_params::{ParameterServer, Version};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::task::Waker;
use std::time::{Duration, Instant};

/// Key the global model is published under (cloud server, and mirrored
/// into each regional server).
pub const GLOBAL_KEY: &str = "global";
/// Key a region aggregator mirrors its own latest model under in the
/// regional server.
pub const REGION_KEY: &str = "region";

/// Cached state of one downstream participant (a cell for regions, a
/// region for the cloud): last seen version plus the latest update, kept
/// so a merge round always folds every participant, fresh or not.
struct Member {
    key: String,
    since: Version,
    latest: Option<Arc<Vec<f64>>>,
}

/// Shared merge core for both tiers: batch-poll members for freshness,
/// fold all cached updates, produce a `[samples, model..]` payload.
struct MergeCore {
    members: Vec<Member>,
    acc: FedAvgAccumulator,
    model: Vec<f64>,
    /// Reusable batched-request scratch.
    reqs: Vec<(String, Version)>,
}

impl MergeCore {
    fn new(keys: Vec<String>) -> Self {
        Self {
            members: keys
                .into_iter()
                .map(|key| Member {
                    key,
                    since: 0,
                    latest: None,
                })
                .collect(),
            acc: FedAvgAccumulator::new(),
            model: Vec::new(),
            reqs: Vec::new(),
        }
    }

    /// One batched freshness read. Returns the number of upstream puts
    /// absorbed (versions are per-key put counts, so a coalesced read of
    /// version `v` after `since` absorbs `v − since` published updates —
    /// this keeps the published-vs-merged lag gauges honest).
    fn refresh(&mut self, server: &ParameterServer) -> u64 {
        self.reqs.clear();
        self.reqs
            .extend(self.members.iter().map(|m| (m.key.clone(), m.since)));
        let fresh = server.get_many_if_newer(&self.reqs);
        let mut absorbed = 0;
        for (member, got) in self.members.iter_mut().zip(fresh) {
            if let Some((value, version)) = got {
                absorbed += version - member.since;
                member.since = version;
                member.latest = Some(value);
            }
        }
        absorbed
    }

    /// Fold every cached update into `model`; returns the merged payload
    /// `[samples, model..]`, or `None` when nothing has arrived yet.
    fn merge(&mut self) -> Option<Vec<f64>> {
        for update in self.members.iter().filter_map(|m| m.latest.as_deref()) {
            if update.len() >= 2 {
                self.acc.push(&update[1..], update[0] as u64);
            }
        }
        let samples = self.acc.total_samples();
        if !self.acc.finish_into(&mut self.model) {
            return None;
        }
        let mut payload = Vec::with_capacity(self.model.len() + 1);
        payload.push(samples as f64);
        payload.extend_from_slice(&self.model);
        Some(payload)
    }
}

/// Middle tier: merges one region's cells, publishes upward to the cloud
/// server and mirrors the global model downward into the regional shard.
pub(crate) struct RegionAggregatorTask {
    regional: ParameterServer,
    cloud: ParameterServer,
    core: MergeCore,
    publish_key: String,
    merge_interval: Duration,
    /// Cells of this region that have completed (written by their
    /// consumer tasks *after* their last publish).
    cells_done: Arc<AtomicUsize>,
    cells: usize,
    /// Regions that have fully completed (read by the cloud task).
    regions_done: Arc<AtomicUsize>,
    global_since: Version,
    rounds: u64,
    merged_ctr: Arc<Counter>,
    published_ctr: Arc<Counter>,
    abort: Arc<AtomicBool>,
}

impl RegionAggregatorTask {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        region: usize,
        regional: ParameterServer,
        cloud: ParameterServer,
        cell_ids: Vec<u64>,
        merge_interval: Duration,
        cells_done: Arc<AtomicUsize>,
        regions_done: Arc<AtomicUsize>,
        merged_ctr: Arc<Counter>,
        published_ctr: Arc<Counter>,
        abort: Arc<AtomicBool>,
    ) -> Self {
        let cells = cell_ids.len();
        Self {
            regional,
            cloud,
            core: MergeCore::new(cell_ids.iter().map(|c| format!("cell:{c}")).collect()),
            publish_key: format!("region:{region}"),
            merge_interval,
            cells_done,
            cells,
            regions_done,
            global_since: 0,
            rounds: 0,
            merged_ctr,
            published_ctr,
            abort,
        }
    }
}

impl ReactorTask for RegionAggregatorTask {
    fn poll(&mut self, _waker: &Waker) -> ReactorPoll {
        if self.abort.load(Ordering::Acquire) {
            return ReactorPoll::Complete(Ok(self.rounds));
        }
        // Observe completion *before* the freshness read: consumers
        // publish their final update before bumping cells_done, so a
        // `final_round` pass is guaranteed to see every last update.
        let final_round = self.cells_done.load(Ordering::Acquire) >= self.cells;
        let news = self.core.refresh(&self.regional);
        self.merged_ctr.add(news);
        if news > 0 || final_round {
            if let Some(payload) = self.core.merge() {
                // Mirror the regional model locally, then publish upward.
                let mirror = payload.clone();
                self.cloud.put(&self.publish_key, payload);
                self.published_ctr.add(1);
                self.rounds += 1;
                // One batched write-back per round: regional mirror plus
                // (when fresh) the global model fanned back down.
                let mut writes = vec![(REGION_KEY.to_string(), mirror)];
                if let Some((global, version)) =
                    self.cloud.get_if_newer(GLOBAL_KEY, self.global_since)
                {
                    self.global_since = version;
                    writes.push((GLOBAL_KEY.to_string(), (*global).clone()));
                }
                self.regional.put_many(writes);
            }
        }
        if final_round {
            self.regions_done.fetch_add(1, Ordering::AcqRel);
            return ReactorPoll::Complete(Ok(self.rounds));
        }
        ReactorPoll::PendingUntil(Instant::now() + self.merge_interval)
    }
}

/// Top tier: merges all regional models on the cloud server into the
/// global model.
pub(crate) struct CloudAggregatorTask {
    cloud: ParameterServer,
    core: MergeCore,
    merge_interval: Duration,
    regions_done: Arc<AtomicUsize>,
    regions: usize,
    rounds: u64,
    last_round: Option<Instant>,
    rounds_gauge: Arc<Gauge>,
    round_ms_gauge: Arc<Gauge>,
    merged_ctr: Arc<Counter>,
    abort: Arc<AtomicBool>,
}

impl CloudAggregatorTask {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        cloud: ParameterServer,
        regions: usize,
        merge_interval: Duration,
        regions_done: Arc<AtomicUsize>,
        rounds_gauge: Arc<Gauge>,
        round_ms_gauge: Arc<Gauge>,
        merged_ctr: Arc<Counter>,
        abort: Arc<AtomicBool>,
    ) -> Self {
        Self {
            cloud,
            core: MergeCore::new((0..regions).map(|r| format!("region:{r}")).collect()),
            merge_interval,
            regions_done,
            regions,
            rounds: 0,
            last_round: None,
            rounds_gauge,
            round_ms_gauge,
            merged_ctr,
            abort,
        }
    }
}

impl ReactorTask for CloudAggregatorTask {
    fn poll(&mut self, _waker: &Waker) -> ReactorPoll {
        if self.abort.load(Ordering::Acquire) {
            return ReactorPoll::Complete(Ok(self.rounds));
        }
        // Regions publish their final model before bumping regions_done,
        // so a final_round pass folds every region's last word and the
        // global model it leaves behind is the complete weighted mean.
        let final_round = self.regions_done.load(Ordering::Acquire) >= self.regions;
        let news = self.core.refresh(&self.cloud);
        self.merged_ctr.add(news);
        if news > 0 || final_round {
            if let Some(payload) = self.core.merge() {
                self.cloud.put(GLOBAL_KEY, payload);
                self.rounds += 1;
                self.rounds_gauge.set(self.rounds as i64);
                let now = Instant::now();
                if let Some(prev) = self.last_round.replace(now) {
                    self.round_ms_gauge
                        .set((now - prev).as_millis().min(i64::MAX as u128) as i64);
                }
            }
        }
        if final_round {
            return ReactorPoll::Complete(Ok(self.rounds));
        }
        ReactorPoll::PendingUntil(Instant::now() + self.merge_interval)
    }
}
