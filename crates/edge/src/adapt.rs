//! The lag-driven autoscaler.
//!
//! The paper's vision (Section V): "a distributed workload management
//! system that can select, acquire and dynamically scale resources across
//! the continuum at runtime based on the application's objectives", and
//! Section II-D: "the allocated resources can be adapted, i.e., expanded
//! and scaled-down, dynamically at runtime, e.g., if a bottleneck arises
//! due to increased data rates".
//!
//! The implemented objective is the canonical streaming one: bound consumer
//! lag. A monitor thread samples the pipeline's total consumer-group lag at
//! a fixed interval and, with hysteresis (several consecutive observations
//! before acting), grows the consumer pool toward `max_processors` when lag
//! exceeds `scale_up_lag` and shrinks it toward `min_processors` when lag
//! falls below `scale_down_lag`.

use crate::runtime::PipelineCtl;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Autoscaler tuning.
#[derive(Debug, Clone)]
pub struct AutoScalerConfig {
    /// Never shrink below this pool size.
    pub min_processors: usize,
    /// Never grow beyond this pool size (bounded by the cloud pilot's
    /// cores in practice — extra consumers would just queue).
    pub max_processors: usize,
    /// Scale up when total lag exceeds this many records.
    pub scale_up_lag: u64,
    /// Scale down when total lag falls to or below this many records.
    pub scale_down_lag: u64,
    /// Sampling interval.
    pub interval: Duration,
    /// Consecutive same-direction observations required before acting.
    pub hysteresis: usize,
}

impl Default for AutoScalerConfig {
    fn default() -> Self {
        Self {
            min_processors: 1,
            max_processors: 8,
            scale_up_lag: 16,
            scale_down_lag: 2,
            interval: Duration::from_millis(50),
            hysteresis: 2,
        }
    }
}

/// One scaling decision, for post-run analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingEvent {
    /// Time since the scaler started.
    pub at: Duration,
    /// Observed total lag that triggered the decision.
    pub lag: u64,
    /// Pool size before.
    pub from: usize,
    /// Pool size after.
    pub to: usize,
}

/// Handle to a running autoscaler thread.
pub struct AutoScalerHandle {
    stop: Arc<AtomicBool>,
    events: Arc<Mutex<Vec<ScalingEvent>>>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl AutoScalerHandle {
    /// Stop the scaler and join its thread.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }

    /// Scaling decisions so far.
    pub fn events(&self) -> Vec<ScalingEvent> {
        self.events.lock().clone()
    }
}

impl Drop for AutoScalerHandle {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// The monitor loop (spawned by `RunningPipeline::autoscale`).
pub struct AutoScaler;

impl AutoScaler {
    pub(crate) fn spawn(ctl: Arc<PipelineCtl>, config: AutoScalerConfig) -> AutoScalerHandle {
        let stop = Arc::new(AtomicBool::new(false));
        let events = Arc::new(Mutex::new(Vec::new()));
        let stop2 = Arc::clone(&stop);
        let events2 = Arc::clone(&events);
        let thread = std::thread::Builder::new()
            .name("pilot-edge-autoscaler".into())
            .spawn(move || Self::run(&ctl, &config, &stop2, &events2))
            .expect("spawn autoscaler thread");
        AutoScalerHandle {
            stop,
            events,
            thread: Some(thread),
        }
    }

    fn run(
        ctl: &PipelineCtl,
        config: &AutoScalerConfig,
        stop: &AtomicBool,
        events: &Mutex<Vec<ScalingEvent>>,
    ) {
        let started = Instant::now();
        let mut over = 0usize;
        let mut under = 0usize;
        while !stop.load(Ordering::Relaxed) && !ctl.is_stopped() && !ctl.all_done() {
            std::thread::sleep(config.interval);
            let lag = ctl.total_lag();
            if lag > config.scale_up_lag {
                over += 1;
                under = 0;
            } else if lag <= config.scale_down_lag {
                under += 1;
                over = 0;
            } else {
                over = 0;
                under = 0;
            }
            let current = ctl.processor_count();
            let target = if over >= config.hysteresis && current < config.max_processors {
                over = 0;
                Some(current + 1)
            } else if under >= config.hysteresis && current > config.min_processors {
                under = 0;
                Some(current - 1)
            } else {
                None
            };
            if let Some(target) = target {
                if ctl.scale_processors(target).is_ok() {
                    events.lock().push(ScalingEvent {
                        at: started.elapsed(),
                        lag,
                        from: current,
                        to: target,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EdgeToCloudPipeline;
    use crate::processors::datagen_produce_factory;
    use pilot_core::{PilotComputeService, PilotDescription};
    use pilot_datagen::DataGenConfig;

    const WAIT: Duration = Duration::from_secs(60);

    #[test]
    fn default_config_is_sane() {
        let c = AutoScalerConfig::default();
        assert!(c.min_processors <= c.max_processors);
        assert!(c.scale_down_lag < c.scale_up_lag);
        assert!(c.hysteresis >= 1);
    }

    #[test]
    fn scales_up_under_lag_and_down_when_drained() {
        // A deliberately slow processor (5 ms/message) against 4 devices
        // producing at 100 msg/s each: 1 consumer cannot keep up (lag
        // grows), so the scaler must add consumers; once producers finish
        // and the backlog drains, it scales back down.
        let svc = PilotComputeService::new();
        let edge = svc
            .submit_and_wait(PilotDescription::local(4, 16.0), WAIT)
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(4, 16.0), WAIT)
            .unwrap();
        let slow: crate::faas::CloudFactory = std::sync::Arc::new(|_ctx| {
            Box::new(move |_ctx: &crate::faas::Context, _block| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(crate::faas::ProcessOutcome::default())
            })
        });
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 60))
            .process_cloud_function(slow)
            .devices(4)
            .processors(1)
            .rate_per_device(100.0)
            .start()
            .unwrap();
        running.autoscale(AutoScalerConfig {
            min_processors: 1,
            max_processors: 4,
            scale_up_lag: 10,
            scale_down_lag: 1,
            interval: Duration::from_millis(25),
            hysteresis: 2,
        });
        let events_handle = running.scaling_events();
        assert!(events_handle.is_empty(), "no decisions yet");
        // Run to completion; the scaler acts along the way.
        let summary = {
            // Grab events just before wait consumes the pipeline.
            std::thread::sleep(Duration::from_millis(400));
            let mid_events = running.scaling_events();
            assert!(
                mid_events.iter().any(|e| e.to > e.from),
                "expected at least one scale-up, got {mid_events:?}"
            );
            running.wait(WAIT).unwrap()
        };
        assert_eq!(summary.messages, 240);
    }

    #[test]
    fn respects_max_processors() {
        let svc = PilotComputeService::new();
        let edge = svc
            .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
            .unwrap();
        let slow: crate::faas::CloudFactory = std::sync::Arc::new(|_ctx| {
            Box::new(move |_ctx: &crate::faas::Context, _block| {
                std::thread::sleep(Duration::from_millis(4));
                Ok(crate::faas::ProcessOutcome::default())
            })
        });
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 40))
            .process_cloud_function(slow)
            .devices(2)
            .processors(1)
            .rate_per_device(150.0)
            .start()
            .unwrap();
        running.autoscale(AutoScalerConfig {
            min_processors: 1,
            max_processors: 2,
            scale_up_lag: 5,
            scale_down_lag: 0,
            interval: Duration::from_millis(20),
            hysteresis: 1,
        });
        std::thread::sleep(Duration::from_millis(300));
        assert!(running.processor_count() <= 2);
        let events = running.scaling_events();
        assert!(events.iter().all(|e| e.to <= 2), "{events:?}");
        running.wait(WAIT).unwrap();
    }
}
