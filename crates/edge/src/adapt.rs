//! The lag-driven autoscaler — now a thin shim over the feedback
//! controller ([`crate::control`]).
//!
//! The paper's vision (Section V): "a distributed workload management
//! system that can select, acquire and dynamically scale resources across
//! the continuum at runtime based on the application's objectives", and
//! Section II-D: "the allocated resources can be adapted, i.e., expanded
//! and scaled-down, dynamically at runtime, e.g., if a bottleneck arises
//! due to increased data rates".
//!
//! The implemented objective is the canonical streaming one: bound consumer
//! lag. [`AutoScalerConfig`] maps onto the controller with every knob
//! except the processor count pinned (min = max = current), zero cooldown,
//! and attribution off — which reproduces the legacy scaler's decisions
//! exactly: sample total lag every `interval`, count consecutive
//! observations above `scale_up_lag` (or at/below `scale_down_lag`), and
//! at `hysteresis` grow or shrink the consumer pool by one within
//! `[min_processors, max_processors]`. The full controller — multiple
//! knobs, bottleneck attribution, cooldowns, migration — is configured via
//! [`ControllerConfig`] instead.

use crate::control::{Action, ControlBounds, ControlEvent, Controller, ControllerConfig};
use crate::runtime::PipelineCtl;
use std::sync::Arc;
use std::time::Duration;

/// Handle to a running autoscaler thread (the controller handle — the
/// autoscaler *is* a controller with pinned bounds).
pub type AutoScalerHandle = crate::control::ControllerHandle;

/// Autoscaler tuning.
#[derive(Debug, Clone)]
pub struct AutoScalerConfig {
    /// Never shrink below this pool size.
    pub min_processors: usize,
    /// Never grow beyond this pool size (bounded by the cloud pilot's
    /// cores in practice — extra consumers would just queue).
    pub max_processors: usize,
    /// Scale up when total lag exceeds this many records.
    pub scale_up_lag: u64,
    /// Scale down when total lag falls to or below this many records.
    pub scale_down_lag: u64,
    /// Sampling interval.
    pub interval: Duration,
    /// Consecutive same-direction observations required before acting.
    pub hysteresis: usize,
}

impl Default for AutoScalerConfig {
    fn default() -> Self {
        Self {
            min_processors: 1,
            max_processors: 8,
            scale_up_lag: 16,
            scale_down_lag: 2,
            interval: Duration::from_millis(50),
            hysteresis: 2,
        }
    }
}

impl AutoScalerConfig {
    /// The equivalent controller configuration: lag-only (no attribution),
    /// every non-processor knob pinned to its current live value, and zero
    /// cooldown — the legacy scaler acted every `hysteresis` ticks with no
    /// extra spacing.
    pub(crate) fn to_controller(&self, ctl: &PipelineCtl) -> ControllerConfig {
        let tune = &ctl.shared.tune;
        let compute = ctl.shared.ctx.compute.threads();
        let batch = tune.batch_max_bytes();
        let prefetch = tune.prefetch_depth();
        let fetch = tune.fetch_max();
        ControllerConfig {
            tick: self.interval,
            hysteresis: self.hysteresis,
            cooldown: Duration::ZERO,
            lag_bound: self.scale_up_lag,
            lag_low: self.scale_down_lag,
            bounds: ControlBounds {
                min_processors: self.min_processors,
                max_processors: self.max_processors,
                min_compute: compute,
                max_compute: compute,
                min_batch_bytes: batch,
                max_batch_bytes: batch,
                min_prefetch: prefetch,
                max_prefetch: prefetch,
                min_fetch_max: fetch,
                max_fetch_max: fetch,
            },
            use_attribution: false,
            migration: None,
            ..ControllerConfig::default()
        }
    }
}

/// One scaling decision, for post-run analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingEvent {
    /// Time since the scaler started.
    pub at: Duration,
    /// Observed total lag that triggered the decision.
    pub lag: u64,
    /// Pool size before.
    pub from: usize,
    /// Pool size after.
    pub to: usize,
    /// The attributed bottleneck component at decision time (`None` for
    /// the lag-only autoscaler, or when telemetry is off).
    pub bottleneck: Option<String>,
    /// The latest telemetry frame's gauge levels at decision time (empty
    /// when the telemetry plane is off).
    pub gauges: Vec<(String, i64)>,
}

impl ScalingEvent {
    /// Project a journal entry onto the legacy shape; `None` for
    /// non-processor actions (those only exist in the full journal).
    pub(crate) fn from_control(e: &ControlEvent) -> Option<Self> {
        match e.action {
            Action::ScaleProcessors { from, to } => Some(Self {
                at: e.at,
                lag: e.cause.lag,
                from,
                to,
                bottleneck: e.cause.bottleneck.clone(),
                gauges: e.gauges.clone(),
            }),
            _ => None,
        }
    }
}

/// The monitor loop (spawned by `RunningPipeline::autoscale`).
pub struct AutoScaler;

impl AutoScaler {
    pub(crate) fn spawn(ctl: Arc<PipelineCtl>, config: AutoScalerConfig) -> AutoScalerHandle {
        let controller = config.to_controller(&ctl);
        Controller::spawn(ctl, controller)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::EdgeToCloudPipeline;
    use crate::processors::datagen_produce_factory;
    use pilot_core::{PilotComputeService, PilotDescription};
    use pilot_datagen::DataGenConfig;

    const WAIT: Duration = Duration::from_secs(60);

    #[test]
    fn default_config_is_sane() {
        let c = AutoScalerConfig::default();
        assert!(c.min_processors <= c.max_processors);
        assert!(c.scale_down_lag < c.scale_up_lag);
        assert!(c.hysteresis >= 1);
    }

    #[test]
    fn scales_up_under_lag_and_down_when_drained() {
        // A deliberately slow processor (5 ms/message) against 4 devices
        // producing at 100 msg/s each: 1 consumer cannot keep up (lag
        // grows), so the scaler must add consumers; once producers finish
        // and the backlog drains, it scales back down.
        let svc = PilotComputeService::new();
        let edge = svc
            .submit_and_wait(PilotDescription::local(4, 16.0), WAIT)
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(4, 16.0), WAIT)
            .unwrap();
        let slow: crate::faas::CloudFactory = std::sync::Arc::new(|_ctx| {
            Box::new(move |_ctx: &crate::faas::Context, _block| {
                std::thread::sleep(Duration::from_millis(5));
                Ok(crate::faas::ProcessOutcome::default())
            })
        });
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 60))
            .process_cloud_function(slow)
            .devices(4)
            .processors(1)
            .rate_per_device(100.0)
            .start()
            .unwrap();
        running.autoscale(AutoScalerConfig {
            min_processors: 1,
            max_processors: 4,
            scale_up_lag: 10,
            scale_down_lag: 1,
            interval: Duration::from_millis(25),
            hysteresis: 2,
        });
        let events_handle = running.scaling_events();
        assert!(events_handle.is_empty(), "no decisions yet");
        // Run to completion; the scaler acts along the way.
        let summary = {
            // Grab events just before wait consumes the pipeline.
            std::thread::sleep(Duration::from_millis(400));
            let mid_events = running.scaling_events();
            assert!(
                mid_events.iter().any(|e| e.to > e.from),
                "expected at least one scale-up, got {mid_events:?}"
            );
            // The lag-only shim never attributes a bottleneck.
            assert!(mid_events.iter().all(|e| e.bottleneck.is_none()));
            running.wait(WAIT).unwrap()
        };
        assert_eq!(summary.messages, 240);
    }

    #[test]
    fn respects_max_processors() {
        let svc = PilotComputeService::new();
        let edge = svc
            .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
            .unwrap();
        let cloud = svc
            .submit_and_wait(PilotDescription::local(2, 8.0), WAIT)
            .unwrap();
        let slow: crate::faas::CloudFactory = std::sync::Arc::new(|_ctx| {
            Box::new(move |_ctx: &crate::faas::Context, _block| {
                std::thread::sleep(Duration::from_millis(4));
                Ok(crate::faas::ProcessOutcome::default())
            })
        });
        let running = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(10), 40))
            .process_cloud_function(slow)
            .devices(2)
            .processors(1)
            .rate_per_device(150.0)
            .start()
            .unwrap();
        running.autoscale(AutoScalerConfig {
            min_processors: 1,
            max_processors: 2,
            scale_up_lag: 5,
            scale_down_lag: 0,
            interval: Duration::from_millis(20),
            hysteresis: 1,
        });
        std::thread::sleep(Duration::from_millis(300));
        assert!(running.processor_count() <= 2);
        let events = running.scaling_events();
        assert!(events.iter().all(|e| e.to <= 2), "{events:?}");
        running.wait(WAIT).unwrap();
    }
}
