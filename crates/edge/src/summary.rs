//! Per-run result digests.

use pilot_metrics::{Component, PipelineReport};

/// The digest of one pipeline run — the row the experiment harness prints
/// for each (message size × partitions × model × geography) cell of the
//  paper's figures.
#[derive(Debug, Clone)]
pub struct RunSummary {
    pub job_id: u64,
    /// Distinct messages observed end-to-end.
    pub messages: u64,
    /// Pipeline throughput, messages/second.
    pub throughput_msgs: f64,
    /// Pipeline throughput, MB/second.
    pub throughput_mb: f64,
    /// Mean end-to-end latency, milliseconds.
    pub latency_mean_ms: f64,
    /// Median end-to-end latency, milliseconds.
    pub latency_p50_ms: f64,
    /// 99th-percentile end-to-end latency, milliseconds.
    pub latency_p99_ms: f64,
    /// Failed component spans.
    pub errors: u64,
    /// The component with the highest load (the paper's bottleneck
    /// analysis, e.g. "the processing system becomes the bottleneck").
    pub bottleneck: Option<String>,
    /// Outliers flagged by the processors (from the `outliers_detected`
    /// counter), if any model thresholding ran.
    pub outliers_detected: u64,
    /// The full linked report, for per-component drill-down.
    pub report: PipelineReport,
}

impl RunSummary {
    /// Build a summary from a report plus the job's counters.
    pub fn from_report(job_id: u64, report: PipelineReport, outliers_detected: u64) -> Self {
        let e = &report.end_to_end;
        Self {
            job_id,
            messages: e.messages,
            throughput_msgs: e.throughput_msgs,
            throughput_mb: e.throughput_mb,
            latency_mean_ms: e.latency_us.mean() / 1e3,
            latency_p50_ms: e.latency_us.median() as f64 / 1e3,
            latency_p99_ms: e.latency_us.p99() as f64 / 1e3,
            errors: report.total_errors(),
            bottleneck: report.bottleneck().map(|c| c.component.label()),
            outliers_detected,
            report,
        }
    }

    /// Mean service time of one component in milliseconds (0 if absent).
    pub fn component_mean_ms(&self, c: &Component) -> f64 {
        self.report
            .component(c)
            .map(|s| s.mean_service_ms())
            .unwrap_or(0.0)
    }

    /// CSV header matching [`RunSummary::to_csv_row`].
    pub fn csv_header() -> &'static str {
        "job_id,messages,throughput_msgs_s,throughput_mb_s,latency_mean_ms,latency_p50_ms,latency_p99_ms,errors,bottleneck"
    }

    /// One CSV row.
    pub fn to_csv_row(&self) -> String {
        format!(
            "{},{},{:.2},{:.3},{:.2},{:.2},{:.2},{},{}",
            self.job_id,
            self.messages,
            self.throughput_msgs,
            self.throughput_mb,
            self.latency_mean_ms,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.errors,
            self.bottleneck.as_deref().unwrap_or("-"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_metrics::Span;

    fn spans() -> Vec<Span> {
        vec![
            Span {
                job_id: 1,
                msg_id: 1,
                component: Component::EdgeProducer,
                start_us: 0,
                end_us: 100,
                bytes: 1000,
                error: false,
            },
            Span {
                job_id: 1,
                msg_id: 1,
                component: Component::CloudProcessor,
                start_us: 200,
                end_us: 1_000,
                bytes: 1000,
                error: false,
            },
        ]
    }

    #[test]
    fn summary_fields_derive_from_report() {
        let report = PipelineReport::from_spans(&spans());
        let s = RunSummary::from_report(1, report, 5);
        assert_eq!(s.messages, 1);
        assert_eq!(s.outliers_detected, 5);
        assert_eq!(s.errors, 0);
        assert!((s.latency_mean_ms - 1.0).abs() < 0.1);
        assert_eq!(s.bottleneck.as_deref(), Some("cloud_processor"));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let report = PipelineReport::from_spans(&spans());
        let s = RunSummary::from_report(1, report, 0);
        let header_cols = RunSummary::csv_header().split(',').count();
        let row_cols = s.to_csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }

    #[test]
    fn empty_run_is_all_zero() {
        let s = RunSummary::from_report(1, PipelineReport::from_spans(&[]), 0);
        assert_eq!(s.messages, 0);
        assert_eq!(s.throughput_mb, 0.0);
        assert!(s.bottleneck.is_none());
    }
}
