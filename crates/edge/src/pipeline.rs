//! The `EdgeToCloudPipeline` builder — the Rust rendering of paper
//! Listing 2:
//!
//! ```text
//! pilot.EdgeToCloudPipeline(
//!   pilot_cloud_processing = pilot_job_cloud_processing,
//!   pilot_cloud_broker     = pilot_job_cloud_broker,
//!   pilot_edge             = pilot_job_edge,
//!   produce_function_handler       = produce_block_edge,
//!   process_edge_function_handler  = process_block_edge,
//!   process_cloud_function_handler = process_block_cloud,
//!   function_context = context, ...
//! ).run()
//! ```

use crate::deployment::DeploymentMode;
use crate::faas::{identity_edge_factory, CloudFactory, EdgeFactory, ProduceFactory};
use crate::runtime::{self, RunningPipeline};
use crate::summary::RunSummary;
use pilot_broker::{BrokerError, RetentionPolicy};
use pilot_core::{Pilot, PilotState};
use pilot_dataflow::TaskError;
use pilot_metrics::MetricsRegistry;
use pilot_netsim::Link;
use std::collections::HashMap;
use std::time::Duration;

/// Tuning knobs with paper-faithful defaults.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Edge devices = broker partitions ("every edge device is assigned a
    /// dedicated partition").
    pub devices: usize,
    /// Consumer tasks; defaults to `devices` ("we keep the ratio of
    /// partitions constant between Kafka and Dask").
    pub processors: usize,
    /// Deployment modality.
    pub mode: DeploymentMode,
    /// Broker topic name; defaults to `pilot-edge-<job>` (the framework's
    /// "automatically created Kafka topic").
    pub topic: Option<String>,
    /// Producer rate per device in messages/second (0 = unthrottled).
    pub rate_per_device: f64,
    /// Max records per consumer fetch.
    pub fetch_max: usize,
    /// Blocking-poll timeout per consumer loop iteration.
    pub poll_timeout: Duration,
    /// Broker retention.
    pub retention: RetentionPolicy,
    /// Wire codec for blocks crossing the network (paper Section II-D:
    /// "data compression to ensure that the amount of data movement is
    /// minimal"). Consumers auto-detect, so it can differ between runs.
    pub codec: pilot_datagen::Codec,
    /// Width of the cloud pilot's intra-task compute pool (threads a single
    /// model fit/score may fan out across). `None` (the default) sizes it
    /// from the cloud pilot's core count, so a 1-core pilot stays
    /// sequential and a multi-core pilot parallelises the ML hot path.
    /// Results are bit-identical at any width (see `pilot_dataflow::pool`).
    pub compute_threads: Option<usize>,
    /// Producer batching threshold in encoded bytes. `0` (the default)
    /// disables the batcher entirely: each message pays its own blocking
    /// edge→broker transfer, exactly as before. Any positive value turns
    /// on the pipelined transport: encoded messages accumulate until their
    /// summed size reaches this threshold (or [`Self::linger`] expires),
    /// then ship over one link reservation whose flight time overlaps the
    /// encoding of the next batch. Batches pay propagation once.
    pub batch_max_bytes: usize,
    /// How long the first message of a producer batch may wait for
    /// batch-mates before the batch ships anyway (the `linger.ms` of
    /// Kafka's producer). `Duration::ZERO` (the default) ships every
    /// message immediately on its own reservation — still pipelined when
    /// `batch_max_bytes > 0`, just without coalescing. A positive linger
    /// with `batch_max_bytes == 0` is rejected by [`Self::validate`]
    /// (there is no batcher for the window to apply to, so it would
    /// silently do nothing).
    pub linger: Duration,
    /// Batches each consumer fetches ahead of processing. `0` (the
    /// default) disables prefetch: the consumer pays the broker→cloud
    /// transfer inline between fetch and process, exactly as before. Any
    /// positive value moves fetch + transfer onto a per-consumer prefetch
    /// thread with a queue of this depth (backpressure), so batch N+1
    /// crosses the WAN while batch N is processed.
    pub prefetch_depth: usize,
    /// Edge producer engine. `None` (the default) runs one producer task
    /// per device (the paper's "edge devices are simulated with a Dask
    /// task"), requiring `devices` edge cores. `Some(k)` multiplexes all
    /// devices onto `k` engine worker tasks via a deadline queue keyed by
    /// each device's next send time ([`Self::rate_per_device`]) — the
    /// fan-in scale-out for ~1000-device cells, where thread-per-device
    /// would need ~1000 edge cores. Per-device message content, ordering,
    /// and sentinel semantics are identical between the two engines.
    pub producer_threads: Option<usize>,
    /// Live-telemetry sampling interval in milliseconds. `None` (the
    /// default) disables the telemetry plane entirely: no gauges are
    /// registered, no sampler thread runs, and the per-message hot path
    /// carries zero extra instructions. `Some(ms)` registers per-stage
    /// gauges (producer deadline-queue depth, in-flight batch bytes,
    /// prefetch occupancy, per-partition consumer lag, link
    /// reservation-queue depth and busy time, compute-pool occupancy) and
    /// spawns a sampler thread snapshotting them every `ms` milliseconds
    /// into a frame ring retrievable mid-run from
    /// [`RunningPipeline::telemetry`]. `Some(0)` is rejected by
    /// [`Self::validate`].
    pub telemetry_sample_ms: Option<u64>,
    /// The event-driven consumer core. `None` (the default) runs one
    /// thread-backed cloud task per consumer member, requiring
    /// `processors` cloud cores — exactly as before. `Some(k)` drives
    /// *every* member as a waker-based state machine on a fixed pool of
    /// `k` reactor threads: a parked member costs no thread, fetch readiness
    /// comes from the broker's arrival registry (exact wakeups, no
    /// `notify_all` herd), and broker→cloud transfers park on the link
    /// reservation's deadline instead of sleeping — the fan-in scale-out
    /// for the consumer side, where thread-per-member tops out around 1k
    /// members. Message sets and span chains are identical between the
    /// two shapes under a fixed seed; `prefetch_depth` is subsumed (the
    /// reactor's deadline-parked transfers already overlap the WAN with
    /// other members' processing). `Some(0)` is rejected by
    /// [`Self::validate`].
    pub reactor_threads: Option<usize>,
    /// Durable broker log. `None` (the default) keeps the seed's
    /// memory-only commit log: nothing touches disk, nothing survives the
    /// process. `Some(dir)` persists every partition of the pipeline topic
    /// under `dir` through the broker's segmented storage engine: appends
    /// mirror into per-partition segment files, a group-commit flusher
    /// fsyncs all partitions once per commit window and advances the
    /// durable watermark, cold segments are evicted from memory (bounding
    /// the resident footprint of unbounded runs), and reopening the same
    /// directory recovers the log — truncating any torn tail a crash left.
    /// See `pilot_broker::storage`.
    pub log_dir: Option<std::path::PathBuf>,
    /// Group-commit window in milliseconds for the durable log (the
    /// broker-side analogue of the producer [`Self::linger`]: one fsync
    /// covers every append of every partition in the window). `None` with
    /// `log_dir` set uses the engine default (5 ms). Requires `log_dir`;
    /// `Some(0)` is rejected by [`Self::validate`].
    pub fsync_interval_ms: Option<u64>,
    /// Early-kick threshold for the group-commit flusher: when un-synced
    /// bytes reach this figure the fsync happens immediately instead of
    /// waiting out the interval. `None` with `log_dir` set uses the engine
    /// default (1 MiB). Requires `log_dir`; `Some(0)` is rejected by
    /// [`Self::validate`].
    pub fsync_batch_bytes: Option<u64>,
    /// The feedback controller (DESIGN.md §15). `None` (the default) runs
    /// no control loop: no controller thread, no `control.*` gauges, a
    /// fixed-width compute pool, and every stage knob frozen at its
    /// configured value — bit-identical to the pre-controller runtime.
    /// `Some(cfg)` spawns a controller thread with the pipeline that
    /// samples consumer lag (and, with the telemetry plane on, the
    /// bottleneck attribution) every `cfg.tick`, and turns the live knobs
    /// — consumer pool, compute-pool width, batching, prefetch depth,
    /// fetch budget, optionally model placement — within `cfg.bounds`.
    /// Decisions are journalled; read them via
    /// [`RunningPipeline::control_events`]. The compute pool is created
    /// resizable up to `cfg.bounds.max_compute`.
    pub controller: Option<crate::control::ControllerConfig>,
    /// `Some(cfg)` opens the observability front door (DESIGN.md §16): an
    /// HTTP/SSE gateway bound to `cfg.bind` serving live metrics,
    /// telemetry, traces, the control journal, tune ingestion, and record
    /// ingestion. `None` (the default) builds nothing — no socket, no
    /// threads, no `gateway.*` gauges.
    pub gateway: Option<pilot_gateway::GatewayConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            devices: 1,
            processors: 1,
            mode: DeploymentMode::CloudCentric,
            topic: None,
            rate_per_device: 0.0,
            fetch_max: 4,
            poll_timeout: Duration::from_millis(20),
            retention: RetentionPolicy::default(),
            codec: pilot_datagen::Codec::F64,
            compute_threads: None,
            batch_max_bytes: 0,
            linger: Duration::ZERO,
            prefetch_depth: 0,
            producer_threads: None,
            telemetry_sample_ms: None,
            reactor_threads: None,
            log_dir: None,
            fsync_interval_ms: None,
            fsync_batch_bytes: None,
            controller: None,
            gateway: None,
        }
    }
}

/// Pipeline construction / runtime errors.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// A required builder field was not set.
    Missing(&'static str),
    /// A pilot is not Active (activate pilots before building — step 1
    /// precedes step 2 in Fig. 1).
    PilotNotReady {
        which: &'static str,
        state: PilotState,
    },
    /// A pilot is too small for the requested topology.
    Capacity(String),
    /// The knob combination is inconsistent (see
    /// [`PipelineConfig::validate`]).
    Config(String),
    /// The broker rejected an operation.
    Broker(String),
    /// Task submission failed.
    Task(String),
    /// The run did not finish within the allotted time.
    Timeout,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Missing(what) => write!(f, "builder field missing: {what}"),
            PipelineError::PilotNotReady { which, state } => {
                write!(f, "pilot '{which}' is not active (state: {state})")
            }
            PipelineError::Capacity(msg) => write!(f, "insufficient pilot capacity: {msg}"),
            PipelineError::Config(msg) => write!(f, "invalid pipeline config: {msg}"),
            PipelineError::Broker(msg) => write!(f, "broker error: {msg}"),
            PipelineError::Task(msg) => write!(f, "task error: {msg}"),
            PipelineError::Timeout => write!(f, "pipeline run timed out"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<BrokerError> for PipelineError {
    fn from(e: BrokerError) -> Self {
        PipelineError::Broker(e.to_string())
    }
}

impl From<TaskError> for PipelineError {
    fn from(e: TaskError) -> Self {
        PipelineError::Task(e.to_string())
    }
}

/// Builder for an edge-to-cloud pipeline.
pub struct EdgeToCloudPipeline {
    pub(crate) pilot_edge: Option<Pilot>,
    pub(crate) pilot_cloud_processing: Option<Pilot>,
    pub(crate) pilot_cloud_broker: Option<Pilot>,
    pub(crate) produce_factory: Option<ProduceFactory>,
    pub(crate) edge_factory: EdgeFactory,
    pub(crate) cloud_factory: Option<CloudFactory>,
    pub(crate) settings: HashMap<String, String>,
    pub(crate) link_edge_broker: Link,
    pub(crate) link_broker_cloud: Link,
    pub(crate) metrics: Option<MetricsRegistry>,
    pub(crate) config: PipelineConfig,
}

impl EdgeToCloudPipeline {
    /// Start building a pipeline.
    pub fn builder() -> Self {
        Self {
            pilot_edge: None,
            pilot_cloud_processing: None,
            pilot_cloud_broker: None,
            produce_factory: None,
            edge_factory: identity_edge_factory(),
            cloud_factory: None,
            settings: HashMap::new(),
            link_edge_broker: Link::loopback(),
            link_broker_cloud: Link::loopback(),
            metrics: None,
            config: PipelineConfig::default(),
        }
    }

    /// The pilot hosting the edge devices (producer tasks).
    pub fn pilot_edge(mut self, p: Pilot) -> Self {
        self.pilot_edge = Some(p);
        self
    }

    /// The pilot hosting cloud processing (consumer tasks).
    pub fn pilot_cloud_processing(mut self, p: Pilot) -> Self {
        self.pilot_cloud_processing = Some(p);
        self
    }

    /// The pilot hosting the broker and parameter server. Defaults to the
    /// cloud-processing pilot.
    pub fn pilot_cloud_broker(mut self, p: Pilot) -> Self {
        self.pilot_cloud_broker = Some(p);
        self
    }

    /// The `produce_edge` handler factory.
    pub fn produce_function(mut self, f: ProduceFactory) -> Self {
        self.produce_factory = Some(f);
        self
    }

    /// The `process_edge` handler factory (identity by default).
    pub fn process_edge_function(mut self, f: EdgeFactory) -> Self {
        self.edge_factory = f;
        self
    }

    /// The `process_cloud` handler factory.
    pub fn process_cloud_function(mut self, f: CloudFactory) -> Self {
        self.cloud_factory = Some(f);
        self
    }

    /// Application settings exposed through the context object.
    pub fn function_context(mut self, settings: HashMap<String, String>) -> Self {
        self.settings = settings;
        self
    }

    /// The simulated link producers cross to reach the broker.
    pub fn link_edge_to_broker(mut self, link: Link) -> Self {
        self.link_edge_broker = link;
        self
    }

    /// The simulated link consumers cross to reach the broker.
    pub fn link_broker_to_cloud(mut self, link: Link) -> Self {
        self.link_broker_cloud = link;
        self
    }

    /// Use an existing metrics registry (so multiple runs share one
    /// timeline); a fresh one is created otherwise.
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Number of edge devices (= partitions). Also sets `processors` to
    /// match, preserving the paper's 1:1 ratio; call
    /// [`Self::processors`] afterwards to override.
    pub fn devices(mut self, n: usize) -> Self {
        self.config.devices = n;
        self.config.processors = n;
        self
    }

    /// Number of cloud consumer tasks.
    pub fn processors(mut self, n: usize) -> Self {
        self.config.processors = n;
        self
    }

    /// Deployment modality.
    pub fn mode(mut self, mode: DeploymentMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Per-device producer rate (messages/second; 0 = unthrottled).
    pub fn rate_per_device(mut self, rate: f64) -> Self {
        self.config.rate_per_device = rate;
        self
    }

    /// Wire codec for data crossing the network.
    pub fn codec(mut self, codec: pilot_datagen::Codec) -> Self {
        self.config.codec = codec;
        self
    }

    /// Width of the intra-task compute pool shared by the cloud processors
    /// (defaults to the cloud pilot's core count). `1` forces the ML hot
    /// path fully sequential; scores are bit-identical either way.
    pub fn compute_threads(mut self, n: usize) -> Self {
        self.config.compute_threads = Some(n);
        self
    }

    /// Producer batching threshold in encoded bytes (0 = off, the
    /// default). See [`PipelineConfig::batch_max_bytes`].
    pub fn batch_max_bytes(mut self, bytes: usize) -> Self {
        self.config.batch_max_bytes = bytes;
        self
    }

    /// Max time the first message of a producer batch waits for
    /// batch-mates. Requires `batch_max_bytes > 0` (a positive linger
    /// without batching is rejected at start). See
    /// [`PipelineConfig::linger`].
    pub fn linger(mut self, linger: Duration) -> Self {
        self.config.linger = linger;
        self
    }

    /// Batches each consumer prefetches ahead of processing (0 = off, the
    /// default). See [`PipelineConfig::prefetch_depth`].
    pub fn prefetch_depth(mut self, depth: usize) -> Self {
        self.config.prefetch_depth = depth;
        self
    }

    /// Multiplex all edge devices onto `n` producer engine workers instead
    /// of one task per device. See [`PipelineConfig::producer_threads`].
    pub fn producer_threads(mut self, n: usize) -> Self {
        self.config.producer_threads = Some(n);
        self
    }

    /// Turn on the live telemetry plane, sampling stage gauges every `ms`
    /// milliseconds. See [`PipelineConfig::telemetry_sample_ms`] and
    /// [`RunningPipeline::telemetry`].
    pub fn telemetry_sample_ms(mut self, ms: u64) -> Self {
        self.config.telemetry_sample_ms = Some(ms);
        self
    }

    /// Drive all consumer members on a fixed pool of `n` reactor threads
    /// instead of one cloud task per member. See
    /// [`PipelineConfig::reactor_threads`].
    pub fn reactor_threads(mut self, n: usize) -> Self {
        self.config.reactor_threads = Some(n);
        self
    }

    /// Persist the broker log under `dir` (durable, crash-recoverable
    /// topic). See [`PipelineConfig::log_dir`].
    pub fn log_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.config.log_dir = Some(dir.into());
        self
    }

    /// Group-commit fsync window in milliseconds (requires
    /// [`Self::log_dir`]). See [`PipelineConfig::fsync_interval_ms`].
    pub fn fsync_interval_ms(mut self, ms: u64) -> Self {
        self.config.fsync_interval_ms = Some(ms);
        self
    }

    /// Early-kick dirty-bytes threshold for the group-commit flusher
    /// (requires [`Self::log_dir`]). See
    /// [`PipelineConfig::fsync_batch_bytes`].
    pub fn fsync_batch_bytes(mut self, bytes: u64) -> Self {
        self.config.fsync_batch_bytes = Some(bytes);
        self
    }

    /// Attach the feedback controller: a control loop spawned with the
    /// pipeline that closes the telemetry→knob loop (consumer pool,
    /// compute width, batching, prefetch, fetch budget, model placement).
    /// See [`PipelineConfig::controller`] and [`crate::control`].
    pub fn controller(mut self, config: crate::control::ControllerConfig) -> Self {
        self.config.controller = Some(config);
        self
    }

    /// Open the observability front door: an HTTP/SSE gateway serving this
    /// pipeline's metrics, telemetry, traces, and control journal, and
    /// accepting live tunes and record ingestion. See
    /// [`PipelineConfig::gateway`] and [`RunningPipeline::gateway_addr`].
    ///
    /// [`RunningPipeline::gateway_addr`]: crate::runtime::RunningPipeline::gateway_addr
    pub fn gateway(mut self, config: pilot_gateway::GatewayConfig) -> Self {
        self.config.gateway = Some(config);
        self
    }

    /// Override the full config.
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    fn require_active(p: &Option<Pilot>, which: &'static str) -> Result<Pilot, PipelineError> {
        let p = p.as_ref().ok_or(PipelineError::Missing(which))?;
        if p.state() != PilotState::Active {
            return Err(PipelineError::PilotNotReady {
                which,
                state: p.state(),
            });
        }
        Ok(p.clone())
    }

    /// Validate and start the pipeline; returns a handle to the running
    /// system.
    pub fn start(self) -> Result<RunningPipeline, PipelineError> {
        let edge = Self::require_active(&self.pilot_edge, "pilot_edge")?;
        let cloud = Self::require_active(&self.pilot_cloud_processing, "pilot_cloud_processing")?;
        let broker_pilot = match &self.pilot_cloud_broker {
            Some(_) => Self::require_active(&self.pilot_cloud_broker, "pilot_cloud_broker")?,
            None => cloud.clone(),
        };
        if self.produce_factory.is_none() {
            return Err(PipelineError::Missing("produce_function"));
        }
        if self.cloud_factory.is_none() {
            return Err(PipelineError::Missing("process_cloud_function"));
        }
        let cfg = &self.config;
        // Knob consistency (devices/processors > 0, no zero-width pools,
        // no linger without batching) — see `PipelineConfig::validate`.
        cfg.validate()?;
        // One core per edge task, one per consumer — the paper's task
        // granularity. The multiplexed engine needs `producer_threads`
        // edge cores; thread-per-device needs one per device. Undersized
        // pilots would deadlock, so reject them.
        let edge_tasks = cfg.producer_threads.unwrap_or(cfg.devices);
        if edge.description().cores < edge_tasks {
            return Err(PipelineError::Capacity(format!(
                "edge pilot has {} cores but {} producer tasks were requested \
                 ({} devices, producer_threads = {:?})",
                edge.description().cores,
                edge_tasks,
                cfg.devices,
                cfg.producer_threads
            )));
        }
        // The reactor multiplexes every member onto `reactor_threads`
        // threads, so the cloud pilot only needs cores for those; the
        // thread-backed default needs one per processor.
        let cloud_tasks = cfg.reactor_threads.unwrap_or(cfg.processors);
        if cloud.description().cores < cloud_tasks {
            return Err(PipelineError::Capacity(format!(
                "cloud pilot has {} cores but {} consumer-side tasks were \
                 requested ({} processors, reactor_threads = {:?})",
                cloud.description().cores,
                cloud_tasks,
                cfg.processors,
                cfg.reactor_threads
            )));
        }
        runtime::start(self, edge, cloud, broker_pilot)
    }

    /// Start, wait for completion, and return the run summary — the
    /// blocking `run()` of Listing 2.
    pub fn run(self, timeout: Duration) -> Result<RunSummary, PipelineError> {
        let running = self.start()?;
        running.wait(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::processors::{baseline_factory, datagen_produce_factory};
    use pilot_core::{PilotComputeService, PilotDescription};
    use pilot_datagen::DataGenConfig;

    fn active_pilot(svc: &PilotComputeService, cores: usize) -> Pilot {
        svc.submit_and_wait(PilotDescription::local(cores, 8.0), Duration::from_secs(5))
            .unwrap()
    }

    #[test]
    fn builder_rejects_missing_fields() {
        let err = EdgeToCloudPipeline::builder().start().unwrap_err();
        assert_eq!(err, PipelineError::Missing("pilot_edge"));
    }

    #[test]
    fn builder_rejects_inactive_pilot() {
        let svc = PilotComputeService::new();
        // An edge pilot with a boot delay will not be Active immediately.
        let slow = svc
            .create_pilot(PilotDescription::edge_device("pi", "lab"))
            .unwrap();
        let cloud = active_pilot(&svc, 2);
        if slow.state() != PilotState::Active {
            let err = EdgeToCloudPipeline::builder()
                .pilot_edge(slow)
                .pilot_cloud_processing(cloud)
                .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 1))
                .process_cloud_function(baseline_factory())
                .start()
                .unwrap_err();
            assert!(matches!(err, PipelineError::PilotNotReady { .. }));
        }
    }

    #[test]
    fn builder_rejects_undersized_pilots() {
        let svc = PilotComputeService::new();
        let edge = active_pilot(&svc, 1);
        let cloud = active_pilot(&svc, 1);
        let err = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 1))
            .process_cloud_function(baseline_factory())
            .devices(4)
            .start()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Capacity(_)), "{err}");
    }

    #[test]
    fn start_rejects_inconsistent_knobs() {
        // validate() runs inside start(): a linger without batching must
        // be rejected before any resource is provisioned.
        let svc = PilotComputeService::new();
        let edge = active_pilot(&svc, 1);
        let cloud = active_pilot(&svc, 1);
        let err = EdgeToCloudPipeline::builder()
            .pilot_edge(edge)
            .pilot_cloud_processing(cloud)
            .produce_function(datagen_produce_factory(DataGenConfig::paper(5), 1))
            .process_cloud_function(baseline_factory())
            .linger(Duration::from_millis(2))
            .start()
            .unwrap_err();
        assert!(matches!(err, PipelineError::Config(_)), "{err}");
    }

    #[test]
    fn devices_sets_processors_to_match() {
        let b = EdgeToCloudPipeline::builder().devices(4);
        assert_eq!(b.config.devices, 4);
        assert_eq!(b.config.processors, 4);
        let b = b.processors(2);
        assert_eq!(b.config.processors, 2);
    }

    #[test]
    fn error_display() {
        assert!(PipelineError::Missing("produce_function")
            .to_string()
            .contains("produce_function"));
        assert!(PipelineError::Timeout.to_string().contains("timed out"));
    }
}
