//! The FaaS function interfaces and the shared [`Context`].
//!
//! Functions are supplied as **factories** (`Fn(...) -> Box<dyn FnMut ...>`)
//! rather than single closures: the runtime instantiates one copy per task
//! (one producer per edge device, one processor per consumer), exactly like
//! the paper packages "the user-defined functions into tasks". Per-task
//! copies can hold mutable model state without cross-task locking; state
//! that must be shared crosses through the [`Context`]'s parameter server.

use pilot_dataflow::ComputePool;
use pilot_datagen::Block;
use pilot_metrics::{Counter, JobId, MetricsRegistry};
use pilot_params::ParameterServer;
use std::collections::HashMap;
use std::sync::Arc;

/// What a cloud-processing invocation produced.
#[derive(Debug, Clone, Default)]
pub struct ProcessOutcome {
    /// Outlier scores per point, if the function computed them.
    pub scores: Option<Vec<f64>>,
    /// Points flagged as outliers, if thresholding was applied.
    pub outliers: usize,
}

/// The context object passed to every function invocation: "information on
/// the resource topology and shared state are via a context object"
/// (paper Section II-B).
#[derive(Clone)]
pub struct Context {
    /// The unique job identifier linking metrics across components.
    pub job_id: JobId,
    /// Number of edge devices (= partitions) in the topology.
    pub devices: usize,
    /// The shared parameter server for model weights.
    pub params: ParameterServer,
    /// The pipeline's metrics registry (functions may record custom spans).
    pub metrics: MetricsRegistry,
    /// Immutable application settings ("function_context" in Listing 2).
    pub settings: Arc<HashMap<String, String>>,
    /// The intra-task compute pool of the pilot hosting cloud processing
    /// (one shared pool per pilot; width 1 on single-core pilots, so edge
    /// devices keep their sequential behaviour). Model processors attach it
    /// via [`pilot_ml::OutlierModel::set_compute_pool`].
    pub compute: Arc<ComputePool>,
}

impl Context {
    /// Create a context (normally done by the pipeline builder).
    pub fn new(
        job_id: JobId,
        devices: usize,
        params: ParameterServer,
        metrics: MetricsRegistry,
        settings: HashMap<String, String>,
    ) -> Self {
        Self {
            job_id,
            devices,
            params,
            metrics,
            settings: Arc::new(settings),
            compute: Arc::new(ComputePool::sequential()),
        }
    }

    /// Attach the pilot's shared intra-task compute pool (the runtime sizes
    /// one per cloud pilot; the default is a sequential width-1 pool).
    pub fn with_compute_pool(mut self, pool: Arc<ComputePool>) -> Self {
        self.compute = pool;
        self
    }

    /// Look up an application setting.
    pub fn setting(&self, key: &str) -> Option<&str> {
        self.settings.get(key).map(String::as_str)
    }

    /// A named shared counter (e.g. `outliers_found`), visible to the
    /// application after the run via the metrics registry.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.metrics.counter(name)
    }

    /// The parameter-server key under which this job's model weights are
    /// shared.
    pub fn model_key(&self) -> String {
        format!("model:{}", self.job_id)
    }
}

impl std::fmt::Debug for Context {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Context")
            .field("job_id", &self.job_id)
            .field("devices", &self.devices)
            .field("compute_threads", &self.compute.threads())
            .finish()
    }
}

/// One edge device's data source: returns `None` when the stream ends
/// (mirrors `produce_edge(context)`).
pub type ProduceFn = Box<dyn FnMut(&Context) -> Option<Block> + Send>;

/// Edge-side processing: transforms a block before it crosses the network
/// (mirrors `process_edge(context, data)`).
pub type EdgeFn = Box<dyn FnMut(&Context, Block) -> Result<Block, String> + Send>;

/// Cloud-side processing (mirrors `process_cloud(context, data)`). The
/// block is borrowed: the consumer loop decodes every message into one
/// long-lived scratch block ([`pilot_datagen::decode_any_into`]), so the
/// paper's 2.6 MB messages cost no per-message allocation. Functions that
/// need to keep data clone the parts they retain.
pub type CloudFn = Box<dyn FnMut(&Context, &Block) -> Result<ProcessOutcome, String> + Send>;

/// Factory instantiating a producer for edge device `device_id`.
pub type ProduceFactory = Arc<dyn Fn(&Context, usize) -> ProduceFn + Send + Sync>;

/// Factory instantiating an edge processor for device `device_id`.
pub type EdgeFactory = Arc<dyn Fn(&Context, usize) -> EdgeFn + Send + Sync>;

/// Factory instantiating a cloud processor (one per consumer task).
pub type CloudFactory = Arc<dyn Fn(&Context) -> CloudFn + Send + Sync>;

/// A hot-swappable factory slot: consumers watch the generation and
/// re-instantiate their function when it changes (paper Section II-D:
/// "the processing functions can be programmatically replaced at runtime
/// (without the need to allocate a new pilot)").
pub struct SwappableCloudFactory {
    inner: parking_lot::Mutex<(u64, CloudFactory)>,
}

impl SwappableCloudFactory {
    /// Wrap an initial factory (generation 1).
    pub fn new(factory: CloudFactory) -> Self {
        Self {
            inner: parking_lot::Mutex::new((1, factory)),
        }
    }

    /// Current generation.
    pub fn generation(&self) -> u64 {
        self.inner.lock().0
    }

    /// Snapshot the current `(generation, factory)`.
    pub fn current(&self) -> (u64, CloudFactory) {
        let g = self.inner.lock();
        (g.0, Arc::clone(&g.1))
    }

    /// Replace the factory, bumping the generation.
    pub fn replace(&self, factory: CloudFactory) -> u64 {
        let mut g = self.inner.lock();
        g.0 += 1;
        g.1 = factory;
        g.0
    }
}

/// The identity edge function (cloud-centric deployments ship raw blocks).
pub fn identity_edge_factory() -> EdgeFactory {
    Arc::new(|_ctx, _device| Box::new(|_ctx: &Context, block: Block| Ok(block)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> Context {
        Context::new(
            7,
            2,
            ParameterServer::new(),
            MetricsRegistry::new(),
            HashMap::from([("rate".to_string(), "100".to_string())]),
        )
    }

    #[test]
    fn settings_lookup() {
        let c = ctx();
        assert_eq!(c.setting("rate"), Some("100"));
        assert_eq!(c.setting("missing"), None);
    }

    #[test]
    fn model_key_is_job_scoped() {
        assert_eq!(ctx().model_key(), "model:7");
    }

    #[test]
    fn counters_shared_across_clones() {
        let c = ctx();
        let c2 = c.clone();
        c.counter("outliers").add(3);
        assert_eq!(c2.counter("outliers").get(), 3);
    }

    #[test]
    fn default_context_pool_is_sequential() {
        // Without explicit plumbing a context must stay single-threaded —
        // the 1-core edge-device guarantee.
        assert_eq!(ctx().compute.threads(), 1);
        let wide = ctx().with_compute_pool(Arc::new(ComputePool::new(4)));
        assert_eq!(wide.compute.threads(), 4);
    }

    #[test]
    fn swappable_factory_generations() {
        let f1: CloudFactory =
            Arc::new(|_| Box::new(|_: &Context, _| Ok(ProcessOutcome::default())));
        let slot = SwappableCloudFactory::new(f1);
        assert_eq!(slot.generation(), 1);
        let f2: CloudFactory =
            Arc::new(|_| Box::new(|_: &Context, _| Ok(ProcessOutcome::default())));
        assert_eq!(slot.replace(f2), 2);
        let (gen, _) = slot.current();
        assert_eq!(gen, 2);
    }

    #[test]
    fn identity_edge_passes_block_through() {
        let c = ctx();
        let factory = identity_edge_factory();
        let mut f = factory(&c, 0);
        let block = Block {
            msg_id: 1,
            points: 1,
            features: 2,
            data: vec![1.0, 2.0],
            labels: vec![false],
        };
        let out = f(&c, block.clone()).unwrap();
        assert_eq!(out, block);
    }
}
