//! Ready-made FaaS functions wrapping the evaluation models.
//!
//! These are the `process_cloud` (and hybrid `process_edge`) implementations
//! the experiments bind into pipelines. Each cloud processor follows the
//! paper's per-message protocol (Section III.2): update the model on the
//! incoming data, score it, flag outliers, and publish the new weights
//! through the parameter service.

use crate::faas::{CloudFactory, Context, EdgeFactory, ProcessOutcome, ProduceFactory};
use pilot_datagen::{Block, DataGenConfig, DataGenerator};
use pilot_metrics::Component;
use pilot_ml::eval::threshold_by_contamination;
use pilot_ml::{
    AutoEncoder, AutoEncoderConfig, Dataset, IsolationForest, IsolationForestConfig, KMeans,
    KMeansConfig, ModelKind, OutlierModel,
};
use pilot_params::MergePolicy;
use std::sync::Arc;

/// Fraction of points flagged as outliers (PyOD's default contamination).
pub const CONTAMINATION: f64 = 0.05;

/// A produce function streaming `messages` blocks from the Mini-App
/// generator, one generator per device (seeded per device so streams
/// differ).
pub fn datagen_produce_factory(config: DataGenConfig, messages: usize) -> ProduceFactory {
    Arc::new(move |_ctx: &Context, device: usize| {
        let cfg = config
            .clone()
            .with_seed(config.seed ^ (device as u64) << 32);
        let mut generator = DataGenerator::new(cfg);
        let mut remaining = messages;
        Box::new(move |_ctx: &Context| {
            if remaining == 0 {
                return None;
            }
            remaining -= 1;
            Some(generator.next_block())
        })
    })
}

/// Wrap any [`OutlierModel`] constructor into a cloud-processing factory
/// implementing the paper's update → score → publish loop.
pub fn model_processor_factory<M, F>(make_model: F) -> CloudFactory
where
    M: OutlierModel + 'static,
    F: Fn() -> M + Send + Sync + 'static,
{
    Arc::new(move |ctx: &Context| {
        let mut model = make_model();
        // Fan fit/score out across the hosting pilot's compute pool
        // (width 1 on single-core pilots → unchanged sequential path;
        // scores are bit-identical at any width).
        model.set_compute_pool(Arc::clone(&ctx.compute));
        Box::new(move |ctx: &Context, block: &Block| {
            let ds = Dataset::new(&block.data, block.points, block.features);
            // Train on the incoming data ("the model is updated based on
            // the incoming data").
            model.partial_fit(&ds);
            // Inference: outlier scores + thresholding.
            let scores = model.score(&ds);
            let flags = threshold_by_contamination(&scores, CONTAMINATION);
            let outliers = flags.iter().filter(|&&f| f).count();
            ctx.counter("outliers_detected").add(outliers as u64);
            ctx.counter("points_processed").add(block.points as u64);
            // Publish weights via the parameter service (models without a
            // flat parametrisation — isolation forests — skip this).
            let weights = model.weights();
            if !weights.is_empty() {
                let span = ctx
                    .metrics
                    .start_span(ctx.job_id, block.msg_id, Component::ParamServer)
                    .bytes((weights.len() * 8) as u64);
                ctx.params
                    .update(&ctx.model_key(), MergePolicy::Assign, &weights);
                ctx.metrics.finish(span);
            }
            Ok(ProcessOutcome {
                scores: Some(scores),
                outliers,
            })
        })
    })
}

/// The paper's baseline: no model, no scoring — the pipeline overhead
/// measurement of Fig. 2.
pub fn baseline_factory() -> CloudFactory {
    Arc::new(|_ctx: &Context| {
        Box::new(|ctx: &Context, block: &Block| {
            ctx.counter("points_processed").add(block.points as u64);
            Ok(ProcessOutcome::default())
        })
    })
}

/// k-means (k = 25 over 32 features, the paper's configuration).
pub fn kmeans_factory(config: KMeansConfig) -> CloudFactory {
    model_processor_factory(move || KMeans::new(config.clone()))
}

/// Isolation forest (100 trees, ψ = 256 — PyOD defaults).
pub fn isoforest_factory(config: IsolationForestConfig) -> CloudFactory {
    model_processor_factory(move || IsolationForest::new(config.clone()))
}

/// Auto-encoder (hidden [64, 32, 32, 64], 11,552 parameters).
pub fn autoencoder_factory(config: AutoEncoderConfig) -> CloudFactory {
    model_processor_factory(move || AutoEncoder::new(config.clone()))
}

/// The processor for a [`ModelKind`] at the paper's configuration, assuming
/// `features` input features (32 in every paper experiment).
pub fn paper_model_factory(kind: ModelKind, features: usize) -> CloudFactory {
    match kind {
        ModelKind::Baseline => baseline_factory(),
        ModelKind::KMeans => {
            let mut cfg = KMeansConfig::paper();
            cfg.features = features;
            kmeans_factory(cfg)
        }
        ModelKind::IsolationForest => isoforest_factory(IsolationForestConfig::paper()),
        ModelKind::AutoEncoder => {
            let mut cfg = AutoEncoderConfig::paper();
            if features != cfg.features {
                cfg.features = features;
                // Keep the hidden sandwich proportional for non-paper dims.
                cfg.hidden = vec![
                    features,
                    features * 2,
                    features,
                    features,
                    features * 2,
                    features,
                ];
            }
            autoencoder_factory(cfg)
        }
    }
}

/// A cloud processor running the paper's full stage list — "pre-processing,
/// training and inference" (Section III.2): a streaming
/// [`pilot_ml::StandardScaler`] z-scores each batch against all data seen
/// so far, then the model trains and scores on the standardised features.
/// Scaler statistics are published alongside the model so another worker
/// can resume with identical normalisation.
pub fn preprocessed_model_factory<M, F>(features: usize, make_model: F) -> CloudFactory
where
    M: OutlierModel + 'static,
    F: Fn() -> M + Send + Sync + 'static,
{
    Arc::new(move |ctx: &Context| {
        let mut scaler = pilot_ml::StandardScaler::new(features);
        let mut model = make_model();
        model.set_compute_pool(Arc::clone(&ctx.compute));
        Box::new(move |ctx: &Context, block: &Block| {
            let raw = Dataset::new(&block.data, block.points, block.features);
            // Stage 1: pre-processing (streaming standardisation).
            scaler.partial_fit(&raw);
            let z = scaler.transform(&raw);
            let zds = Dataset::new(&z, block.points, block.features);
            // Stage 2: training.
            model.partial_fit(&zds);
            // Stage 3: inference.
            let scores = model.score(&zds);
            let flags = threshold_by_contamination(&scores, CONTAMINATION);
            let outliers = flags.iter().filter(|&&f| f).count();
            ctx.counter("outliers_detected").add(outliers as u64);
            ctx.counter("points_processed").add(block.points as u64);
            let weights = model.weights();
            if !weights.is_empty() {
                ctx.params
                    .update(&ctx.model_key(), MergePolicy::Assign, &weights);
            }
            ctx.params.update(
                &format!("{}:scaler", ctx.model_key()),
                MergePolicy::Assign,
                &scaler.weights(),
            );
            Ok(ProcessOutcome {
                scores: Some(scores),
                outliers,
            })
        })
    })
}

/// Hybrid-mode edge function: keep every `factor`-th point (systematic
/// subsampling), shrinking what crosses the WAN by ~`factor`× — the
/// "data compression step before the data transfer" the paper recommends.
pub fn downsample_edge_factory(factor: usize) -> EdgeFactory {
    assert!(factor >= 1, "downsample factor must be >= 1");
    Arc::new(move |_ctx: &Context, _device| {
        Box::new(move |_ctx: &Context, block: Block| {
            if factor == 1 {
                return Ok(block);
            }
            let d = block.features;
            let mut data = Vec::with_capacity(block.data.len() / factor + d);
            let mut labels = Vec::with_capacity(block.points / factor + 1);
            for i in (0..block.points).step_by(factor) {
                data.extend_from_slice(&block.data[i * d..(i + 1) * d]);
                labels.push(*block.labels.get(i).unwrap_or(&false));
            }
            Ok(Block {
                msg_id: block.msg_id,
                points: labels.len(),
                features: d,
                data,
                labels,
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_metrics::MetricsRegistry;
    use pilot_params::ParameterServer;
    use std::collections::HashMap;

    fn ctx() -> Context {
        Context::new(
            1,
            1,
            ParameterServer::new(),
            MetricsRegistry::new(),
            HashMap::new(),
        )
    }

    fn block(points: usize) -> Block {
        let mut generator = DataGenerator::new(DataGenConfig::paper(points));
        generator.next_block()
    }

    #[test]
    fn datagen_producer_streams_and_ends() {
        let c = ctx();
        let factory = datagen_produce_factory(DataGenConfig::paper(10), 3);
        let mut produce = factory(&c, 0);
        assert!(produce(&c).is_some());
        assert!(produce(&c).is_some());
        assert!(produce(&c).is_some());
        assert!(produce(&c).is_none());
    }

    #[test]
    fn devices_get_different_streams() {
        let c = ctx();
        let factory = datagen_produce_factory(DataGenConfig::paper(10), 1);
        let b0 = (factory(&c, 0))(&c).unwrap();
        let b1 = (factory(&c, 1))(&c).unwrap();
        assert_ne!(b0.data, b1.data);
    }

    #[test]
    fn baseline_counts_points_without_scores() {
        let c = ctx();
        let mut f = baseline_factory()(&c);
        let out = f(&c, &block(50)).unwrap();
        assert!(out.scores.is_none());
        assert_eq!(c.counter("points_processed").get(), 50);
    }

    #[test]
    fn kmeans_processor_scores_and_publishes() {
        let c = ctx();
        let mut cfg = KMeansConfig::paper();
        cfg.features = 32;
        let mut f = kmeans_factory(cfg)(&c);
        let out = f(&c, &block(200)).unwrap();
        assert_eq!(out.scores.unwrap().len(), 200);
        // ~5% contamination flagged.
        assert!(out.outliers >= 5 && out.outliers <= 25, "{}", out.outliers);
        // Weights landed in the parameter server under the job key.
        assert!(c.params.get(&c.model_key()).is_some());
        // A ParamServer span was recorded.
        let report = c.metrics.report();
        assert!(report
            .component(&Component::ParamServer)
            .is_some_and(|s| s.count == 1));
    }

    #[test]
    fn isoforest_processor_runs_without_weights() {
        let c = ctx();
        let mut cfg = IsolationForestConfig::paper();
        cfg.n_trees = 20; // keep the test fast
        let mut f = isoforest_factory(cfg)(&c);
        let out = f(&c, &block(300)).unwrap();
        assert_eq!(out.scores.unwrap().len(), 300);
        assert!(c.params.get(&c.model_key()).is_none());
    }

    #[test]
    fn autoencoder_processor_trains_and_publishes() {
        let c = ctx();
        let mut f = autoencoder_factory(AutoEncoderConfig::paper())(&c);
        let out = f(&c, &block(100)).unwrap();
        assert_eq!(out.scores.unwrap().len(), 100);
        let (w, _) = c.params.get(&c.model_key()).unwrap();
        assert_eq!(w.len(), 11_552);
    }

    #[test]
    fn paper_model_factory_covers_all_kinds() {
        let c = ctx();
        for kind in ModelKind::all() {
            if kind == ModelKind::IsolationForest {
                continue; // covered above with a smaller forest
            }
            let mut f = paper_model_factory(kind, 32)(&c);
            assert!(f(&c, &block(50)).is_ok(), "{kind}");
        }
    }

    #[test]
    fn preprocessed_factory_runs_all_three_stages() {
        let c = ctx();
        let mut cfg = KMeansConfig::paper();
        cfg.features = 32;
        let mut f = preprocessed_model_factory(32, move || KMeans::new(cfg.clone()))(&c);
        let out = f(&c, &block(300)).unwrap();
        assert_eq!(out.scores.unwrap().len(), 300);
        // Model weights and scaler statistics both published.
        assert!(c.params.get(&c.model_key()).is_some());
        let (scaler_w, _) = c
            .params
            .get(&format!("{}:scaler", c.model_key()))
            .expect("scaler stats");
        assert_eq!(scaler_w.len(), 1 + 2 * 32);
        assert_eq!(scaler_w[0], 300.0, "scaler saw all points");
        // Second batch accumulates.
        f(&c, &block(300)).unwrap();
        let (scaler_w, _) = c.params.get(&format!("{}:scaler", c.model_key())).unwrap();
        assert_eq!(scaler_w[0], 600.0);
    }

    #[test]
    fn downsample_keeps_every_kth_point() {
        let c = ctx();
        let mut f = downsample_edge_factory(4)(&c, 0);
        let b = block(100);
        let out = f(&c, b.clone()).unwrap();
        assert_eq!(out.points, 25);
        assert_eq!(out.data.len(), 25 * 32);
        assert_eq!(&out.data[..32], b.point(0));
        assert_eq!(&out.data[32..64], b.point(4));
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let c = ctx();
        let mut f = downsample_edge_factory(1)(&c, 0);
        let b = block(10);
        assert_eq!(f(&c, b.clone()).unwrap(), b);
    }

    #[test]
    fn model_updates_stream_through_param_server() {
        let c = ctx();
        let mut cfg = KMeansConfig::paper();
        cfg.features = 32;
        let mut f = kmeans_factory(cfg)(&c);
        f(&c, &block(100)).unwrap();
        let (_, v1) = c.params.get(&c.model_key()).unwrap();
        f(&c, &block(100)).unwrap();
        let (_, v2) = c.params.get(&c.model_key()).unwrap();
        assert!(v2 > v1, "model version must advance per message");
    }
}
