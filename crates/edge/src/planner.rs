//! Analytic capacity planning.
//!
//! The paper closes: "These insights provide valuable input for system
//! design and deployment, allowing an optimal resource layout"
//! (Section V). This module turns the measured insights into a predictive
//! tool: a bottleneck model of the pipeline as a four-stage tandem queue
//! (producers → edge-link → broker → cloud-link → processors) that
//! predicts throughput, the binding constraint, and the zero-queueing
//! latency floor for a configuration *without running it* — then lets the
//! application size pilots and pick deployments before paying for them.
//!
//! The prediction is intentionally first-order (capacity = min over
//! stages; latency = sum of service times): exactly the arithmetic a
//! deployment engineer does on a whiteboard, now executable and testable
//! against the simulator (`tests/planner.rs` validates predictions against
//! measured runs).

use pilot_datagen::Codec;
use pilot_netsim::LinkSpec;

/// What the planner needs to know about a prospective deployment.
#[derive(Debug, Clone)]
pub struct PlannerInput {
    /// Edge devices (= partitions; each producer is serial).
    pub devices: usize,
    /// Points per message.
    pub points: usize,
    /// Features per point.
    pub features: usize,
    /// Wire codec.
    pub codec: Codec,
    /// Seconds one device needs to produce + serialize one message.
    pub produce_secs: f64,
    /// Seconds one processor needs for one message (decode + model).
    pub process_secs: f64,
    /// Cloud consumer tasks.
    pub processors: usize,
    /// Edge → broker link.
    pub link_edge_broker: LinkSpec,
    /// Broker → cloud link.
    pub link_broker_cloud: LinkSpec,
    /// Offered per-device rate (msgs/s); 0 = unthrottled.
    pub rate_per_device: f64,
    /// Broker copy bandwidth in bytes/s (in-memory append+fetch); the
    /// default models a memcpy-bound in-process broker.
    pub broker_bytes_per_sec: f64,
}

impl PlannerInput {
    /// Reasonable defaults for the paper's workload shape; override the
    /// cost fields with measurements for real planning.
    pub fn new(devices: usize, points: usize) -> Self {
        Self {
            devices,
            points,
            features: 32,
            codec: Codec::F64,
            produce_secs: 1e-4,
            process_secs: 1e-4,
            processors: devices,
            link_edge_broker: pilot_netsim::profiles::cloud_local("e->b", 0),
            link_broker_cloud: pilot_netsim::profiles::cloud_local("b->c", 0),
            rate_per_device: 0.0,
            broker_bytes_per_sec: 2e9,
        }
    }

    /// Serialized message size under the configured codec.
    pub fn message_bytes(&self) -> usize {
        self.codec.serialized_size(self.points, self.features)
    }
}

/// One stage's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCapacity {
    /// Stage label ("producers", "edge->broker link", ...).
    pub stage: String,
    /// Maximum sustainable messages/second through this stage.
    pub capacity_msgs: f64,
}

/// The planner's verdict.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Per-stage capacities, pipeline order.
    pub stages: Vec<StageCapacity>,
    /// Offered load (∞ represented as `f64::INFINITY` when unthrottled).
    pub offered_msgs: f64,
    /// Predicted pipeline throughput: min(offered, stage capacities).
    pub throughput_msgs: f64,
    /// Predicted throughput in MB/s.
    pub throughput_mb: f64,
    /// The binding constraint ("offered load" if the workload is the limit).
    pub bottleneck: String,
    /// Zero-queueing latency floor per message, milliseconds.
    pub latency_floor_ms: f64,
}

/// Predict throughput, bottleneck, and the latency floor for a deployment.
pub fn predict(input: &PlannerInput) -> Prediction {
    let msg_bytes = input.message_bytes() as f64;
    let msg_bits = msg_bytes * 8.0;
    let link_cap = |l: &LinkSpec| {
        let bw = (l.bw_min_bps + l.bw_max_bps) / 2.0;
        if bw.is_finite() && bw > 0.0 {
            bw / msg_bits
        } else {
            f64::INFINITY
        }
    };
    let stages = vec![
        StageCapacity {
            stage: "producers".into(),
            capacity_msgs: if input.produce_secs > 0.0 {
                input.devices as f64 / input.produce_secs
            } else {
                f64::INFINITY
            },
        },
        StageCapacity {
            stage: "edge->broker link".into(),
            capacity_msgs: link_cap(&input.link_edge_broker),
        },
        StageCapacity {
            stage: "broker".into(),
            capacity_msgs: if input.broker_bytes_per_sec > 0.0 {
                input.broker_bytes_per_sec / msg_bytes
            } else {
                f64::INFINITY
            },
        },
        StageCapacity {
            stage: "broker->cloud link".into(),
            capacity_msgs: link_cap(&input.link_broker_cloud),
        },
        StageCapacity {
            stage: "processors".into(),
            capacity_msgs: if input.process_secs > 0.0 {
                input.processors as f64 / input.process_secs
            } else {
                f64::INFINITY
            },
        },
    ];
    let offered = if input.rate_per_device > 0.0 {
        input.rate_per_device * input.devices as f64
    } else {
        f64::INFINITY
    };
    let (bottleneck, min_cap) = stages
        .iter()
        .map(|s| (s.stage.clone(), s.capacity_msgs))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("non-empty stages");
    let (throughput_msgs, bottleneck) = if offered < min_cap {
        (offered, "offered load".to_string())
    } else {
        (min_cap, bottleneck)
    };
    // Latency floor: serial service through every stage, plus propagation.
    let transit = |l: &LinkSpec| l.expected_secs(msg_bytes as u64);
    let latency_floor_ms = (input.produce_secs
        + transit(&input.link_edge_broker)
        + msg_bytes / input.broker_bytes_per_sec.max(1.0)
        + transit(&input.link_broker_cloud)
        + input.process_secs)
        * 1e3;
    Prediction {
        stages,
        offered_msgs: offered,
        throughput_msgs,
        throughput_mb: throughput_msgs * msg_bytes / 1e6,
        bottleneck,
        latency_floor_ms,
    }
}

/// Smallest processor count whose capacity exceeds the offered load with
/// `headroom` (e.g. 1.2 = 20% slack); `None` when the load is unbounded or
/// another stage caps throughput below the offered load anyway.
pub fn size_processors(input: &PlannerInput, headroom: f64) -> Option<usize> {
    if input.rate_per_device <= 0.0 || input.process_secs <= 0.0 {
        return None;
    }
    let offered = input.rate_per_device * input.devices as f64;
    // If a link/broker stage already caps below the offered load, more
    // processors cannot help.
    let mut probe = input.clone();
    probe.processors = usize::MAX;
    let p = predict(&probe);
    if p.throughput_msgs < offered {
        return None;
    }
    Some((offered * headroom * input.process_secs).ceil().max(1.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_netsim::profiles;

    #[test]
    fn wan_is_the_bottleneck_for_big_messages() {
        let mut input = PlannerInput::new(4, 10_000);
        input.link_edge_broker = profiles::transatlantic("wan", 0);
        let p = predict(&input);
        assert_eq!(p.bottleneck, "edge->broker link");
        // 80 Mbit/s mean over 2.56 MB messages ≈ 3.9 msgs/s.
        assert!(
            (p.throughput_msgs - 3.9).abs() < 0.3,
            "{}",
            p.throughput_msgs
        );
        assert!(p.latency_floor_ms > 70.0, "propagation floor");
    }

    #[test]
    fn slow_model_moves_bottleneck_to_processors() {
        let mut input = PlannerInput::new(4, 1_000);
        input.process_secs = 0.2; // auto-encoder-class cost
        let p = predict(&input);
        assert_eq!(p.bottleneck, "processors");
        assert!((p.throughput_msgs - 4.0 / 0.2).abs() < 1e-9);
    }

    #[test]
    fn throttled_load_caps_below_capacity() {
        let mut input = PlannerInput::new(2, 100);
        input.rate_per_device = 10.0;
        let p = predict(&input);
        assert_eq!(p.bottleneck, "offered load");
        assert_eq!(p.throughput_msgs, 20.0);
    }

    #[test]
    fn q16_codec_quadruples_wan_capacity() {
        let mut f64_in = PlannerInput::new(1, 5_000);
        f64_in.link_edge_broker = profiles::transatlantic("wan", 0);
        let mut q16_in = f64_in.clone();
        q16_in.codec = Codec::Q16;
        let pf = predict(&f64_in);
        let pq = predict(&q16_in);
        let ratio = pq.throughput_msgs / pf.throughput_msgs;
        assert!((3.5..=4.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn size_processors_matches_load() {
        let mut input = PlannerInput::new(4, 100);
        input.rate_per_device = 50.0; // 200 msgs/s offered
        input.process_secs = 0.01; // one processor sustains 100/s
                                   // 200 msgs/s * 1.2 headroom * 0.01 s = 2.4 → 3 processors.
        assert_eq!(size_processors(&input, 1.2), Some(3));
    }

    #[test]
    fn size_processors_refuses_link_bound_plans() {
        let mut input = PlannerInput::new(4, 10_000);
        input.link_edge_broker = profiles::transatlantic("wan", 0);
        input.rate_per_device = 100.0; // far above the ~4 msgs/s WAN cap
        input.process_secs = 0.001;
        assert_eq!(size_processors(&input, 1.2), None);
    }

    #[test]
    fn size_processors_none_when_unthrottled() {
        let input = PlannerInput::new(2, 100);
        assert_eq!(size_processors(&input, 1.2), None);
    }

    #[test]
    fn stage_list_is_pipeline_ordered() {
        let p = predict(&PlannerInput::new(1, 100));
        let names: Vec<&str> = p.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "producers",
                "edge->broker link",
                "broker",
                "broker->cloud link",
                "processors"
            ]
        );
    }
}
