//! Analytic capacity planning.
//!
//! The paper closes: "These insights provide valuable input for system
//! design and deployment, allowing an optimal resource layout"
//! (Section V). This module turns the measured insights into a predictive
//! tool: a bottleneck model of the pipeline as a four-stage tandem queue
//! (producers → edge-link → broker → cloud-link → processors) that
//! predicts throughput, the binding constraint, and the zero-queueing
//! latency floor for a configuration *without running it* — then lets the
//! application size pilots and pick deployments before paying for them.
//!
//! The prediction is intentionally first-order (capacity = min over
//! stages; latency = sum of service times): exactly the arithmetic a
//! deployment engineer does on a whiteboard, now executable and testable
//! against the simulator (`tests/planner.rs` validates predictions against
//! measured runs).

use crate::runtime::telemetry::{
    GAUGE_COMPUTE_POOL_OCCUPANCY, GAUGE_NET_BROKER_CLOUD_BUSY, GAUGE_NET_EDGE_BROKER_BUSY,
};
use pilot_datagen::Codec;
use pilot_metrics::TelemetryFrame;
use pilot_netsim::LinkSpec;

/// What the planner needs to know about a prospective deployment.
#[derive(Debug, Clone)]
pub struct PlannerInput {
    /// Edge devices (= partitions; each producer is serial).
    pub devices: usize,
    /// Points per message.
    pub points: usize,
    /// Features per point.
    pub features: usize,
    /// Wire codec.
    pub codec: Codec,
    /// Seconds one device needs to produce + serialize one message.
    pub produce_secs: f64,
    /// Seconds one processor needs for one message (decode + model).
    pub process_secs: f64,
    /// Cloud consumer tasks.
    pub processors: usize,
    /// Edge → broker link.
    pub link_edge_broker: LinkSpec,
    /// Broker → cloud link.
    pub link_broker_cloud: LinkSpec,
    /// Offered per-device rate (msgs/s); 0 = unthrottled.
    pub rate_per_device: f64,
    /// Broker copy bandwidth in bytes/s (in-memory append+fetch); the
    /// default models a memcpy-bound in-process broker.
    pub broker_bytes_per_sec: f64,
}

impl PlannerInput {
    /// Reasonable defaults for the paper's workload shape; override the
    /// cost fields with measurements for real planning.
    pub fn new(devices: usize, points: usize) -> Self {
        Self {
            devices,
            points,
            features: 32,
            codec: Codec::F64,
            produce_secs: 1e-4,
            process_secs: 1e-4,
            processors: devices,
            link_edge_broker: pilot_netsim::profiles::cloud_local("e->b", 0),
            link_broker_cloud: pilot_netsim::profiles::cloud_local("b->c", 0),
            rate_per_device: 0.0,
            broker_bytes_per_sec: 2e9,
        }
    }

    /// Serialized message size under the configured codec.
    pub fn message_bytes(&self) -> usize {
        self.codec.serialized_size(self.points, self.features)
    }
}

/// One stage's capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCapacity {
    /// Stage label ("producers", "edge->broker link", ...).
    pub stage: String,
    /// Maximum sustainable messages/second through this stage.
    pub capacity_msgs: f64,
}

/// The planner's verdict.
#[derive(Debug, Clone)]
pub struct Prediction {
    /// Per-stage capacities, pipeline order.
    pub stages: Vec<StageCapacity>,
    /// Offered load (∞ represented as `f64::INFINITY` when unthrottled).
    pub offered_msgs: f64,
    /// Predicted pipeline throughput: min(offered, stage capacities).
    pub throughput_msgs: f64,
    /// Predicted throughput in MB/s.
    pub throughput_mb: f64,
    /// The binding constraint ("offered load" if the workload is the limit).
    pub bottleneck: String,
    /// Zero-queueing latency floor per message, milliseconds.
    pub latency_floor_ms: f64,
}

/// Per-stage correction factors relating a [`Prediction`] to what the
/// telemetry plane actually measured. A factor above 1 means the stage ran
/// *busier* than the plan assumed (its real per-message cost is higher);
/// below 1, the plan was pessimistic. Stages without a measurable gauge
/// keep the identity factor 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// `(stage label, correction factor)`, aligned with
    /// [`Prediction::stages`] order.
    pub factors: Vec<(String, f64)>,
}

impl Calibration {
    /// The correction factor for `stage` (1.0 when unknown).
    pub fn factor(&self, stage: &str) -> f64 {
        self.factors
            .iter()
            .find(|(s, _)| s == stage)
            .map(|(_, f)| *f)
            .unwrap_or(1.0)
    }

    /// Whether every factor is the identity (the no-telemetry fallback).
    pub fn is_identity(&self) -> bool {
        self.factors.iter().all(|(_, f)| (*f - 1.0).abs() < 1e-12)
    }
}

impl Prediction {
    /// Correct this prediction against measured telemetry frames.
    ///
    /// For each stage with a measurable utilization gauge — the two links
    /// (cumulative `busy_us` delta over the frame window) and the
    /// processors (mean compute-pool occupancy as a busy-fraction proxy) —
    /// the factor is `measured utilization / predicted utilization`,
    /// clamped to `[0.25, 4.0]` so one noisy window cannot swing a plan by
    /// more than 4×. Producers and the broker have no utilization gauge
    /// and keep 1.0.
    ///
    /// **Fallback**: with fewer than two frames (telemetry off, or the run
    /// just started) every factor is 1.0 — calibration degrades to the
    /// uncorrected plan instead of guessing (pinned by
    /// `calibrate_without_telemetry_is_identity`).
    pub fn calibrate(&self, frames: &[TelemetryFrame]) -> Calibration {
        let identity = Calibration {
            factors: self.stages.iter().map(|s| (s.stage.clone(), 1.0)).collect(),
        };
        let (Some(first), Some(last)) = (frames.first(), frames.last()) else {
            return identity;
        };
        let dt_us = last.t_us.saturating_sub(first.t_us);
        if dt_us == 0 {
            return identity;
        }
        // Busy fraction of a cumulative-µs gauge over the frame window.
        let busy_frac = |name: &str| -> Option<f64> {
            let b0 = first.value(name)?;
            let b1 = last.value(name)?;
            Some(((b1 - b0).max(0) as f64 / dt_us as f64).clamp(0.0, 1.0))
        };
        let mean_gauge = |name: &str| -> Option<f64> {
            let mut sum = 0.0;
            let mut n = 0usize;
            for f in frames {
                if let Some(v) = f.value(name) {
                    sum += v as f64;
                    n += 1;
                }
            }
            (n > 0).then(|| sum / n as f64)
        };
        let factors = self
            .stages
            .iter()
            .map(|s| {
                let predicted = if s.capacity_msgs.is_finite() && s.capacity_msgs > 0.0 {
                    (self.throughput_msgs / s.capacity_msgs).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                let measured = match s.stage.as_str() {
                    "edge->broker link" => busy_frac(GAUGE_NET_EDGE_BROKER_BUSY),
                    "broker->cloud link" => busy_frac(GAUGE_NET_BROKER_CLOUD_BUSY),
                    "processors" => {
                        mean_gauge(GAUGE_COMPUTE_POOL_OCCUPANCY).map(|o| o.clamp(0.0, 1.0))
                    }
                    _ => None,
                };
                let factor = match measured {
                    Some(m) if predicted > 1e-9 => (m / predicted).clamp(0.25, 4.0),
                    _ => 1.0,
                };
                (s.stage.clone(), factor)
            })
            .collect();
        Calibration { factors }
    }
}

/// Predict throughput, bottleneck, and the latency floor for a deployment.
pub fn predict(input: &PlannerInput) -> Prediction {
    let msg_bytes = input.message_bytes() as f64;
    let msg_bits = msg_bytes * 8.0;
    let link_cap = |l: &LinkSpec| {
        let bw = (l.bw_min_bps + l.bw_max_bps) / 2.0;
        if bw.is_finite() && bw > 0.0 {
            bw / msg_bits
        } else {
            f64::INFINITY
        }
    };
    let stages = vec![
        StageCapacity {
            stage: "producers".into(),
            capacity_msgs: if input.produce_secs > 0.0 {
                input.devices as f64 / input.produce_secs
            } else {
                f64::INFINITY
            },
        },
        StageCapacity {
            stage: "edge->broker link".into(),
            capacity_msgs: link_cap(&input.link_edge_broker),
        },
        StageCapacity {
            stage: "broker".into(),
            capacity_msgs: if input.broker_bytes_per_sec > 0.0 {
                input.broker_bytes_per_sec / msg_bytes
            } else {
                f64::INFINITY
            },
        },
        StageCapacity {
            stage: "broker->cloud link".into(),
            capacity_msgs: link_cap(&input.link_broker_cloud),
        },
        StageCapacity {
            stage: "processors".into(),
            capacity_msgs: if input.process_secs > 0.0 {
                input.processors as f64 / input.process_secs
            } else {
                f64::INFINITY
            },
        },
    ];
    let offered = if input.rate_per_device > 0.0 {
        input.rate_per_device * input.devices as f64
    } else {
        f64::INFINITY
    };
    let (bottleneck, min_cap) = stages
        .iter()
        .map(|s| (s.stage.clone(), s.capacity_msgs))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("non-empty stages");
    let (throughput_msgs, bottleneck) = if offered < min_cap {
        (offered, "offered load".to_string())
    } else {
        (min_cap, bottleneck)
    };
    // Latency floor: serial service through every stage, plus propagation.
    let transit = |l: &LinkSpec| l.expected_secs(msg_bytes as u64);
    let latency_floor_ms = (input.produce_secs
        + transit(&input.link_edge_broker)
        + msg_bytes / input.broker_bytes_per_sec.max(1.0)
        + transit(&input.link_broker_cloud)
        + input.process_secs)
        * 1e3;
    Prediction {
        stages,
        offered_msgs: offered,
        throughput_msgs,
        throughput_mb: throughput_msgs * msg_bytes / 1e6,
        bottleneck,
        latency_floor_ms,
    }
}

/// Smallest processor count whose capacity exceeds the offered load with
/// `headroom` (e.g. 1.2 = 20% slack); `None` when the load is unbounded or
/// another stage caps throughput below the offered load anyway.
pub fn size_processors(input: &PlannerInput, headroom: f64) -> Option<usize> {
    if input.rate_per_device <= 0.0 || input.process_secs <= 0.0 {
        return None;
    }
    let offered = input.rate_per_device * input.devices as f64;
    // If a link/broker stage already caps below the offered load, more
    // processors cannot help.
    let mut probe = input.clone();
    probe.processors = usize::MAX;
    let p = predict(&probe);
    if p.throughput_msgs < offered {
        return None;
    }
    Some((offered * headroom * input.process_secs).ceil().max(1.0) as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_netsim::profiles;
    use std::sync::Arc;

    #[test]
    fn wan_is_the_bottleneck_for_big_messages() {
        let mut input = PlannerInput::new(4, 10_000);
        input.link_edge_broker = profiles::transatlantic("wan", 0);
        let p = predict(&input);
        assert_eq!(p.bottleneck, "edge->broker link");
        // 80 Mbit/s mean over 2.56 MB messages ≈ 3.9 msgs/s.
        assert!(
            (p.throughput_msgs - 3.9).abs() < 0.3,
            "{}",
            p.throughput_msgs
        );
        assert!(p.latency_floor_ms > 70.0, "propagation floor");
    }

    #[test]
    fn slow_model_moves_bottleneck_to_processors() {
        let mut input = PlannerInput::new(4, 1_000);
        input.process_secs = 0.2; // auto-encoder-class cost
        let p = predict(&input);
        assert_eq!(p.bottleneck, "processors");
        assert!((p.throughput_msgs - 4.0 / 0.2).abs() < 1e-9);
    }

    #[test]
    fn throttled_load_caps_below_capacity() {
        let mut input = PlannerInput::new(2, 100);
        input.rate_per_device = 10.0;
        let p = predict(&input);
        assert_eq!(p.bottleneck, "offered load");
        assert_eq!(p.throughput_msgs, 20.0);
    }

    #[test]
    fn q16_codec_quadruples_wan_capacity() {
        let mut f64_in = PlannerInput::new(1, 5_000);
        f64_in.link_edge_broker = profiles::transatlantic("wan", 0);
        let mut q16_in = f64_in.clone();
        q16_in.codec = Codec::Q16;
        let pf = predict(&f64_in);
        let pq = predict(&q16_in);
        let ratio = pq.throughput_msgs / pf.throughput_msgs;
        assert!((3.5..=4.5).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn size_processors_matches_load() {
        let mut input = PlannerInput::new(4, 100);
        input.rate_per_device = 50.0; // 200 msgs/s offered
        input.process_secs = 0.01; // one processor sustains 100/s
                                   // 200 msgs/s * 1.2 headroom * 0.01 s = 2.4 → 3 processors.
        assert_eq!(size_processors(&input, 1.2), Some(3));
    }

    #[test]
    fn size_processors_refuses_link_bound_plans() {
        let mut input = PlannerInput::new(4, 10_000);
        input.link_edge_broker = profiles::transatlantic("wan", 0);
        input.rate_per_device = 100.0; // far above the ~4 msgs/s WAN cap
        input.process_secs = 0.001;
        assert_eq!(size_processors(&input, 1.2), None);
    }

    #[test]
    fn size_processors_none_when_unthrottled() {
        let input = PlannerInput::new(2, 100);
        assert_eq!(size_processors(&input, 1.2), None);
    }

    #[test]
    fn calibrate_without_telemetry_is_identity() {
        // Telemetry off (no frames) or a single frame: calibration must
        // degrade to the uncorrected plan, factor 1.0 on every stage.
        let p = predict(&PlannerInput::new(4, 1_000));
        let c = p.calibrate(&[]);
        assert!(c.is_identity(), "{c:?}");
        assert_eq!(c.factors.len(), p.stages.len());
        let one = pilot_metrics::TelemetryFrame {
            t_us: 1_000,
            values: vec![("net.edge_broker.busy_us".into(), 500)],
        };
        assert!(p.calibrate(&[one]).is_identity());
        assert_eq!(p.calibrate(&[]).factor("processors"), 1.0);
        assert_eq!(p.calibrate(&[]).factor("no-such-stage"), 1.0);
    }

    #[test]
    fn calibrate_scales_link_factor_from_busy_delta() {
        // A link planned at ~50% utilization but measured 100% busy over
        // the window gets a factor of ~2 (its real per-byte cost is twice
        // the plan's).
        let mut input = PlannerInput::new(4, 10_000);
        input.link_edge_broker = profiles::transatlantic("wan", 0);
        input.rate_per_device = 0.5; // 2 msgs/s offered vs ~3.9 capacity
        let p = predict(&input);
        let frame = |t_us: u64, busy: i64| pilot_metrics::TelemetryFrame {
            t_us,
            values: vec![(Arc::from("net.edge_broker.busy_us"), busy)],
        };
        let frames = vec![frame(0, 0), frame(1_000_000, 1_000_000)];
        let c = p.calibrate(&frames);
        let predicted_util = p.throughput_msgs / p.stages[1].capacity_msgs;
        let expected = (1.0 / predicted_util).clamp(0.25, 4.0);
        let got = c.factor("edge->broker link");
        assert!((got - expected).abs() < 1e-9, "got {got}, want {expected}");
        // Unmeasured stages stay identity.
        assert_eq!(c.factor("producers"), 1.0);
        assert_eq!(c.factor("broker"), 1.0);
    }

    #[test]
    fn stage_list_is_pipeline_ordered() {
        let p = predict(&PlannerInput::new(1, 100));
        let names: Vec<&str> = p.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "producers",
                "edge->broker link",
                "broker",
                "broker->cloud link",
                "processors"
            ]
        );
    }
}
