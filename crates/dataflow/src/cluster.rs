//! The local cluster: worker threads + client API.

use crate::future::TaskFuture;
use crate::scheduler::Scheduler;
use crate::task::{Payload, Resources, TaskError, TaskId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Utilisation statistics for a cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterStats {
    /// Worker threads (cores).
    pub workers: usize,
    /// Total simulated memory.
    pub mem_total_gb: f64,
    /// Tasks finished (success + failure).
    pub finished: u64,
    /// Accumulated busy seconds across all workers.
    pub busy_secs: f64,
}

/// A pool of worker threads executing submitted tasks.
///
/// Mirrors `dask.distributed.LocalCluster`: `workers` threads of one core
/// each and a shared memory budget. Dropping the cluster cancels queued
/// tasks, waits for running ones, and joins the threads.
/// # Example
///
/// ```
/// use pilot_dataflow::LocalCluster;
///
/// let cluster = LocalCluster::new(2, 8.0); // 2 workers, 8 GB
/// let client = cluster.client();
/// let a = client.submit("a", || Ok(20_i64)).unwrap();
/// let b = client.submit("b", || Ok(22_i64)).unwrap();
/// let sum = a.wait_as::<i64>().unwrap() + b.wait_as::<i64>().unwrap();
/// assert_eq!(sum, 42);
/// ```
pub struct LocalCluster {
    sched: Arc<Scheduler>,
    workers: Vec<JoinHandle<()>>,
    mem_total_gb: f64,
    busy_ns: Arc<AtomicU64>,
}

impl LocalCluster {
    /// Start a cluster with `workers` single-core workers sharing
    /// `mem_total_gb` of simulated memory.
    pub fn new(workers: usize, mem_total_gb: f64) -> Self {
        assert!(workers > 0, "cluster needs at least one worker");
        let sched = Scheduler::new(mem_total_gb);
        let busy_ns = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|i| {
                let sched = Arc::clone(&sched);
                let busy = Arc::clone(&busy_ns);
                std::thread::Builder::new()
                    .name(format!("pilot-worker-{i}"))
                    .spawn(move || worker_loop(&sched, &busy))
                    .expect("spawn worker thread")
            })
            .collect();
        Self {
            sched,
            workers: handles,
            mem_total_gb,
            busy_ns,
        }
    }

    /// A client handle for submitting tasks. Cheap to clone.
    pub fn client(&self) -> Client {
        Client {
            sched: Arc::clone(&self.sched),
        }
    }

    /// Worker count.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Utilisation statistics.
    pub fn stats(&self) -> ClusterStats {
        ClusterStats {
            workers: self.workers.len(),
            mem_total_gb: self.mem_total_gb,
            finished: self.sched.state.lock().finished,
            busy_secs: self.busy_ns.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }

    /// Shut the cluster down: cancel queued work, join workers.
    pub fn shutdown(&mut self) {
        self.sched.shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for LocalCluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(sched: &Scheduler, busy_ns: &AtomicU64) {
    while let Some((id, closure, payloads, resources)) = sched.next_task() {
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| closure(&payloads)));
        busy_ns.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let result = match outcome {
            Ok(Ok(payload)) => Ok(payload),
            Ok(Err(msg)) => Err(TaskError::Failed(msg)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                Err(TaskError::Panicked(msg))
            }
        };
        sched.complete(id, result, resources);
    }
}

/// Handle for submitting tasks to a [`LocalCluster`].
#[derive(Clone)]
pub struct Client {
    sched: Arc<Scheduler>,
}

impl Client {
    /// Submit a task with no dependencies.
    pub fn submit<F, T>(&self, name: &str, f: F) -> Result<TaskFuture, TaskError>
    where
        F: FnOnce() -> Result<T, String> + Send + 'static,
        T: Send + Sync + 'static,
    {
        self.submit_full(name, Resources::default(), &[], move |_| {
            f().map(|v| Arc::new(v) as Payload)
        })
    }

    /// Submit a task with explicit resources and dependencies. The closure
    /// receives the dependency payloads in the order given.
    pub fn submit_full<F>(
        &self,
        name: &str,
        resources: Resources,
        deps: &[TaskId],
        f: F,
    ) -> Result<TaskFuture, TaskError>
    where
        F: FnOnce(&[Payload]) -> Result<Payload, String> + Send + 'static,
    {
        let id = self
            .sched
            .submit(name, resources, deps.to_vec(), Box::new(f))?;
        Ok(TaskFuture {
            id,
            sched: Arc::clone(&self.sched),
        })
    }

    /// Wait for all futures, collecting results in order.
    pub fn gather(&self, futures: &[TaskFuture]) -> Vec<crate::task::TaskResult> {
        futures.iter().map(|f| f.wait()).collect()
    }

    /// Submit a task that retries on failure (error return *or* panic):
    /// up to `attempts` tries with `backoff` sleeps in between, all inside
    /// one task slot. Dask-style fault tolerance for transient errors
    /// (paper Section I: applications must respond to "failures and other
    /// external events").
    pub fn submit_with_retry<F, T>(
        &self,
        name: &str,
        attempts: usize,
        backoff: std::time::Duration,
        f: F,
    ) -> Result<TaskFuture, TaskError>
    where
        F: Fn() -> Result<T, String> + Send + 'static,
        T: Send + Sync + 'static,
    {
        assert!(attempts >= 1, "attempts must be >= 1");
        self.submit_full(name, Resources::default(), &[], move |_| {
            let mut last_err = String::new();
            for attempt in 0..attempts {
                if attempt > 0 && !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
                match catch_unwind(AssertUnwindSafe(&f)) {
                    Ok(Ok(v)) => return Ok(Arc::new(v) as Payload),
                    Ok(Err(e)) => last_err = e,
                    Err(panic) => {
                        last_err = panic
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| panic.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "<non-string panic>".to_string());
                    }
                }
            }
            Err(format!("failed after {attempts} attempts: {last_err}"))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskState;
    use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};
    use std::time::Duration;

    #[test]
    fn submit_and_wait() {
        let cluster = LocalCluster::new(2, 8.0);
        let c = cluster.client();
        let f = c.submit("answer", || Ok(21 * 2)).unwrap();
        assert_eq!(f.wait_as::<i32>().unwrap(), 42);
        assert_eq!(f.state(), Some(TaskState::Done));
        assert_eq!(f.name().as_deref(), Some("answer"));
    }

    #[test]
    fn parallel_execution_uses_all_workers() {
        let cluster = LocalCluster::new(4, 8.0);
        let c = cluster.client();
        let start = Instant::now();
        let futures: Vec<_> = (0..4)
            .map(|i| {
                c.submit(&format!("sleep{i}"), || {
                    std::thread::sleep(Duration::from_millis(100));
                    Ok(())
                })
                .unwrap()
            })
            .collect();
        for f in &futures {
            f.wait().unwrap();
        }
        // 4 × 100 ms on 4 workers ≈ 100 ms, not 400 ms.
        assert!(start.elapsed() < Duration::from_millis(320));
    }

    #[test]
    fn dependencies_run_in_order_and_pass_payloads() {
        let cluster = LocalCluster::new(2, 8.0);
        let c = cluster.client();
        let a = c.submit("a", || Ok(10i64)).unwrap();
        let b = c
            .submit_full("b", Resources::default(), &[a.id()], |deps| {
                let x = *deps[0].downcast_ref::<i64>().unwrap();
                Ok(Arc::new(x * 3) as Payload)
            })
            .unwrap();
        assert_eq!(b.wait_as::<i64>().unwrap(), 30);
    }

    #[test]
    fn diamond_dependency_graph() {
        let cluster = LocalCluster::new(3, 8.0);
        let c = cluster.client();
        let a = c.submit("a", || Ok(1i64)).unwrap();
        let mk = |name: &str, mult: i64| {
            c.submit_full(name, Resources::default(), &[a.id()], move |deps| {
                let x = *deps[0].downcast_ref::<i64>().unwrap();
                Ok(Arc::new(x * mult) as Payload)
            })
            .unwrap()
        };
        let b = mk("b", 10);
        let d = mk("d", 100);
        let join = c
            .submit_full("join", Resources::default(), &[b.id(), d.id()], |deps| {
                let x = *deps[0].downcast_ref::<i64>().unwrap();
                let y = *deps[1].downcast_ref::<i64>().unwrap();
                Ok(Arc::new(x + y) as Payload)
            })
            .unwrap();
        assert_eq!(join.wait_as::<i64>().unwrap(), 110);
    }

    #[test]
    fn failure_propagates_to_dependents() {
        let cluster = LocalCluster::new(2, 8.0);
        let c = cluster.client();
        let bad = c
            .submit("bad", || -> Result<(), String> { Err("boom".into()) })
            .unwrap();
        let dep = c
            .submit_full("dep", Resources::default(), &[bad.id()], |_| {
                Ok(Arc::new(()) as Payload)
            })
            .unwrap();
        assert_eq!(bad.wait().unwrap_err(), TaskError::Failed("boom".into()));
        assert_eq!(dep.wait().unwrap_err(), TaskError::UpstreamFailed(bad.id()));
    }

    #[test]
    fn panic_is_captured_not_fatal() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let p = c
            .submit("panics", || -> Result<(), String> { panic!("kaput") })
            .unwrap();
        assert_eq!(p.wait().unwrap_err(), TaskError::Panicked("kaput".into()));
        // The worker survives and runs the next task.
        let ok = c.submit("ok", || Ok(5u8)).unwrap();
        assert_eq!(ok.wait_as::<u8>().unwrap(), 5);
    }

    #[test]
    fn memory_limit_serialises_big_tasks() {
        // Two 3 GB tasks on a 4 GB cluster with 2 workers must run one at
        // a time.
        let cluster = LocalCluster::new(2, 4.0);
        let c = cluster.client();
        let concurrent = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let futures: Vec<_> = (0..2)
            .map(|i| {
                let con = Arc::clone(&concurrent);
                let pk = Arc::clone(&peak);
                c.submit_full(
                    &format!("big{i}"),
                    Resources {
                        mem_gb: 3.0,
                        priority: 0,
                    },
                    &[],
                    move |_| {
                        let now = con.fetch_add(1, AtOrd::SeqCst) + 1;
                        pk.fetch_max(now, AtOrd::SeqCst);
                        std::thread::sleep(Duration::from_millis(50));
                        con.fetch_sub(1, AtOrd::SeqCst);
                        Ok(Arc::new(()) as Payload)
                    },
                )
                .unwrap()
            })
            .collect();
        for f in futures {
            f.wait().unwrap();
        }
        assert_eq!(peak.load(AtOrd::SeqCst), 1, "memory limit violated");
    }

    #[test]
    fn small_task_overtakes_blocked_big_task() {
        // One worker busy; a queued 100 GB task can never fit, but a tiny
        // task behind it must still run (no head-of-line blocking).
        let cluster = LocalCluster::new(1, 4.0);
        let c = cluster.client();
        let huge = c
            .submit_full(
                "huge",
                Resources {
                    mem_gb: 100.0,
                    priority: 0,
                },
                &[],
                |_| Ok(Arc::new(()) as Payload),
            )
            .unwrap();
        let tiny = c.submit("tiny", || Ok(1u8)).unwrap();
        assert_eq!(tiny.wait_as::<u8>().unwrap(), 1);
        assert!(!huge.is_finished());
    }

    #[test]
    fn wait_timeout_on_long_task() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let f = c
            .submit("slow", || {
                std::thread::sleep(Duration::from_millis(200));
                Ok(())
            })
            .unwrap();
        assert!(f.wait_timeout(Duration::from_millis(20)).is_none());
        assert!(f.wait_timeout(Duration::from_secs(5)).is_some());
    }

    #[test]
    fn shutdown_cancels_queued_tasks() {
        let mut cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let _running = c
            .submit("running", || {
                std::thread::sleep(Duration::from_millis(100));
                Ok(())
            })
            .unwrap();
        let queued = c
            .submit("queued", || {
                std::thread::sleep(Duration::from_secs(10));
                Ok(())
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(20)); // let `running` start
        cluster.shutdown();
        assert_eq!(queued.wait().unwrap_err(), TaskError::Cancelled);
    }

    #[test]
    fn submit_after_shutdown_fails() {
        let mut cluster = LocalCluster::new(1, 8.0);
        cluster.shutdown();
        let c = cluster.client();
        assert!(matches!(
            c.submit("late", || Ok(())),
            Err(TaskError::Cancelled)
        ));
    }

    #[test]
    fn unknown_dependency_rejected() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let bogus = TaskId(999);
        assert!(c
            .submit_full("x", Resources::default(), &[bogus], |_| {
                Ok(Arc::new(()) as Payload)
            })
            .is_err());
    }

    #[test]
    fn stats_track_completion_and_busy_time() {
        let cluster = LocalCluster::new(2, 8.0);
        let c = cluster.client();
        let futures: Vec<_> = (0..4)
            .map(|i| {
                c.submit(&format!("t{i}"), || {
                    std::thread::sleep(Duration::from_millis(20));
                    Ok(())
                })
                .unwrap()
            })
            .collect();
        for f in futures {
            f.wait().unwrap();
        }
        let s = cluster.stats();
        assert_eq!(s.finished, 4);
        assert!(s.busy_secs >= 0.07, "busy={}", s.busy_secs);
        assert_eq!(s.workers, 2);
    }

    #[test]
    fn gather_collects_in_order() {
        let cluster = LocalCluster::new(2, 8.0);
        let c = cluster.client();
        let futures: Vec<_> = (0..5)
            .map(|i| c.submit(&format!("t{i}"), move || Ok(i as i64)).unwrap())
            .collect();
        let results = c.gather(&futures);
        for (i, r) in results.iter().enumerate() {
            let v = r.as_ref().unwrap().downcast_ref::<i64>().copied().unwrap();
            assert_eq!(v, i as i64);
        }
    }

    #[test]
    fn dependency_on_already_finished_task() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let a = c.submit("a", || Ok(7i64)).unwrap();
        a.wait().unwrap();
        let b = c
            .submit_full("b", Resources::default(), &[a.id()], |deps| {
                let x = *deps[0].downcast_ref::<i64>().unwrap();
                Ok(Arc::new(x + 1) as Payload)
            })
            .unwrap();
        assert_eq!(b.wait_as::<i64>().unwrap(), 8);
    }

    #[test]
    fn realtime_priority_dispatches_first() {
        // One worker busy; queue a batch of normal tasks then one
        // real-time task. When the worker frees, the real-time task must
        // run before the earlier-queued normal ones.
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let order = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let _blocker = c
            .submit("blocker", || {
                std::thread::sleep(Duration::from_millis(60));
                Ok(())
            })
            .unwrap();
        std::thread::sleep(Duration::from_millis(10)); // blocker running
        let mut futures = Vec::new();
        for i in 0..3 {
            let order = Arc::clone(&order);
            futures.push(
                c.submit_full(&format!("normal{i}"), Resources::tiny(), &[], move |_| {
                    order.lock().push(format!("normal{i}"));
                    Ok(Arc::new(()) as Payload)
                })
                .unwrap(),
            );
        }
        let order2 = Arc::clone(&order);
        futures.push(
            c.submit_full("control", Resources::realtime(), &[], move |_| {
                order2.lock().push("control".into());
                Ok(Arc::new(()) as Payload)
            })
            .unwrap(),
        );
        for f in &futures {
            f.wait().unwrap();
        }
        assert_eq!(order.lock()[0], "control", "order: {:?}", order.lock());
    }

    #[test]
    fn retry_succeeds_on_transient_failure() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let tries = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&tries);
        let f = c
            .submit_with_retry("flaky", 5, Duration::ZERO, move || {
                if t2.fetch_add(1, AtOrd::SeqCst) < 2 {
                    Err("transient".into())
                } else {
                    Ok(99u32)
                }
            })
            .unwrap();
        assert_eq!(f.wait_as::<u32>().unwrap(), 99);
        assert_eq!(tries.load(AtOrd::SeqCst), 3);
    }

    #[test]
    fn retry_exhaustion_reports_last_error() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let f = c
            .submit_with_retry("always-bad", 3, Duration::ZERO, || {
                Err::<(), _>("nope".into())
            })
            .unwrap();
        let err = f.wait().unwrap_err();
        assert_eq!(
            err,
            TaskError::Failed("failed after 3 attempts: nope".into())
        );
    }

    #[test]
    fn retry_recovers_from_panics() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let tries = Arc::new(AtomicUsize::new(0));
        let t2 = Arc::clone(&tries);
        let f = c
            .submit_with_retry("panicky", 3, Duration::ZERO, move || {
                if t2.fetch_add(1, AtOrd::SeqCst) == 0 {
                    panic!("first try explodes");
                }
                Ok(7u8)
            })
            .unwrap();
        assert_eq!(f.wait_as::<u8>().unwrap(), 7);
    }

    #[test]
    fn dependency_on_already_failed_task() {
        let cluster = LocalCluster::new(1, 8.0);
        let c = cluster.client();
        let a = c
            .submit("a", || -> Result<(), String> { Err("nope".into()) })
            .unwrap();
        let _ = a.wait();
        let b = c
            .submit_full("b", Resources::default(), &[a.id()], |_| {
                Ok(Arc::new(()) as Payload)
            })
            .unwrap();
        assert_eq!(b.wait().unwrap_err(), TaskError::UpstreamFailed(a.id()));
    }
}
