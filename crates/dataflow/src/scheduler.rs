//! The dependency-aware scheduler shared between clients and workers.
//!
//! All state lives behind one mutex (`SchedState`); workers and futures park
//! on condition variables. At the scale the paper runs (tens of long-lived
//! tasks per pilot plus bursts of short ones) a single lock is far from
//! contended — simplicity wins over a lock-free design here, and the public
//! API would not change if the internals ever did.

use crate::task::{Payload, Resources, TaskError, TaskFn, TaskId, TaskResult, TaskState};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Duration;

pub(crate) struct TaskEntry {
    pub state: TaskState,
    pub closure: Option<TaskFn>,
    pub resources: Resources,
    pub deps: Vec<TaskId>,
    pub deps_remaining: usize,
    pub dependents: Vec<TaskId>,
    pub result: Option<TaskResult>,
    pub name: String,
}

pub(crate) struct SchedState {
    pub tasks: HashMap<TaskId, TaskEntry>,
    pub ready: VecDeque<TaskId>,
    pub next_id: u64,
    pub mem_free_gb: f64,
    pub shutdown: bool,
    /// Completed-task tally (successes + failures).
    pub finished: u64,
}

/// Shared scheduler handle.
pub(crate) struct Scheduler {
    pub state: Mutex<SchedState>,
    /// Workers park here waiting for runnable tasks.
    pub work_available: Condvar,
    /// Futures park here waiting for results.
    pub task_finished: Condvar,
}

impl Scheduler {
    pub fn new(mem_total_gb: f64) -> Arc<Self> {
        Arc::new(Self {
            state: Mutex::new(SchedState {
                tasks: HashMap::new(),
                ready: VecDeque::new(),
                next_id: 0,
                mem_free_gb: mem_total_gb,
                shutdown: false,
                finished: 0,
            }),
            work_available: Condvar::new(),
            task_finished: Condvar::new(),
        })
    }

    /// Register a task; returns its id. If its dependencies are already
    /// done it goes straight to the ready queue; if any dependency already
    /// failed it fails immediately.
    pub fn submit(
        &self,
        name: &str,
        resources: Resources,
        deps: Vec<TaskId>,
        closure: TaskFn,
    ) -> Result<TaskId, TaskError> {
        let mut st = self.state.lock();
        if st.shutdown {
            return Err(TaskError::Cancelled);
        }
        let id = TaskId(st.next_id);
        st.next_id += 1;

        let mut deps_remaining = 0;
        let mut failed_upstream = None;
        for &d in &deps {
            match st.tasks.get(&d) {
                None => {
                    return Err(TaskError::Failed(format!("unknown dependency {d}")));
                }
                Some(e) => match e.state {
                    TaskState::Done => {}
                    TaskState::Failed => failed_upstream = Some(d),
                    _ => deps_remaining += 1,
                },
            }
        }
        // Wire dependents while the lock is held.
        for &d in &deps {
            if let Some(e) = st.tasks.get_mut(&d) {
                if !matches!(e.state, TaskState::Done | TaskState::Failed) {
                    e.dependents.push(id);
                }
            }
        }
        let entry = TaskEntry {
            state: TaskState::Pending,
            closure: Some(closure),
            resources,
            deps,
            deps_remaining,
            dependents: Vec::new(),
            result: None,
            name: name.to_string(),
        };
        st.tasks.insert(id, entry);

        if let Some(up) = failed_upstream {
            self.finish_locked(&mut st, id, Err(TaskError::UpstreamFailed(up)));
        } else if deps_remaining == 0 {
            let e = st.tasks.get_mut(&id).expect("just inserted");
            e.state = TaskState::Ready;
            st.ready.push_back(id);
            self.work_available.notify_one();
        }
        Ok(id)
    }

    /// Worker side: block until a runnable task (deps met, memory fits) is
    /// available or shutdown. Returns the task id, its closure, its
    /// dependency payloads, and its reserved resources.
    pub fn next_task(&self) -> Option<(TaskId, TaskFn, Vec<Payload>, Resources)> {
        let mut st = self.state.lock();
        loop {
            // Among ready tasks whose memory fits, pick the highest
            // priority (FIFO within a priority level — the scan keeps the
            // first seen on ties).
            let mut picked: Option<(usize, TaskId, i32)> = None;
            for (qi, &id) in st.ready.iter().enumerate() {
                let res = st.tasks[&id].resources;
                if res.mem_gb <= st.mem_free_gb + 1e-9
                    && picked.is_none_or(|(_, _, p)| res.priority > p)
                {
                    picked = Some((qi, id, res.priority));
                }
            }
            let picked = picked.map(|(qi, id, _)| (qi, id));
            if let Some((qi, id)) = picked {
                st.ready.remove(qi);
                let deps: Vec<TaskId> = st.tasks[&id].deps.clone();
                let payloads: Vec<Payload> = deps
                    .iter()
                    .map(|d| {
                        st.tasks[d]
                            .result
                            .as_ref()
                            .expect("ready task has finished deps")
                            .as_ref()
                            .expect("ready task has successful deps")
                            .clone()
                    })
                    .collect();
                let e = st.tasks.get_mut(&id).expect("ready task exists");
                e.state = TaskState::Running;
                let closure = e.closure.take().expect("ready task has closure");
                let res = e.resources;
                st.mem_free_gb -= res.mem_gb;
                return Some((id, closure, payloads, res));
            }
            if st.shutdown {
                return None;
            }
            self.work_available.wait(&mut st);
        }
    }

    /// Worker side: record a task's result, release resources, release
    /// dependents.
    pub fn complete(&self, id: TaskId, result: TaskResult, resources: Resources) {
        let mut st = self.state.lock();
        st.mem_free_gb += resources.mem_gb;
        self.finish_locked(&mut st, id, result);
        // Released memory may unblock a queued task that did not fit.
        self.work_available.notify_all();
    }

    fn finish_locked(&self, st: &mut SchedState, id: TaskId, result: TaskResult) {
        let failed = result.is_err();
        let dependents = {
            let e = st.tasks.get_mut(&id).expect("finishing unknown task");
            e.state = if failed {
                TaskState::Failed
            } else {
                TaskState::Done
            };
            e.result = Some(result);
            std::mem::take(&mut e.dependents)
        };
        st.finished += 1;
        for dep in dependents {
            if failed {
                // Fail transitively (dependents of dependents too).
                self.finish_locked(st, dep, Err(TaskError::UpstreamFailed(id)));
            } else {
                let e = st.tasks.get_mut(&dep).expect("dependent exists");
                e.deps_remaining -= 1;
                if e.deps_remaining == 0 {
                    e.state = TaskState::Ready;
                    st.ready.push_back(dep);
                    self.work_available.notify_one();
                }
            }
        }
        self.task_finished.notify_all();
    }

    /// Future side: block until `id` finishes (or `timeout`); clones the
    /// result. `None` on timeout.
    pub fn wait(&self, id: TaskId, timeout: Option<Duration>) -> Option<TaskResult> {
        let mut st = self.state.lock();
        loop {
            if let Some(e) = st.tasks.get(&id) {
                if let Some(r) = &e.result {
                    return Some(r.clone());
                }
            } else {
                return Some(Err(TaskError::Failed(format!("unknown task {id}"))));
            }
            if st.shutdown {
                return Some(Err(TaskError::Cancelled));
            }
            match timeout {
                Some(t) => {
                    if self.task_finished.wait_for(&mut st, t).timed_out() {
                        return None;
                    }
                }
                None => self.task_finished.wait(&mut st),
            }
        }
    }

    /// Non-blocking state query.
    pub fn task_state(&self, id: TaskId) -> Option<TaskState> {
        self.state.lock().tasks.get(&id).map(|e| e.state)
    }

    /// The human-readable name a task was submitted with.
    pub fn task_name(&self, id: TaskId) -> Option<String> {
        self.state.lock().tasks.get(&id).map(|e| e.name.clone())
    }

    /// Begin shutdown: pending/ready tasks are cancelled; running tasks
    /// finish.
    pub fn shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        let ids: Vec<TaskId> = st.ready.drain(..).collect();
        for id in ids {
            self.finish_locked(&mut st, id, Err(TaskError::Cancelled));
        }
        // Pending tasks (deps never satisfiable now) are cancelled too.
        let pending: Vec<TaskId> = st
            .tasks
            .iter()
            .filter(|(_, e)| e.state == TaskState::Pending)
            .map(|(&id, _)| id)
            .collect();
        for id in pending {
            self.finish_locked(&mut st, id, Err(TaskError::Cancelled));
        }
        self.work_available.notify_all();
        self.task_finished.notify_all();
    }
}
