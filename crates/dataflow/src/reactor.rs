//! A small waker-based executor for polled state machines.
//!
//! The pilot abstraction multiplexes many small tasks onto a fixed resource
//! pool; after the fan-in scale-out the consumer side still burned one OS
//! thread per group member, each parked on a broker condvar. This module is
//! the structural fix: a [`LocalExecutor`] owns N worker threads and drives
//! an arbitrary number of [`ReactorTask`] state machines over them. A task
//! that cannot make progress returns [`ReactorPoll::Pending`] after handing
//! a [`Waker`] to whatever it is waiting on (broker readiness registration,
//! a link reservation deadline, a timer); the waker reschedules exactly that
//! task, so tens of thousands of idle members cost zero threads and zero
//! wakeups.
//!
//! The design follows the classic `Runnable` idiom (a run queue of
//! schedulable task cells, a per-task wake state machine) but is hand-rolled
//! on `std::task::Wake` — no async runtime, no futures, no `Pin`: tasks are
//! plain `poll(&mut self, &Waker)` objects, which keeps the broker and edge
//! state machines ordinary synchronous code.
//!
//! ## Task wake states
//!
//! Each spawned task lives in a `TaskCell` whose `state` word serializes the
//! race between wakers and workers:
//!
//! ```text
//!   IDLE ── wake ──▶ SCHEDULED ── worker pops ──▶ RUNNING ──┬─ Pending ─▶ IDLE
//!     ▲                                             │ wake  ├─ Ready ───▶ SCHEDULED
//!     └──────────── (no wake arrived) ◀─────────────┘       │
//!                                        NOTIFIED ◀─ wake ──┤
//!                                            │              └─ Complete ─▶ DONE
//!                                            └─▶ SCHEDULED (re-queued)
//! ```
//!
//! A wake during `RUNNING` parks in `NOTIFIED` and re-queues the task after
//! its poll returns — the lost-wakeup window between "poll found nothing"
//! and "task went idle" is closed by the compare-and-swap on `state`, not by
//! holding any lock across the poll.

use parking_lot::{Condvar, Mutex};
use std::collections::{BinaryHeap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Weak};
use std::task::{Wake, Waker};
use std::time::{Duration, Instant};

/// What a [`ReactorTask::poll`] observed.
pub enum ReactorPoll {
    /// No progress possible; the task registered its waker with whatever it
    /// is waiting on and must not be re-polled until woken.
    Pending,
    /// Progress was made and more work is immediately available: re-queue
    /// behind the other ready tasks (cooperative yield).
    Ready,
    /// No progress until (at latest) the given instant: go idle, but arm a
    /// timer so the task is re-polled even if no wake arrives. Used for
    /// poll-timeout fallbacks and simulated-link transfer deadlines.
    PendingUntil(Instant),
    /// The task is finished; the result is surfaced through its handle.
    Complete(Result<u64, String>),
}

/// A polled state machine drivable by a [`LocalExecutor`].
///
/// `poll` must be non-blocking: any wait is expressed by registering `waker`
/// with the event source and returning [`ReactorPoll::Pending`] (or
/// [`ReactorPoll::PendingUntil`] when a deadline bounds the wait).
pub trait ReactorTask: Send {
    fn poll(&mut self, waker: &Waker) -> ReactorPoll;
}

const IDLE: u8 = 0;
const SCHEDULED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// One spawned task: the state word, the task object, and its result slot.
struct TaskCell {
    name: String,
    state: AtomicU8,
    exec: Weak<ExecState>,
    /// The task itself; taken (dropped) on completion so held resources
    /// (consumers, channels) release as soon as the task finishes.
    inner: Mutex<Option<Box<dyn ReactorTask>>>,
    result: Mutex<Option<Result<u64, String>>>,
    done_cv: Condvar,
}

impl TaskCell {
    /// Wake-side state transition. Returns `true` when the caller must push
    /// the cell onto the ready queue (IDLE → SCHEDULED won the race);
    /// `false` when the task is already queued, running (NOTIFIED parked the
    /// wake), or done.
    fn try_schedule(&self) -> bool {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return true;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return false;
                    }
                }
                SCHEDULED | NOTIFIED | DONE => return false,
                _ => unreachable!("invalid reactor task state"),
            }
        }
    }

    fn schedule(self: &Arc<Self>) {
        if self.try_schedule() {
            if let Some(exec) = self.exec.upgrade() {
                exec.push_ready(Arc::clone(self));
            }
        }
    }
}

impl Wake for TaskCell {
    fn wake(self: Arc<Self>) {
        self.schedule();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.schedule();
    }
}

/// A timer entry: re-poll `cell` at `at`. Ordered as a min-heap on `at`
/// (ties broken by insertion sequence) inside the max-heap `BinaryHeap`.
struct Timer {
    at: Instant,
    seq: u64,
    cell: Arc<TaskCell>,
}

impl PartialEq for Timer {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Timer {}
impl PartialOrd for Timer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Timer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct RunQueue {
    ready: VecDeque<Arc<TaskCell>>,
    timers: BinaryHeap<Timer>,
    timer_seq: u64,
}

struct ExecState {
    queue: Mutex<RunQueue>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Instantaneous ready-queue depth (telemetry gauge source).
    ready_depth: AtomicI64,
    /// Cumulative microseconds spent inside task polls (telemetry).
    poll_us: AtomicU64,
    /// Cumulative number of polls executed.
    polls: AtomicU64,
    /// Every spawned task, for [`LocalExecutor::wake_all`]. Dead entries are
    /// pruned when the list doubles past its high-water mark — an amortized
    /// O(1) per spawn, so registering 64k members stays linear instead of
    /// re-sweeping the whole list on every spawn.
    tasks: Mutex<TaskRegistry>,
}

struct TaskRegistry {
    list: Vec<Weak<TaskCell>>,
    prune_at: usize,
}

impl TaskRegistry {
    fn prune(&mut self) {
        self.list
            .retain(|w| w.upgrade().is_some_and(|c| !is_done(&c)));
        self.prune_at = (self.list.len() * 2).max(64);
    }
}

impl ExecState {
    fn push_ready(&self, cell: Arc<TaskCell>) {
        let mut q = self.queue.lock();
        q.ready.push_back(cell);
        self.ready_depth.fetch_add(1, Ordering::Relaxed);
        drop(q);
        self.cv.notify_one();
    }
}

/// Handle to a spawned reactor task.
pub struct ReactorHandle {
    cell: Arc<TaskCell>,
}

impl ReactorHandle {
    /// Block until the task completes or the timeout elapses. Returns
    /// `None` on timeout; the task keeps running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<u64, String>> {
        let deadline = Instant::now() + timeout;
        let mut result = self.cell.result.lock();
        loop {
            if let Some(r) = result.as_ref() {
                return Some(r.clone());
            }
            let now = Instant::now();
            if now >= deadline
                || self
                    .cell
                    .done_cv
                    .wait_until(&mut result, deadline)
                    .timed_out()
            {
                return result.as_ref().cloned();
            }
        }
    }

    /// Whether the task has completed.
    pub fn is_finished(&self) -> bool {
        self.cell.state.load(Ordering::Acquire) == DONE
    }

    /// The name the task was spawned under.
    pub fn name(&self) -> &str {
        &self.cell.name
    }

    /// Re-schedule the task (e.g. after raising a stop flag it checks).
    pub fn wake(&self) {
        self.cell.schedule();
    }
}

/// A fixed pool of worker threads driving spawned [`ReactorTask`]s.
///
/// Thread count is fixed at construction and independent of the number of
/// spawned tasks: this is the property the consumer path's thread-count
/// acceptance test asserts.
pub struct LocalExecutor {
    shared: Arc<ExecState>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl LocalExecutor {
    /// Start an executor with `threads` worker threads (must be > 0).
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "a reactor needs at least one worker thread");
        let shared = Arc::new(ExecState {
            queue: Mutex::new(RunQueue {
                ready: VecDeque::new(),
                timers: BinaryHeap::new(),
                timer_seq: 0,
            }),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            ready_depth: AtomicI64::new(0),
            poll_us: AtomicU64::new(0),
            polls: AtomicU64::new(0),
            tasks: Mutex::new(TaskRegistry {
                list: Vec::new(),
                prune_at: 64,
            }),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("reactor-{i}"))
                    .spawn(move || worker(shared))
                    .expect("spawn reactor worker")
            })
            .collect();
        Self {
            shared,
            threads: Mutex::new(handles),
        }
    }

    /// Spawn a task; it is polled for the first time as soon as a worker is
    /// free. The handle observes completion; dropping it detaches the task.
    pub fn spawn(&self, name: &str, task: Box<dyn ReactorTask>) -> ReactorHandle {
        assert!(
            !self.shared.shutdown.load(Ordering::Acquire),
            "spawn on a shut-down reactor"
        );
        let cell = Arc::new(TaskCell {
            name: name.to_string(),
            state: AtomicU8::new(SCHEDULED),
            exec: Arc::downgrade(&self.shared),
            inner: Mutex::new(Some(task)),
            result: Mutex::new(None),
            done_cv: Condvar::new(),
        });
        {
            let mut tasks = self.shared.tasks.lock();
            if tasks.list.len() >= tasks.prune_at {
                tasks.prune();
            }
            tasks.list.push(Arc::downgrade(&cell));
        }
        self.shared.push_ready(Arc::clone(&cell));
        ReactorHandle { cell }
    }

    /// Schedule every live task for a poll. Used when raising an
    /// out-of-band flag (stop/abort) that tasks only observe inside `poll`.
    pub fn wake_all(&self) {
        let cells: Vec<Arc<TaskCell>> = {
            let mut tasks = self.shared.tasks.lock();
            tasks.prune();
            tasks.list.iter().filter_map(Weak::upgrade).collect()
        };
        for cell in cells {
            cell.schedule();
        }
    }

    /// Instantaneous ready-queue depth.
    pub fn ready_depth(&self) -> i64 {
        self.shared.ready_depth.load(Ordering::Relaxed)
    }

    /// Cumulative microseconds spent inside task polls.
    pub fn poll_time_us(&self) -> u64 {
        self.shared.poll_us.load(Ordering::Relaxed)
    }

    /// Cumulative number of polls executed.
    pub fn poll_count(&self) -> u64 {
        self.shared.polls.load(Ordering::Relaxed)
    }

    /// Number of worker threads.
    pub fn thread_count(&self) -> usize {
        self.threads.lock().len()
    }

    /// Stop the workers and join them. Unfinished tasks are abandoned in
    /// place (their handles time out); callers are expected to have driven
    /// tasks to completion (stop flag + [`LocalExecutor::wake_all`]) first.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.cv_broadcast();
        let mut threads = self.threads.lock();
        for t in threads.drain(..) {
            let _ = t.join();
        }
    }

    fn cv_broadcast(&self) {
        // Take the lock so a worker between its shutdown check and its
        // cv.wait cannot miss the notify.
        let _q = self.shared.queue.lock();
        self.shared.cv.notify_all();
    }
}

impl Drop for LocalExecutor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn is_done(cell: &TaskCell) -> bool {
    cell.state.load(Ordering::Acquire) == DONE
}

fn worker(shared: Arc<ExecState>) {
    loop {
        // Pop phase: fire due timers, take the next ready cell, or sleep
        // until the earliest timer / a notify.
        let cell = {
            let mut q = shared.queue.lock();
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                let now = Instant::now();
                while q.timers.peek().is_some_and(|t| t.at <= now) {
                    let t = q.timers.pop().expect("peeked timer");
                    if t.cell.try_schedule() {
                        q.ready.push_back(t.cell);
                        shared.ready_depth.fetch_add(1, Ordering::Relaxed);
                        // Another worker may be sleeping while we hold the
                        // only runnable work: hand the surplus over.
                        shared.cv.notify_one();
                    }
                }
                if let Some(c) = q.ready.pop_front() {
                    shared.ready_depth.fetch_sub(1, Ordering::Relaxed);
                    break c;
                }
                match q.timers.peek().map(|t| t.at) {
                    Some(at) => {
                        shared.cv.wait_until(&mut q, at);
                    }
                    None => shared.cv.wait(&mut q),
                }
            }
        };

        // Run phase: poll outside the queue lock.
        cell.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(&cell));
        let start = Instant::now();
        let polled = {
            let mut inner = cell.inner.lock();
            inner.as_mut().map(|task| task.poll(&waker))
        };
        shared
            .poll_us
            .fetch_add(start.elapsed().as_micros() as u64, Ordering::Relaxed);
        shared.polls.fetch_add(1, Ordering::Relaxed);

        match polled {
            None => {
                // Task object already gone (completed elsewhere): nothing
                // to do beyond marking done.
                cell.state.store(DONE, Ordering::Release);
            }
            Some(ReactorPoll::Ready) => {
                // Cooperative yield: overwrite a possible NOTIFIED — both
                // mean "queued again".
                cell.state.store(SCHEDULED, Ordering::Release);
                shared.push_ready(cell);
            }
            Some(ReactorPoll::Pending) => {
                if cell
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A wake arrived during the poll (NOTIFIED): the event
                    // may have landed after the poll's last look — re-queue.
                    cell.state.store(SCHEDULED, Ordering::Release);
                    shared.push_ready(cell);
                }
            }
            Some(ReactorPoll::PendingUntil(at)) => {
                if cell
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    let mut q = shared.queue.lock();
                    let seq = q.timer_seq;
                    q.timer_seq += 1;
                    q.timers.push(Timer {
                        at,
                        seq,
                        cell: Arc::clone(&cell),
                    });
                    drop(q);
                    // The new timer may be the earliest deadline; wake a
                    // sleeper so it re-computes its wait.
                    shared.cv.notify_one();
                } else {
                    // NOTIFIED raced: skip the timer, run now. A stale
                    // timer from an earlier cycle firing later is harmless:
                    // `try_schedule` on a queued/running task is a no-op,
                    // and on an idle one it causes one spurious poll.
                    cell.state.store(SCHEDULED, Ordering::Release);
                    shared.push_ready(cell);
                }
            }
            Some(ReactorPoll::Complete(res)) => {
                *cell.inner.lock() = None;
                let mut result = cell.result.lock();
                *result = Some(res);
                cell.state.store(DONE, Ordering::Release);
                cell.done_cv.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// Counts down `n` polls, yielding between each, then completes.
    struct CountDown {
        left: u64,
        polls: Arc<AtomicUsize>,
    }

    impl ReactorTask for CountDown {
        fn poll(&mut self, _waker: &Waker) -> ReactorPoll {
            self.polls.fetch_add(1, Ordering::SeqCst);
            if self.left == 0 {
                ReactorPoll::Complete(Ok(0))
            } else {
                self.left -= 1;
                ReactorPoll::Ready
            }
        }
    }

    #[test]
    fn tasks_complete_and_report_results() {
        let exec = LocalExecutor::new(2);
        let polls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..16)
            .map(|i| {
                exec.spawn(
                    &format!("t{i}"),
                    Box::new(CountDown {
                        left: 3,
                        polls: Arc::clone(&polls),
                    }),
                )
            })
            .collect();
        for h in &handles {
            assert_eq!(
                h.wait_timeout(Duration::from_secs(5)),
                Some(Ok(0)),
                "{} did not finish",
                h.name()
            );
            assert!(h.is_finished());
        }
        assert_eq!(polls.load(Ordering::SeqCst), 16 * 4);
        assert_eq!(exec.poll_count(), 16 * 4);
        assert_eq!(exec.ready_depth(), 0);
        assert_eq!(exec.thread_count(), 2);
    }

    /// Parks Pending until an external waker fires, then completes.
    struct WaitForFlag {
        flag: Arc<AtomicBool>,
        waker_slot: Arc<Mutex<Option<Waker>>>,
        polls: Arc<AtomicUsize>,
    }

    impl ReactorTask for WaitForFlag {
        fn poll(&mut self, waker: &Waker) -> ReactorPoll {
            self.polls.fetch_add(1, Ordering::SeqCst);
            if self.flag.load(Ordering::SeqCst) {
                ReactorPoll::Complete(Ok(1))
            } else {
                *self.waker_slot.lock() = Some(waker.clone());
                ReactorPoll::Pending
            }
        }
    }

    #[test]
    fn external_wake_resumes_a_pending_task() {
        let exec = LocalExecutor::new(1);
        let flag = Arc::new(AtomicBool::new(false));
        let slot: Arc<Mutex<Option<Waker>>> = Arc::new(Mutex::new(None));
        let polls = Arc::new(AtomicUsize::new(0));
        let h = exec.spawn(
            "waiter",
            Box::new(WaitForFlag {
                flag: Arc::clone(&flag),
                waker_slot: Arc::clone(&slot),
                polls: Arc::clone(&polls),
            }),
        );
        // First poll parks the task.
        let t = Instant::now();
        while slot.lock().is_none() {
            assert!(t.elapsed() < Duration::from_secs(5), "task never polled");
            std::thread::yield_now();
        }
        assert!(h.wait_timeout(Duration::from_millis(50)).is_none());
        // Raise the flag, then wake: exactly one more poll completes it.
        flag.store(true, Ordering::SeqCst);
        slot.lock().take().unwrap().wake();
        assert_eq!(h.wait_timeout(Duration::from_secs(5)), Some(Ok(1)));
        assert_eq!(polls.load(Ordering::SeqCst), 2);
    }

    /// Completes after its deadline passes, with no external wake at all.
    struct TimerOnly {
        deadline: Option<Instant>,
        delay: Duration,
    }

    impl ReactorTask for TimerOnly {
        fn poll(&mut self, _waker: &Waker) -> ReactorPoll {
            match self.deadline {
                None => {
                    let at = Instant::now() + self.delay;
                    self.deadline = Some(at);
                    ReactorPoll::PendingUntil(at)
                }
                Some(at) if Instant::now() >= at => ReactorPoll::Complete(Ok(2)),
                Some(at) => ReactorPoll::PendingUntil(at),
            }
        }
    }

    #[test]
    fn pending_until_fires_without_external_wakes() {
        let exec = LocalExecutor::new(1);
        let t = Instant::now();
        let h = exec.spawn(
            "timer",
            Box::new(TimerOnly {
                deadline: None,
                delay: Duration::from_millis(40),
            }),
        );
        assert_eq!(h.wait_timeout(Duration::from_secs(5)), Some(Ok(2)));
        let elapsed = t.elapsed();
        assert!(
            elapsed >= Duration::from_millis(40),
            "timer fired early: {elapsed:?}"
        );
    }

    #[test]
    fn wake_during_poll_requeues_instead_of_losing_the_event() {
        // The task spins inside poll until its waker has been fired by the
        // main thread; the NOTIFIED transition must re-queue it so the
        // post-wake state is observed by a second poll.
        struct SpinOnce {
            woken: Arc<AtomicBool>,
            phase: usize,
        }
        impl ReactorTask for SpinOnce {
            fn poll(&mut self, waker: &Waker) -> ReactorPoll {
                self.phase += 1;
                match self.phase {
                    1 => {
                        // Fire our own waker *while running*: must park in
                        // NOTIFIED and re-queue us after this poll returns.
                        waker.wake_by_ref();
                        self.woken.store(true, Ordering::SeqCst);
                        ReactorPoll::Pending
                    }
                    _ => ReactorPoll::Complete(Ok(self.phase as u64)),
                }
            }
        }
        let exec = LocalExecutor::new(1);
        let h = exec.spawn(
            "spin",
            Box::new(SpinOnce {
                woken: Arc::new(AtomicBool::new(false)),
                phase: 0,
            }),
        );
        // Completes only if the in-poll wake re-queued it (phase 2).
        assert_eq!(h.wait_timeout(Duration::from_secs(5)), Some(Ok(2)));
    }

    #[test]
    fn wake_all_reaches_idle_tasks() {
        let exec = LocalExecutor::new(2);
        let flag = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                exec.spawn(
                    &format!("w{i}"),
                    Box::new(WaitForFlag {
                        flag: Arc::clone(&flag),
                        waker_slot: Arc::new(Mutex::new(None)),
                        polls: Arc::new(AtomicUsize::new(0)),
                    }),
                )
            })
            .collect();
        std::thread::sleep(Duration::from_millis(30));
        flag.store(true, Ordering::SeqCst);
        exec.wake_all();
        for h in handles {
            assert_eq!(h.wait_timeout(Duration::from_secs(5)), Some(Ok(1)));
        }
    }

    #[test]
    fn errors_surface_through_the_handle() {
        struct Fails;
        impl ReactorTask for Fails {
            fn poll(&mut self, _w: &Waker) -> ReactorPoll {
                ReactorPoll::Complete(Err("boom".into()))
            }
        }
        let exec = LocalExecutor::new(1);
        let h = exec.spawn("fails", Box::new(Fails));
        assert_eq!(
            h.wait_timeout(Duration::from_secs(5)),
            Some(Err("boom".into()))
        );
    }
}
