//! Intra-task compute pool: scoped data parallelism inside one pilot task.
//!
//! [`LocalCluster`](crate::LocalCluster) models *inter*-task concurrency —
//! one worker thread per simulated core, each running a whole FaaS
//! invocation. This module adds the orthogonal *intra*-task axis: a cloud
//! pilot that owns many cores can fan a single model fit/score out across
//! them instead of leaving all but one idle (the paper's Fig. 3 bottleneck
//! is exactly such a single-threaded 100-tree refit). In the spirit of
//! game-engine task pools, the [`ComputePool`] keeps persistent worker
//! threads alive for the lifetime of the pilot, so the per-message hot path
//! pays no thread-spawn cost — publishing a scoped job is one mutex lock
//! and a condvar broadcast.
//!
//! Design rules:
//!
//! * **Scoped**: jobs borrow caller data. [`ComputePool::run`] blocks until
//!   every worker has finished the job, so non-`'static` borrows are sound.
//! * **Deterministic by construction**: the primitives only distribute
//!   *which thread* executes unit `i`; callers own unit granularity (fixed
//!   chunk boundaries) and merge order (by unit index). A pool of width 1
//!   and width N therefore produce bit-identical results for the same
//!   inputs — the property the ML kernels rely on.
//! * **Panic-safe**: a panicking unit is caught on the worker, the scope
//!   still joins, and the panic is re-raised on the caller — no deadlocks,
//!   no poisoned pool.
//!
//! Width 0/1 pools spawn no threads at all and execute inline; a simulated
//! 1-core edge device (the paper's Raspberry-Pi-class Dask task) keeps the
//! exact sequential behaviour for free.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Lifetime-erased pointer to the scoped job closure. Sound because
/// [`ComputePool::run`] does not return until every worker has dropped its
/// copy (tracked by the `finished` counter).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn() + Sync));

// SAFETY: the pointee is `Sync` (shared calls are fine) and outlives every
// worker's use of it because `run` joins the scope before returning.
unsafe impl Send for Job {}

impl Job {
    /// # Safety
    /// The caller must keep the pointee alive and unmoved until all workers
    /// have finished calling it.
    unsafe fn new(f: &(dyn Fn() + Sync)) -> Self {
        // Erase the borrow's lifetime; the join protocol reinstates it.
        Job(std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(f) as *const _)
    }

    fn call(&self) {
        // SAFETY: guaranteed live by the `run` join protocol.
        unsafe { (*self.0)() }
    }
}

/// State shared between the caller and the persistent workers.
struct State {
    /// Monotonic job counter; a changed epoch tells a worker a new job is
    /// published. Each worker runs each epoch exactly once.
    epoch: u64,
    /// The current job, valid while `finished < n_workers` for this epoch.
    job: Option<Job>,
    /// Workers that drain units this epoch (the live width minus the
    /// caller). Workers with a higher index check in without claiming any
    /// unit, so `finished == n_workers` still joins the scope after a
    /// resize.
    active: usize,
    /// Workers done with the current epoch.
    finished: usize,
    /// A worker's unit panicked during the current epoch.
    panicked: bool,
    /// Pool is being dropped.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers wait here for a new epoch.
    work_cv: Condvar,
    /// The caller waits here for `finished == n_workers`.
    done_cv: Condvar,
}

struct Inner {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    /// Serialises concurrent callers: one scoped job owns the workers at a
    /// time. The pool models the pilot's physical cores, so overlapping
    /// fan-outs from different tasks queue instead of oversubscribing.
    run_lock: Mutex<()>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// A pool of persistent worker threads executing scoped data-parallel jobs.
///
/// Cheap to share: wrap in an [`Arc`] and hand one clone to every model or
/// processor of the owning pilot. See the module docs for the determinism
/// contract.
pub struct ComputePool {
    /// `None` → capacity ≤ 1: no threads, inline execution.
    inner: Option<Inner>,
    /// Live parallel width ≤ `capacity`; jobs published after a
    /// [`ComputePool::set_width`] fan out over the new width.
    width: AtomicUsize,
    /// Workers spawned at construction (+1 for the caller). Fixed for the
    /// pool's lifetime; resizing only changes how many of them participate.
    capacity: usize,
    /// Callers currently inside [`ComputePool::run`] (inline path
    /// included) — the telemetry occupancy gauge. Queued callers waiting
    /// on the run lock count too: occupancy > 1 means the pool is the
    /// contended resource.
    active: AtomicUsize,
    /// Scoped jobs started since creation.
    jobs: AtomicU64,
}

impl std::fmt::Debug for ComputePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputePool")
            .field("threads", &self.threads())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl Default for ComputePool {
    fn default() -> Self {
        Self::sequential()
    }
}

impl ComputePool {
    /// A pool of total width `threads` (the caller participates, so
    /// `threads - 1` workers are spawned). `threads <= 1` spawns nothing
    /// and executes every job inline on the caller.
    pub fn new(threads: usize) -> Self {
        Self::resizable(threads, threads)
    }

    /// A pool that starts at width `threads` but can be resized live up to
    /// `max_threads` via [`ComputePool::set_width`]. All `max_threads - 1`
    /// workers are spawned up front; a resize only changes how many of them
    /// claim units per job, so the epoch join protocol (every spawned
    /// worker checks in once per job) is untouched and resizing is safe
    /// even while a job is being published. `max_threads <= 1` spawns
    /// nothing and executes inline, exactly like [`ComputePool::new`] with one thread.
    pub fn resizable(threads: usize, max_threads: usize) -> Self {
        let capacity = max_threads.max(threads).max(1);
        let width = threads.clamp(1, capacity);
        if capacity == 1 {
            return Self {
                inner: None,
                width: AtomicUsize::new(1),
                capacity,
                active: AtomicUsize::new(0),
                jobs: AtomicU64::new(0),
            };
        }
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                active: 0,
                finished: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let n_workers = capacity - 1;
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("compute-{i}"))
                    .spawn(move || worker_loop(&shared, n_workers, i))
                    .expect("spawn compute worker")
            })
            .collect();
        Self {
            inner: Some(Inner {
                shared,
                workers,
                run_lock: Mutex::new(()),
            }),
            width: AtomicUsize::new(width),
            capacity,
            active: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
        }
    }

    /// A width-1 pool: no threads, every job runs inline on the caller.
    pub fn sequential() -> Self {
        Self::new(1)
    }

    /// Total parallel width (participating worker threads + the caller).
    pub fn threads(&self) -> usize {
        self.width.load(Ordering::Relaxed)
    }

    /// The resize ceiling: `set_width` clamps into `1..=capacity()`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Set the live width, clamped into `1..=capacity()`; returns the
    /// effective width. Takes effect for the next published job — units
    /// claimed atomically within a running job keep their fixed chunk
    /// boundaries, so results stay bit-identical across any resize
    /// schedule (the module's determinism contract).
    pub fn set_width(&self, threads: usize) -> usize {
        let w = threads.clamp(1, self.capacity);
        self.width.store(w, Ordering::Relaxed);
        w
    }

    /// Callers currently inside (or queued on) [`ComputePool::run`]. 0 when
    /// idle, 1 while one task fans out, >1 when concurrent tasks contend
    /// for the pool — the level the telemetry sampler snapshots.
    pub fn occupancy(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Scoped jobs started since creation (a monotonic activity counter a
    /// sampler can differentiate into a job rate).
    pub fn jobs_started(&self) -> u64 {
        self.jobs.load(Ordering::Relaxed)
    }

    /// Execute `f(i)` for every `i in 0..n_units`, distributing units over
    /// the pool. Blocks until all units are done; the caller thread
    /// participates. Units are claimed atomically, so `f` must tolerate any
    /// execution order — determinism comes from keeping unit boundaries and
    /// merge order fixed, not from scheduling.
    ///
    /// Safe to call from several threads sharing one pool: concurrent jobs
    /// serialise (the pool is the pilot's core budget, so overlapping
    /// fan-outs queue rather than oversubscribe).
    ///
    /// If any unit panics the panic is re-raised here after the scope joins.
    pub fn run(&self, n_units: usize, f: impl Fn(usize) + Sync) {
        if n_units == 0 {
            return;
        }
        // Occupancy bracket around the whole call (queueing on the run
        // lock included), restored by a guard so a panicking unit cannot
        // leave the gauge stuck non-zero.
        self.active.fetch_add(1, Ordering::Relaxed);
        self.jobs.fetch_add(1, Ordering::Relaxed);
        let _occupancy = OccupancyGuard(&self.active);
        let next = AtomicUsize::new(0);
        let drain = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_units {
                break;
            }
            f(i);
        };
        let Some(inner) = &self.inner else {
            drain();
            return;
        };
        let n_workers = inner.workers.len();
        // One scoped job at a time: a second caller (another consumer task
        // sharing the pilot's pool) blocks here until the first job joins.
        // The lock guards no data (only exclusivity), so a caller that
        // panicked out of a previous job must not poison it for the rest.
        let _exclusive = inner
            .run_lock
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        // SAFETY: `drain` (and everything it borrows) stays alive and
        // unmoved until the join loop below observes all workers finished.
        let job = unsafe { Job::new(&drain) };
        {
            let mut st = inner.shared.state.lock().unwrap();
            st.epoch += 1;
            st.job = Some(job);
            // The live width is latched per job: workers beyond it check in
            // without draining, so a concurrent `set_width` affects the
            // next job, never a half-published one.
            st.active = (self.threads() - 1).min(n_workers);
            st.finished = 0;
            st.panicked = false;
            inner.shared.work_cv.notify_all();
        }
        // The caller is one of the pool's threads: drain units too.
        let caller_result = catch_unwind(AssertUnwindSafe(&drain));
        // Join the scope: all workers must check in before `drain` may drop.
        let mut st = inner.shared.state.lock().unwrap();
        while st.finished < n_workers {
            st = inner.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        let worker_panicked = st.panicked;
        drop(st);
        if let Err(payload) = caller_result {
            resume_unwind(payload);
        }
        if worker_panicked {
            panic!("compute pool job panicked on a worker thread");
        }
    }

    /// Map `f` over `0..n`, returning results in index order. Slots are
    /// written in place, so output order never depends on scheduling.
    pub fn map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let mut out: Vec<Option<T>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let slots = SendPtr(out.as_mut_ptr());
        // `move` so the closure captures the `SendPtr` wrapper, not the raw
        // pointer field (which is neither `Send` nor `Sync` on its own).
        self.run(n, move |i| {
            // SAFETY: each unit index is claimed exactly once, so writes to
            // `slots[i]` are disjoint; the Vec outlives the (joined) scope.
            unsafe { *slots.get().add(i) = Some(f(i)) };
        });
        out.into_iter()
            .map(|slot| slot.expect("every unit index runs exactly once"))
            .collect()
    }

    /// Split `data` into consecutive chunks of `chunk_len` (the last may be
    /// short) and run `f(chunk_index, chunk)` over them in parallel. Chunk
    /// boundaries depend only on `data.len()` and `chunk_len` — never on
    /// pool width — which is what keeps chunked kernels bit-deterministic.
    pub fn for_each_chunk_mut<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk_len must be > 0");
        let len = data.len();
        let n_chunks = len.div_ceil(chunk_len);
        let base = SendPtr(data.as_mut_ptr());
        self.run(n_chunks, move |ci| {
            let start = ci * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: chunks [start, end) are pairwise disjoint across unit
            // indices and in bounds; `data` outlives the joined scope.
            let slice =
                unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
            f(ci, slice);
        });
    }
}

/// Decrements the pool's active count on drop (normal return or unwind).
struct OccupancyGuard<'a>(&'a AtomicUsize);

impl Drop for OccupancyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Raw pointer wrapper shared by scoped jobs. Soundness of each use is
/// argued at the call site (disjoint per-unit access + scope join).
struct SendPtr<T>(*mut T);

unsafe impl<T> Sync for SendPtr<T> {}
unsafe impl<T> Send for SendPtr<T> {}

impl<T> SendPtr<T> {
    /// Accessor instead of direct field reads: closures touching `.0` would
    /// capture the bare raw pointer (edition-2021 disjoint capture) and lose
    /// the wrapper's `Send + Sync`.
    fn get(&self) -> *mut T {
        self.0
    }
}

fn worker_loop(shared: &Shared, n_workers: usize, idx: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    // Workers outside the epoch's live width check in
                    // immediately: the scope join still counts every
                    // spawned worker, so resizing can never deadlock it.
                    break (st.active > idx).then(|| st.job.expect("job published with epoch"));
                }
                st = shared.work_cv.wait(st).unwrap();
            }
        };
        let result = match &job {
            Some(job) => catch_unwind(AssertUnwindSafe(|| job.call())),
            None => Ok(()),
        };
        let mut st = shared.state.lock().unwrap();
        if result.is_err() {
            st.panicked = true;
        }
        st.finished += 1;
        if st.finished == n_workers {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn sequential_pool_runs_inline() {
        let pool = ComputePool::sequential();
        assert_eq!(pool.threads(), 1);
        let caller = std::thread::current().id();
        let mut same_thread = true;
        let flag = Mutex::new(&mut same_thread);
        pool.run(8, |_| {
            if std::thread::current().id() != caller {
                **flag.lock().unwrap() = false;
            }
        });
        assert!(same_thread);
    }

    #[test]
    fn zero_width_behaves_like_sequential() {
        let pool = ComputePool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.map(3, |i| i * 2), vec![0, 2, 4]);
    }

    #[test]
    fn run_covers_every_unit_exactly_once() {
        let pool = ComputePool::new(4);
        let n = 10_000;
        let hits: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        pool.run(n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn map_preserves_index_order() {
        for width in [1, 2, 4, 7] {
            let pool = ComputePool::new(width);
            let out = pool.map(1000, |i| i as u64 * 3 + 1);
            let expect: Vec<u64> = (0..1000).map(|i| i * 3 + 1).collect();
            assert_eq!(out, expect, "width={width}");
        }
    }

    #[test]
    fn chunks_are_fixed_and_disjoint() {
        for width in [1, 3, 8] {
            let pool = ComputePool::new(width);
            let mut data = vec![0u32; 103];
            pool.for_each_chunk_mut(&mut data, 10, |ci, chunk| {
                assert!(chunk.len() == 10 || (ci == 10 && chunk.len() == 3));
                for v in chunk.iter_mut() {
                    *v += 1 + ci as u32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, 1 + (i / 10) as u32, "width={width} i={i}");
            }
        }
    }

    #[test]
    fn empty_job_is_noop() {
        let pool = ComputePool::new(4);
        pool.run(0, |_| panic!("no units"));
        assert!(pool.map(0, |_| 0u8).is_empty());
        pool.for_each_chunk_mut(&mut [0u8; 0], 4, |_, _| panic!("no chunks"));
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = ComputePool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(64, |i| {
                if i == 13 {
                    panic!("unit 13 exploded");
                }
            });
        }));
        assert!(result.is_err());
        // The pool must still work after the panic.
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn borrows_caller_state() {
        let pool = ComputePool::new(3);
        let input: Vec<u64> = (0..512).collect();
        let sum: u64 = pool
            .map(8, |ci| input[ci * 64..(ci + 1) * 64].iter().sum::<u64>())
            .into_iter()
            .sum();
        assert_eq!(sum, (0..512).sum::<u64>());
    }

    #[test]
    fn back_to_back_jobs_reuse_workers() {
        let pool = ComputePool::new(4);
        for round in 0..100 {
            let out = pool.map(16, move |i| i + round);
            assert_eq!(out[0], round);
            assert_eq!(out[15], 15 + round);
        }
    }

    #[test]
    fn concurrent_callers_share_one_pool() {
        // Two tasks of the same pilot fan out through one shared pool:
        // jobs serialise, results stay correct for both callers.
        let pool = Arc::new(ComputePool::new(4));
        let handles: Vec<_> = (0..3)
            .map(|t| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || {
                    for round in 0..50u64 {
                        let out = pool.map(32, move |i| i as u64 + round * 1000 + t * 100_000);
                        for (i, v) in out.iter().enumerate() {
                            assert_eq!(*v, i as u64 + round * 1000 + t * 100_000);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn width_reporting() {
        assert_eq!(ComputePool::new(6).threads(), 6);
        assert_eq!(ComputePool::default().threads(), 1);
        assert_eq!(ComputePool::new(6).capacity(), 6);
    }

    #[test]
    fn set_width_clamps_to_capacity() {
        let pool = ComputePool::resizable(2, 4);
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.capacity(), 4);
        assert_eq!(pool.set_width(9), 4);
        assert_eq!(pool.threads(), 4);
        assert_eq!(pool.set_width(0), 1);
        assert_eq!(pool.threads(), 1);
        // A fixed pool clamps to its construction width.
        let fixed = ComputePool::new(3);
        assert_eq!(fixed.set_width(16), 3);
    }

    #[test]
    fn inline_pool_ignores_resize() {
        let pool = ComputePool::resizable(1, 1);
        assert_eq!(pool.set_width(8), 1);
        assert_eq!(pool.map(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn results_identical_across_live_resizes() {
        // The determinism contract under resize: the same chunked kernel
        // produces bit-identical output at every width, including widths
        // changed between (and raced with) jobs.
        let pool = ComputePool::resizable(1, 8);
        let expect: Vec<u64> = (0..1000).map(|i| i * 7 + 3).collect();
        for width in [1, 4, 8, 2, 5, 1, 8] {
            pool.set_width(width);
            assert_eq!(
                pool.map(1000, |i| i as u64 * 7 + 3),
                expect,
                "width={width}"
            );
        }
        let mut data = vec![0u32; 103];
        pool.set_width(3);
        pool.for_each_chunk_mut(&mut data, 10, |ci, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + ci as u32;
            }
        });
        for (i, v) in data.iter().enumerate() {
            assert_eq!(*v, 1 + (i / 10) as u32);
        }
    }

    #[test]
    fn resized_down_pool_still_joins_every_job() {
        // Shrinking to width 1 parks all workers but each job must still
        // join (all spawned workers check in per epoch).
        let pool = ComputePool::resizable(4, 4);
        pool.set_width(1);
        for round in 0..50u64 {
            let out = pool.map(16, move |i| i as u64 + round);
            assert_eq!(out[0], round);
        }
        pool.set_width(4);
        assert_eq!(pool.map(4, |i| i), vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_resize_and_run() {
        let pool = Arc::new(ComputePool::resizable(2, 8));
        let stop = Arc::new(AtomicUsize::new(0));
        let resizer = {
            let (pool, stop) = (Arc::clone(&pool), Arc::clone(&stop));
            std::thread::spawn(move || {
                let mut w = 1;
                while stop.load(Ordering::Relaxed) == 0 {
                    w = w % 8 + 1;
                    pool.set_width(w);
                    std::thread::yield_now();
                }
            })
        };
        for round in 0..300u64 {
            let out = pool.map(64, move |i| i as u64 * 3 + round);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i as u64 * 3 + round);
            }
        }
        stop.store(1, Ordering::Relaxed);
        resizer.join().unwrap();
    }

    #[test]
    fn occupancy_tracks_running_jobs() {
        for width in [1, 4] {
            let pool = Arc::new(ComputePool::new(width));
            assert_eq!(pool.occupancy(), 0, "width={width}");
            let seen = Arc::new(AtomicUsize::new(0));
            let (pool2, seen2) = (Arc::clone(&pool), Arc::clone(&seen));
            pool.run(8, |_| {
                // Sampled from inside the job: the pool is occupied.
                seen2.fetch_max(pool2.occupancy(), Ordering::Relaxed);
            });
            assert_eq!(seen.load(Ordering::Relaxed), 1, "width={width}");
            assert_eq!(pool.occupancy(), 0, "width={width}");
            assert_eq!(pool.jobs_started(), 1, "width={width}");
        }
    }

    #[test]
    fn occupancy_recovers_after_panic() {
        let pool = ComputePool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
        assert_eq!(pool.occupancy(), 0, "guard must restore the gauge");
    }

    #[test]
    fn concurrent_callers_raise_occupancy() {
        let pool = Arc::new(ComputePool::new(2));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let (pool, peak) = (Arc::clone(&pool), Arc::clone(&peak));
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        let p2 = Arc::clone(&pool);
                        let peak = Arc::clone(&peak);
                        pool.run(4, move |_| {
                            peak.fetch_max(p2.occupancy(), Ordering::Relaxed);
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // With 3 callers racing, at least once two were in run() at the
        // same time (one running, one queued on the run lock).
        assert!(peak.load(Ordering::Relaxed) >= 2);
        assert_eq!(pool.occupancy(), 0);
        assert_eq!(pool.jobs_started(), 600);
    }
}
