//! # pilot-dataflow — a Dask-style task executor
//!
//! Pilot-Edge executes its FaaS tasks "using a managed Dask cluster on the
//! specified location" (paper Section II-B): every pilot hosts a cluster of
//! slot-accounted workers, and the framework maps function invocations onto
//! them — e.g. "the edge devices are simulated with a Dask task, allocating
//! one core and about 4 GB of memory, comparable to a current Raspberry Pi"
//! (Section III.1). Dask is a Python system, so this crate implements the
//! execution semantics the paper relies on, from scratch:
//!
//! * [`LocalCluster`] — a pool of worker threads (one core each, matching
//!   Dask's one-thread-per-core worker processes) with cluster-level memory
//!   accounting: a task declaring `mem_gb` is only dispatched when that
//!   much simulated memory is free.
//! * [`Client::submit`] — submit closures with optional dependencies; the
//!   dependency-aware [`scheduler`] releases a task only when all of its
//!   inputs are done, and fails dependents transitively when an upstream
//!   task fails (Dask's error propagation).
//! * [`ComputePool`] — the orthogonal *intra*-task axis: persistent scoped
//!   worker threads that fan one hot kernel (a model fit/score) out across
//!   the cores a single cloud pilot owns, with deterministic chunked
//!   primitives (see [`pool`]).
//! * [`LocalExecutor`] — the *event-driven* axis: a fixed pool of reactor
//!   threads driving waker-based [`ReactorTask`] state machines, so tens of
//!   thousands of mostly-idle consumers cost N threads, not N×threads (see
//!   [`reactor`]).
//! * [`TaskFuture`] — blocking handles to results (`wait`, `wait_timeout`),
//!   with panics inside tasks captured as [`TaskError::Panicked`] instead of
//!   tearing down the worker — fault isolation the pipeline's
//!   failure-injection tests rely on.
//!
//! What is deliberately *not* reproduced from Dask: data locality heuristics
//! and work stealing between remote workers — the paper's workloads pin one
//! long-running consumer task per partition, so placement is trivial and
//! those mechanisms would never fire.

pub mod cluster;
pub mod future;
pub mod pool;
pub mod reactor;
pub mod scheduler;
pub mod task;

pub use cluster::{Client, ClusterStats, LocalCluster};
pub use future::TaskFuture;
pub use pool::ComputePool;
pub use reactor::{LocalExecutor, ReactorHandle, ReactorPoll, ReactorTask};
pub use task::{Payload, Resources, TaskError, TaskId, TaskState};
