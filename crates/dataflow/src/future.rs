//! Blocking result handles.

use crate::scheduler::Scheduler;
use crate::task::{TaskId, TaskResult, TaskState};
use std::sync::Arc;
use std::time::Duration;

/// A handle to a submitted task's eventual result.
///
/// Cloneable; all clones observe the same result.
#[derive(Clone)]
pub struct TaskFuture {
    pub(crate) id: TaskId,
    pub(crate) sched: Arc<Scheduler>,
}

impl TaskFuture {
    /// The task's id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// Current state, if the task is known.
    pub fn state(&self) -> Option<TaskState> {
        self.sched.task_state(self.id)
    }

    /// The name the task was submitted with.
    pub fn name(&self) -> Option<String> {
        self.sched.task_name(self.id)
    }

    /// Block until the task finishes; returns its result.
    pub fn wait(&self) -> TaskResult {
        self.sched
            .wait(self.id, None)
            .expect("untimed wait cannot time out")
    }

    /// Block up to `timeout`; `None` if still running.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<TaskResult> {
        self.sched.wait(self.id, Some(timeout))
    }

    /// Convenience: wait and downcast the payload to `T`.
    /// Returns `Err` on task failure or type mismatch.
    pub fn wait_as<T: 'static + Send + Sync + Clone>(&self) -> Result<T, String> {
        let payload = self.wait().map_err(|e| e.to_string())?;
        payload
            .downcast_ref::<T>()
            .cloned()
            .ok_or_else(|| format!("payload of {} has unexpected type", self.id))
    }

    /// True once the task reached a terminal state.
    pub fn is_finished(&self) -> bool {
        matches!(
            self.state(),
            Some(TaskState::Done) | Some(TaskState::Failed)
        )
    }
}

impl std::fmt::Debug for TaskFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskFuture")
            .field("id", &self.id)
            .field("state", &self.state())
            .finish()
    }
}
