//! Task primitives: ids, states, resources, errors, payloads.

use std::any::Any;
use std::sync::Arc;

/// Opaque task identifier, unique within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub(crate) u64);

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "task#{}", self.0)
    }
}

/// Lifecycle of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting on dependencies.
    Pending,
    /// Dependencies met; queued for a worker.
    Ready,
    /// Executing on a worker.
    Running,
    /// Finished successfully.
    Done,
    /// Finished with an error (see the stored [`TaskError`]).
    Failed,
}

/// Resources a task occupies while running. Each worker thread provides one
/// core; memory is accounted at cluster level.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resources {
    /// Simulated memory in GB. The paper's simulated edge device reserves
    /// ~4 GB ("comparable to a current Raspberry Pi").
    pub mem_gb: f64,
    /// Dispatch priority. IoT workloads mix "real-time tasks for control
    /// and steering and long-running tasks" (paper Section I); among ready
    /// tasks, higher priority dispatches first (no preemption).
    pub priority: i32,
}

impl Resources {
    /// A task with negligible memory needs.
    pub fn tiny() -> Self {
        Self {
            mem_gb: 0.0,
            priority: 0,
        }
    }

    /// The paper's simulated edge device: 4 GB.
    pub fn edge_device() -> Self {
        Self {
            mem_gb: 4.0,
            priority: 0,
        }
    }

    /// A real-time control/steering task: dispatched ahead of normal work.
    pub fn realtime() -> Self {
        Self {
            mem_gb: 0.0,
            priority: 100,
        }
    }

    /// Builder: set the priority.
    pub fn with_priority(mut self, priority: i32) -> Self {
        self.priority = priority;
        self
    }
}

impl Default for Resources {
    fn default() -> Self {
        Self::tiny()
    }
}

/// Type-erased task output, shared between the task and all dependents.
pub type Payload = Arc<dyn Any + Send + Sync>;

/// Why a task failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError {
    /// The task closure returned an error.
    Failed(String),
    /// The task closure panicked; the message is the panic payload.
    Panicked(String),
    /// An upstream dependency failed, so this task never ran.
    UpstreamFailed(TaskId),
    /// The cluster shut down before the task could run.
    Cancelled,
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Failed(msg) => write!(f, "task failed: {msg}"),
            TaskError::Panicked(msg) => write!(f, "task panicked: {msg}"),
            TaskError::UpstreamFailed(id) => write!(f, "upstream {id} failed"),
            TaskError::Cancelled => write!(f, "cancelled (cluster shut down)"),
        }
    }
}

impl std::error::Error for TaskError {}

/// Result of a finished task.
pub type TaskResult = Result<Payload, TaskError>;

/// The closure signature tasks run: receives its dependencies' payloads in
/// submission order.
pub type TaskFn = Box<dyn FnOnce(&[Payload]) -> Result<Payload, String> + Send>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TaskId(7).to_string(), "task#7");
        assert_eq!(
            TaskError::Failed("boom".into()).to_string(),
            "task failed: boom"
        );
        assert_eq!(
            TaskError::UpstreamFailed(TaskId(3)).to_string(),
            "upstream task#3 failed"
        );
    }

    #[test]
    fn resources_presets() {
        assert_eq!(Resources::tiny().mem_gb, 0.0);
        assert_eq!(Resources::edge_device().mem_gb, 4.0);
        assert_eq!(Resources::default(), Resources::tiny());
        assert!(Resources::realtime().priority > Resources::tiny().priority);
        assert_eq!(Resources::tiny().with_priority(-5).priority, -5);
    }

    #[test]
    fn payload_downcast() {
        let p: Payload = Arc::new(42i64);
        assert_eq!(*p.downcast_ref::<i64>().unwrap(), 42);
        assert!(p.downcast_ref::<String>().is_none());
    }
}
