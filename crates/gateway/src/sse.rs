//! Server-Sent Events framing (the `text/event-stream` wire format).
//!
//! An SSE response is a close-delimited stream of events, each a block of
//! `field: value` lines terminated by a blank line. Multi-line data is
//! split into one `data:` line per line, per the spec, so payloads with
//! embedded newlines survive the framing.

use std::io::{self, Write};

/// Write one SSE event: an optional `event:` name and the `data:` payload
/// (split across lines if it contains newlines), then flush so the client
/// sees it immediately.
pub fn write_sse_event(w: &mut dyn Write, event: Option<&str>, data: &str) -> io::Result<()> {
    if let Some(name) = event {
        writeln!(w, "event: {name}")?;
    }
    for line in data.split('\n') {
        writeln!(w, "data: {line}")?;
    }
    writeln!(w)?;
    w.flush()
}

/// One parsed SSE event (the client half, used by tests and the bench).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SseEvent {
    /// The `event:` field, if any.
    pub event: Option<String>,
    /// The joined `data:` payload (multi-line data re-joined with `\n`).
    pub data: String,
}

/// Parse one event block (the lines between two blank lines).
pub fn parse_sse_block(block: &str) -> Option<SseEvent> {
    let mut event = None;
    let mut data_lines = Vec::new();
    for line in block.lines() {
        if let Some(rest) = line.strip_prefix("event:") {
            event = Some(rest.trim_start().to_string());
        } else if let Some(rest) = line.strip_prefix("data:") {
            data_lines.push(rest.strip_prefix(' ').unwrap_or(rest).to_string());
        }
        // Unknown fields (id:, retry:, comments) are ignored, per spec.
    }
    if event.is_none() && data_lines.is_empty() {
        return None;
    }
    Some(SseEvent {
        event,
        data: data_lines.join("\n"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_roundtrips_through_framing() {
        let mut out = Vec::new();
        write_sse_event(&mut out, Some("frame"), "{\"a\":1,\n\"b\":2}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text, "event: frame\ndata: {\"a\":1,\ndata: \"b\":2}\n\n");
        let parsed = parse_sse_block(text.trim_end_matches('\n')).unwrap();
        assert_eq!(parsed.event.as_deref(), Some("frame"));
        assert_eq!(parsed.data, "{\"a\":1,\n\"b\":2}");
    }

    #[test]
    fn data_only_event() {
        let mut out = Vec::new();
        write_sse_event(&mut out, None, "x").unwrap();
        assert_eq!(String::from_utf8(out).unwrap(), "data: x\n\n");
    }

    #[test]
    fn empty_block_is_no_event() {
        assert_eq!(parse_sse_block(": comment only"), None);
    }
}
