//! Hand-rolled HTTP/1.1 request parsing and response writing.
//!
//! The build environment has no crates.io access, so — like the vendored
//! dependency stand-ins — the wire protocol is implemented directly on the
//! byte stream: an incremental parser that accumulates into a connection
//! buffer (so keep-alive pipelining costs nothing), strict limits on the
//! header section and body, and a writer that emits either a
//! `Content-Length`-framed response or a close-delimited stream (the shape
//! SSE and the Chrome-trace export need).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request line + header section. A client that sends
/// more without a blank line is malformed (431-class; reported as 400).
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// Upper bound on the number of header lines.
pub const MAX_HEADERS: usize = 100;

/// One parsed HTTP request. Header names are lowercased at parse time;
/// the path and query are percent-decoded.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path without the query string (always starts with `/`).
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of the named header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// First value of the named query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why [`read_request`] did not produce a request.
#[derive(Debug)]
pub enum ParseError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The server's stop flag was raised while waiting for bytes.
    Stopped,
    /// The bytes on the wire are not a valid HTTP/1.1 request (→ 400).
    Malformed(String),
    /// The declared `Content-Length` exceeds the configured cap (→ 413).
    BodyTooLarge(usize),
    /// A hard transport error (connection reset, ...).
    Io(io::Error),
}

/// Poll-and-check interface the blocking reads use to observe shutdown:
/// the socket carries a short read timeout, and every timeout tick asks
/// this flag whether to keep waiting.
pub trait StopCheck {
    fn should_stop(&self) -> bool;
}

impl StopCheck for std::sync::atomic::AtomicBool {
    fn should_stop(&self) -> bool {
        self.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Read one request from `stream`, accumulating into `buf` (which may hold
/// pipelined bytes from the previous call and keeps any surplus for the
/// next). Blocks until a full request arrives, the peer closes, `stop`
/// trips a read-timeout tick, or the bytes turn out malformed.
pub fn read_request(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    stop: &dyn StopCheck,
    max_body: usize,
) -> Result<Request, ParseError> {
    let header_end = loop {
        if let Some(pos) = find_header_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEADER_BYTES {
            return Err(ParseError::Malformed("header section too large".into()));
        }
        fill(stream, buf, stop)?;
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| ParseError::Malformed("non-UTF-8 header bytes".into()))?;
    let mut request = parse_head(head)?;
    let body_len = match request.header("content-length") {
        None => 0,
        Some(v) => v
            .trim()
            .parse::<usize>()
            .map_err(|_| ParseError::Malformed(format!("bad Content-Length {v:?}")))?,
    };
    if body_len > max_body {
        return Err(ParseError::BodyTooLarge(body_len));
    }
    let body_start = header_end + 4;
    while buf.len() < body_start + body_len {
        fill(stream, buf, stop)?;
    }
    request.body = buf[body_start..body_start + body_len].to_vec();
    buf.drain(..body_start + body_len);
    Ok(request)
}

/// Byte offset of the `\r\n\r\n` header terminator, if present.
fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// One blocking read into `buf`. Timeout ticks re-check `stop`; EOF is
/// `Closed` when nothing of the next request has arrived yet, otherwise a
/// truncation error.
fn fill(stream: &mut TcpStream, buf: &mut Vec<u8>, stop: &dyn StopCheck) -> Result<(), ParseError> {
    let mut chunk = [0u8; 4096];
    loop {
        if stop.should_stop() {
            return Err(ParseError::Stopped);
        }
        match stream.read(&mut chunk) {
            Ok(0) => {
                return if buf.is_empty() {
                    Err(ParseError::Closed)
                } else {
                    Err(ParseError::Malformed(
                        "connection closed mid-request".into(),
                    ))
                };
            }
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                return Ok(());
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
}

/// Parse the request line + header lines (everything before the blank line).
fn parse_head(head: &str) -> Result<Request, ParseError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(ParseError::Malformed(format!(
                "bad request line {request_line:?}"
            )))
        }
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(ParseError::Malformed(format!("bad method {method:?}")));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Malformed(format!("bad version {version:?}")));
    }
    if !target.starts_with('/') {
        return Err(ParseError::Malformed(format!("bad target {target:?}")));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let path = percent_decode(raw_path, false)?;
    let mut query = Vec::new();
    if let Some(q) = raw_query {
        for pair in q.split('&').filter(|p| !p.is_empty()) {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            query.push((percent_decode(k, true)?, percent_decode(v, true)?));
        }
    }
    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(ParseError::Malformed("too many headers".into()));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| ParseError::Malformed(format!("bad header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') {
            return Err(ParseError::Malformed(format!("bad header name {name:?}")));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body: Vec::new(),
    })
}

/// Decode `%XX` escapes (and, in query components, `+` as space).
fn percent_decode(s: &str, plus_is_space: bool) -> Result<String, ParseError> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .and_then(|h| std::str::from_utf8(h).ok())
                    .and_then(|h| u8::from_str_radix(h, 16).ok())
                    .ok_or_else(|| ParseError::Malformed(format!("bad %-escape in {s:?}")))?;
                out.push(hex);
                i += 3;
            }
            b'+' if plus_is_space => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| ParseError::Malformed(format!("non-UTF-8 escape in {s:?}")))
}

/// A response: either a complete body (framed with `Content-Length`, so the
/// connection can be kept alive) or a streaming writer invoked with the raw
/// socket (close-delimited — SSE and the Chrome-trace export never know
/// their length up front).
pub enum Response {
    Full {
        status: u16,
        content_type: &'static str,
        body: Vec<u8>,
    },
    Stream {
        content_type: &'static str,
        write: StreamWriter,
    },
}

/// The body writer of a [`Response::Stream`]: invoked once with the raw
/// socket, ends the response by returning (the connection closes).
pub type StreamWriter = Box<dyn FnOnce(&mut dyn Write) -> io::Result<()> + Send>;

impl Response {
    /// 200 with a JSON body.
    pub fn json(body: String) -> Self {
        Response::Full {
            status: 200,
            content_type: "application/json",
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: impl Into<String>) -> Self {
        Response::Full {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
        }
    }

    /// 400 with a reason in the body.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        Self::text(400, msg.into() + "\n")
    }

    /// 404.
    pub fn not_found() -> Self {
        Self::text(404, "not found\n")
    }

    /// 405 (path exists, method does not).
    pub fn method_not_allowed() -> Self {
        Self::text(405, "method not allowed\n")
    }

    /// 413 (declared body exceeds the gateway's cap).
    pub fn payload_too_large() -> Self {
        Self::text(413, "payload too large\n")
    }

    /// The status code this response will carry (streams are always 200).
    pub fn status(&self) -> u16 {
        match self {
            Response::Full { status, .. } => *status,
            Response::Stream { .. } => 200,
        }
    }
}

impl std::fmt::Debug for Response {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Response::Full { status, body, .. } => f
                .debug_struct("Response::Full")
                .field("status", status)
                .field("body_len", &body.len())
                .finish(),
            Response::Stream { content_type, .. } => f
                .debug_struct("Response::Stream")
                .field("content_type", content_type)
                .finish(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        204 => "No Content",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "",
    }
}

/// Write `response`; returns `(bytes_written, connection_must_close)`.
///
/// `Full` responses are `Content-Length`-framed and honour `keep_alive`;
/// `Stream` responses are close-delimited, so they always force a close.
pub fn write_response(
    stream: &mut TcpStream,
    response: Response,
    keep_alive: bool,
) -> io::Result<(u64, bool)> {
    let mut counting = CountingWriter::new(stream);
    match response {
        Response::Full {
            status,
            content_type,
            body,
        } => {
            let head = format!(
                "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
                reason(status),
                body.len(),
                if keep_alive { "keep-alive" } else { "close" },
            );
            counting.write_all(head.as_bytes())?;
            counting.write_all(&body)?;
            counting.flush()?;
            Ok((counting.written(), !keep_alive))
        }
        Response::Stream {
            content_type,
            write,
        } => {
            let head = format!(
                "HTTP/1.1 200 OK\r\nContent-Type: {content_type}\r\nCache-Control: no-cache\r\nConnection: close\r\n\r\n"
            );
            counting.write_all(head.as_bytes())?;
            // A broken pipe mid-stream (client went away) is a normal way
            // for a subscription to end, not a server error.
            let result = write(&mut counting);
            let written = counting.written();
            match result {
                Ok(()) | Err(_) => Ok((written, true)),
            }
        }
    }
}

/// An `io::Write` adapter that counts bytes written through it (feeds the
/// `gateway.bytes_out` gauge).
pub struct CountingWriter<W: Write> {
    inner: W,
    written: u64,
}

impl<W: Write> CountingWriter<W> {
    pub fn new(inner: W) -> Self {
        Self { inner, written: 0 }
    }

    pub fn written(&self) -> u64 {
        self.written
    }
}

impl<W: Write> Write for CountingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(head: &str) -> Result<Request, ParseError> {
        parse_head(head)
    }

    #[test]
    fn parses_request_line_and_headers() {
        let r = parse("GET /metrics HTTP/1.1\r\nHost: x\r\nAccept: */*").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/metrics");
        assert_eq!(r.header("host"), Some("x"));
        assert_eq!(r.header("HOST"), Some("x"));
        assert!(r.query.is_empty());
    }

    #[test]
    fn parses_query_pairs_with_escapes() {
        let r = parse("POST /produce?topic=ingest%2Fa&partition=3&note=a+b HTTP/1.1").unwrap();
        assert_eq!(r.query_param("topic"), Some("ingest/a"));
        assert_eq!(r.query_param("partition"), Some("3"));
        assert_eq!(r.query_param("note"), Some("a b"));
    }

    #[test]
    fn rejects_malformed_heads() {
        for bad in [
            "",
            "GET",
            "GET /x",
            "GET /x HTTP/1.1 extra",
            "get /x HTTP/1.1",
            "GET x HTTP/1.1",
            "GET /x SPDY/3",
            "GET /x HTTP/1.1\r\nno-colon-here",
            "GET /%zz HTTP/1.1",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn header_terminator_found() {
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_header_end(b"GET / HTTP/1.1\r\n"), None);
    }

    #[test]
    fn percent_decode_roundtrip() {
        assert_eq!(percent_decode("/a%20b", false).unwrap(), "/a b");
        assert_eq!(percent_decode("a+b", true).unwrap(), "a b");
        assert_eq!(percent_decode("a+b", false).unwrap(), "a+b");
        assert!(percent_decode("%g1", false).is_err());
        assert!(percent_decode("%2", false).is_err());
    }
}
