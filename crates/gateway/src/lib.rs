//! # pilot-gateway — the observability front door (DESIGN.md §16)
//!
//! A dependency-free HTTP/1.1 + SSE server that turns a running Pilot-Edge
//! pipeline or federation into a *protocol surface*: Prometheus metrics,
//! the live telemetry frame ring (pull and push), the `pilot_top` table,
//! the Chrome-trace export, the control journal, live knob tuning, and an
//! external record-ingestion path. The P* model (Luckow et al.) argues
//! workload submission should be decoupled from resource management — a
//! protocol, not a function call; this crate is that protocol.
//!
//! The crate is deliberately *generic*: it knows sockets, HTTP framing,
//! routing, and SSE — not pipelines. Endpoint handlers are closures
//! registered on a [`Router`], so `pilot-edge` (which depends on this
//! crate) wires `/metrics`, `/produce`, etc. around its own control
//! surface without a dependency cycle.
//!
//! Architecture (one acceptor + fixed worker pool over an MPMC channel):
//!
//! ```text
//!            TcpListener
//!                │ accept
//!        pilot-gateway-acceptor ──── crossbeam channel ────┐
//!                                                          ▼
//!                               pilot-gateway-worker-0..N (keep-alive
//!                               request loop; 250 ms read timeout polls
//!                               the shared StopFlag)
//! ```
//!
//! Responses are either `Content-Length`-framed (connection reusable) or
//! close-delimited streams — the SSE subscription and the Chrome-trace
//! export write straight to the socket and never buffer the full payload.
//!
//! Everything is opt-in: the knob that creates a gateway is
//! `Option<GatewayConfig>` on the pipeline/federation config, and `None`
//! (the default) builds no socket, no thread, and no gauge — asserted in
//! `tests/gateway.rs::defaults_leave_zero_footprint`.

pub mod client;
pub mod http;
pub mod server;
pub mod sse;

pub use client::{ClientResponse, HttpClient, StreamReader};
pub use http::{Request, Response};
pub use server::{
    Gateway, GatewayConfig, Handler, Router, StopFlag, GAUGE_GW_ACTIVE_CONNECTIONS,
    GAUGE_GW_BYTES_OUT, GAUGE_GW_REQUESTS, GAUGE_GW_REQUEST_US,
};
pub use sse::{parse_sse_block, write_sse_event, SseEvent};

#[cfg(test)]
mod tests {
    use super::*;
    use pilot_metrics::MetricsRegistry;
    use std::io::Write;
    use std::time::Duration;

    fn demo_router(stop: &StopFlag) -> Router {
        let stop = stop.clone();
        Router::new()
            .get(
                "/hello",
                Box::new(|_req: &Request| Response::text(200, "hi")) as Handler,
            )
            .post(
                "/echo",
                Box::new(|req: &Request| {
                    Response::json(format!(
                        "{{\"len\":{},\"topic\":{:?}}}",
                        req.body.len(),
                        req.query_param("topic").unwrap_or("-")
                    ))
                }) as Handler,
            )
            .get(
                "/stream",
                Box::new(move |_req: &Request| {
                    let stop = stop.clone();
                    Response::Stream {
                        content_type: "text/event-stream",
                        write: Box::new(move |w: &mut dyn Write| {
                            for i in 0..3 {
                                if stop.is_stopped() {
                                    break;
                                }
                                write_sse_event(w, Some("tick"), &format!("{{\"n\":{i}}}"))?;
                            }
                            Ok(())
                        }),
                    }
                }) as Handler,
            )
    }

    fn start_demo() -> (Gateway, MetricsRegistry) {
        let registry = MetricsRegistry::new();
        let stop = StopFlag::new();
        let router = demo_router(&stop);
        let gw = Gateway::start(&GatewayConfig::default(), router, &registry, stop).unwrap();
        (gw, registry)
    }

    #[test]
    fn serves_and_keeps_alive() {
        let (gw, registry) = start_demo();
        let mut client = HttpClient::connect(gw.addr()).unwrap();
        for _ in 0..3 {
            let r = client.get("/hello").unwrap();
            assert_eq!(r.status, 200);
            assert_eq!(r.text(), "hi");
        }
        assert_eq!(
            registry.gauge_value(GAUGE_GW_REQUESTS),
            Some(3),
            "three requests on one keep-alive connection"
        );
        assert!(registry.gauge_value(GAUGE_GW_BYTES_OUT).unwrap() > 0);
    }

    #[test]
    fn post_body_and_query_reach_handler() {
        let (gw, _registry) = start_demo();
        let mut client = HttpClient::connect(gw.addr()).unwrap();
        let r = client.post("/echo?topic=ingest", b"hello world").unwrap();
        assert_eq!(r.status, 200);
        assert_eq!(r.text(), "{\"len\":11,\"topic\":\"ingest\"}");
    }

    #[test]
    fn unknown_path_404_wrong_method_405() {
        let (gw, _registry) = start_demo();
        let mut client = HttpClient::connect(gw.addr()).unwrap();
        assert_eq!(client.get("/nope").unwrap().status, 404);
        assert_eq!(client.post("/hello", b"x").unwrap().status, 405);
        // The worker survived both: a normal request still works.
        assert_eq!(client.get("/hello").unwrap().status, 200);
    }

    #[test]
    fn oversized_body_413_without_killing_worker() {
        let registry = MetricsRegistry::new();
        let stop = StopFlag::new();
        let cfg = GatewayConfig {
            workers: 1, // one worker: if 413 killed it, the next request hangs
            max_body_bytes: 64,
            ..GatewayConfig::default()
        };
        let gw = Gateway::start(&cfg, demo_router(&stop), &registry, stop).unwrap();
        let mut client = HttpClient::connect(gw.addr()).unwrap();
        let r = client.post("/echo", &[0u8; 1024]).unwrap();
        assert_eq!(r.status, 413);
        // Fresh request on the same (single-worker) gateway still served.
        let r = client.get("/hello").unwrap();
        assert_eq!(r.status, 200);
    }

    #[test]
    fn malformed_request_gets_400() {
        let (gw, _registry) = start_demo();
        let mut raw = std::net::TcpStream::connect(gw.addr()).unwrap();
        raw.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut client = HttpClient::connect(gw.addr()).unwrap();
        assert_eq!(client.get("/hello").unwrap().status, 200);
    }

    #[test]
    fn stream_endpoint_delivers_sse_events() {
        let (gw, _registry) = start_demo();
        let client = HttpClient::connect(gw.addr()).unwrap();
        let (status, mut reader) = client.open_stream("GET", "/stream").unwrap();
        assert_eq!(status, 200);
        let mut seen = Vec::new();
        while let Some(ev) = reader.next_event(Duration::from_secs(5)).unwrap() {
            seen.push(ev);
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].event.as_deref(), Some("tick"));
        assert_eq!(seen[2].data, "{\"n\":2}");
    }

    #[test]
    fn shutdown_joins_everything_and_refuses_new_work() {
        let (mut gw, _registry) = start_demo();
        let addr = gw.addr();
        gw.shutdown();
        gw.shutdown(); // idempotent
                       // After shutdown nothing accepts: either the connect fails or the
                       // request gets no response.
        if let Ok(mut c) = HttpClient::connect(addr) {
            assert!(c.get("/hello").is_err());
        }
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(GatewayConfig::default().validate().is_ok());
        let c = GatewayConfig {
            workers: 0,
            ..GatewayConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("workers"));
        let c = GatewayConfig {
            bind: String::new(),
            ..GatewayConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("bind"));
        let c = GatewayConfig {
            max_body_bytes: 0,
            ..GatewayConfig::default()
        };
        assert!(c.validate().unwrap_err().contains("max_body_bytes"));
    }
}
