//! The gateway server: one acceptor thread feeding a fixed worker pool over
//! an MPMC channel, keep-alive connection handling, and a stop flag every
//! blocking point polls.
//!
//! Lifecycle: [`Gateway::start`] binds the listener and spawns
//! `1 + workers` threads; [`Gateway::shutdown`] (also run on drop) raises
//! the stop flag, pokes the acceptor awake with a loopback connect, and
//! joins everything. Workers never die on a bad request — parse errors
//! close that connection with 400/413 and the worker returns to the pool.

use crate::http::{read_request, write_response, ParseError, Request, Response, StopCheck};
use pilot_metrics::{Gauge, MetricsRegistry};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Gauge: requests served so far (all endpoints, all statuses).
pub const GAUGE_GW_REQUESTS: &str = "gateway.requests";
/// Gauge: connections currently pinned to a worker.
pub const GAUGE_GW_ACTIVE_CONNECTIONS: &str = "gateway.active_connections";
/// Gauge: response bytes written to sockets so far (headers + bodies).
pub const GAUGE_GW_BYTES_OUT: &str = "gateway.bytes_out";
/// Gauge: service time of the most recent request, µs (dispatch + write).
pub const GAUGE_GW_REQUEST_US: &str = "gateway.request_us";

/// How the gateway listens. The knob that turns the gateway on is
/// `Option<GatewayConfig>` on the pipeline/federation config — `None`
/// (the default) builds nothing: no socket, no threads, no gauges.
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address. The default `127.0.0.1:0` picks a free port — read
    /// the bound address back from the running handle.
    pub bind: String,
    /// Worker threads. Each in-flight connection pins one worker
    /// (keep-alive), so size this above the expected concurrent client
    /// count, counting each SSE subscription as one held connection.
    pub workers: usize,
    /// Reject request bodies larger than this with `413` (default 256 KiB).
    pub max_body_bytes: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:0".into(),
            workers: 4,
            max_body_bytes: 256 * 1024,
        }
    }
}

impl GatewayConfig {
    /// Reject configurations that cannot serve anything.
    pub fn validate(&self) -> Result<(), String> {
        if self.bind.is_empty() {
            return Err("gateway bind address must not be empty".into());
        }
        if self.workers == 0 {
            return Err("gateway workers must be >= 1".into());
        }
        if self.max_body_bytes == 0 {
            return Err("gateway max_body_bytes must be >= 1".into());
        }
        Ok(())
    }
}

/// Shared shutdown signal. Streaming handlers (SSE) must poll
/// [`StopFlag::is_stopped`] between events so shutdown can reclaim their
/// workers.
#[derive(Clone)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    pub fn new() -> Self {
        Self(Arc::new(AtomicBool::new(false)))
    }

    pub fn raise(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_stopped(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for StopFlag {
    fn default() -> Self {
        Self::new()
    }
}

impl StopCheck for StopFlag {
    fn should_stop(&self) -> bool {
        self.is_stopped()
    }
}

/// An endpoint handler: pure request → response. Streaming handlers
/// capture the [`StopFlag`] handed to them at registration inside their
/// `Response::Stream` closure.
pub type Handler = Box<dyn Fn(&Request) -> Response + Send + Sync>;

/// Exact-path router. Unknown paths get 404; a known path hit with the
/// wrong method gets 405.
#[derive(Default)]
pub struct Router {
    routes: Vec<(&'static str, String, Handler)>,
}

impl Router {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a `GET` handler for `path`.
    pub fn get(self, path: impl Into<String>, h: Handler) -> Self {
        self.route("GET", path, h)
    }

    /// Register a `POST` handler for `path`.
    pub fn post(self, path: impl Into<String>, h: Handler) -> Self {
        self.route("POST", path, h)
    }

    fn route(mut self, method: &'static str, path: impl Into<String>, h: Handler) -> Self {
        self.routes.push((method, path.into(), h));
        self
    }

    fn dispatch(&self, request: &Request) -> Response {
        let mut path_seen = false;
        for (method, path, handler) in &self.routes {
            if *path == request.path {
                if *method == request.method {
                    return handler(request);
                }
                path_seen = true;
            }
        }
        if path_seen {
            Response::method_not_allowed()
        } else {
            Response::not_found()
        }
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|(m, p, _)| format!("{m} {p}"))
            .collect();
        f.debug_struct("Router").field("routes", &routes).finish()
    }
}

/// The gateway's own gauges, registered through the same registry the
/// pipeline exports — so the gateway is visible in its own `/metrics`.
struct GwGauges {
    requests: Arc<Gauge>,
    active: Arc<Gauge>,
    bytes_out: Arc<Gauge>,
    request_us: Arc<Gauge>,
}

impl GwGauges {
    fn new(registry: &MetricsRegistry) -> Self {
        Self {
            requests: registry.gauge(GAUGE_GW_REQUESTS),
            active: registry.gauge(GAUGE_GW_ACTIVE_CONNECTIONS),
            bytes_out: registry.gauge(GAUGE_GW_BYTES_OUT),
            request_us: registry.gauge(GAUGE_GW_REQUEST_US),
        }
    }
}

/// A running gateway server. Shut down explicitly via
/// [`Gateway::shutdown`] or implicitly on drop; either joins every thread.
pub struct Gateway {
    addr: SocketAddr,
    stop: StopFlag,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Gateway {
    /// Bind `config.bind` and start serving `router`. The `stop` flag must
    /// be the one streaming handlers were built around, so one signal ends
    /// the accept loop, idle keep-alive waits, and live SSE streams alike.
    pub fn start(
        config: &GatewayConfig,
        router: Router,
        registry: &MetricsRegistry,
        stop: StopFlag,
    ) -> io::Result<Self> {
        config
            .validate()
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        let listener = TcpListener::bind(&config.bind)?;
        let addr = listener.local_addr()?;
        let router = Arc::new(router);
        let gauges = Arc::new(GwGauges::new(registry));
        let (tx, rx) = crossbeam::channel::unbounded::<TcpStream>();
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = rx.clone();
            let router = Arc::clone(&router);
            let gauges = Arc::clone(&gauges);
            let stop = stop.clone();
            let max_body = config.max_body_bytes;
            workers.push(
                std::thread::Builder::new()
                    .name(format!("pilot-gateway-worker-{i}"))
                    .spawn(move || {
                        while let Ok(conn) = rx.recv() {
                            if stop.is_stopped() {
                                continue; // drain the queue, serve nothing
                            }
                            gauges.active.add(1);
                            let _ = handle_connection(conn, &router, &stop, &gauges, max_body);
                            gauges.active.sub(1);
                        }
                    })?,
            );
        }
        let stop2 = stop.clone();
        let acceptor = std::thread::Builder::new()
            .name("pilot-gateway-acceptor".into())
            .spawn(move || {
                // `tx` lives only here: when the acceptor exits, the channel
                // closes and every idle worker's recv() errors out.
                for conn in listener.incoming() {
                    if stop2.is_stopped() {
                        break;
                    }
                    if let Ok(conn) = conn {
                        let _ = tx.send(conn);
                    }
                }
            })?;
        Ok(Self {
            addr,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (resolves the `:0` ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, end every stream, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.raise();
        // Unblock the acceptor's blocking accept() with a loopback connect.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(t) = self.acceptor.take() {
            let _ = t.join();
        }
        for t in self.workers.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("addr", &self.addr)
            .field("workers", &self.workers.len())
            .finish()
    }
}

/// Serve one connection until it closes, errors, sends garbage, or the
/// server stops. Keep-alive: loops over requests on the same socket.
fn handle_connection(
    mut stream: TcpStream,
    router: &Router,
    stop: &StopFlag,
    gauges: &GwGauges,
    max_body: usize,
) -> io::Result<()> {
    // Short read timeout: every tick re-checks the stop flag, so an idle
    // keep-alive connection cannot hold a worker hostage across shutdown.
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    stream.set_nodelay(true)?;
    let mut buf = Vec::new();
    loop {
        let request = match read_request(&mut stream, &mut buf, stop, max_body) {
            Ok(r) => r,
            Err(ParseError::Closed | ParseError::Stopped) => return Ok(()),
            Err(ParseError::Io(_)) => return Ok(()),
            Err(ParseError::Malformed(m)) => {
                gauges.requests.add(1);
                let (n, _) = write_response(&mut stream, Response::bad_request(m), false)?;
                gauges.bytes_out.add(n as i64);
                return Ok(());
            }
            Err(ParseError::BodyTooLarge(_)) => {
                // The oversized body was never read off the wire, so the
                // connection cannot be reused — close after responding.
                gauges.requests.add(1);
                let (n, _) = write_response(&mut stream, Response::payload_too_large(), false)?;
                gauges.bytes_out.add(n as i64);
                return Ok(());
            }
        };
        let started = Instant::now();
        let keep_alive = !matches!(
            request.header("connection"),
            Some(c) if c.eq_ignore_ascii_case("close")
        );
        let response = router.dispatch(&request);
        gauges.requests.add(1);
        let (n, close) = write_response(&mut stream, response, keep_alive)?;
        gauges.bytes_out.add(n as i64);
        gauges.request_us.set(started.elapsed().as_micros() as i64);
        if close {
            return Ok(());
        }
    }
}
