//! A minimal blocking HTTP/1.1 client — just enough to drive the gateway
//! from the integration tests, the CI smoke, and the `gateway_load` bench
//! without taking on a dependency.
//!
//! Supports keep-alive request/response cycles (`Content-Length`-framed
//! responses reuse the connection; close-delimited ones burn it and the
//! client transparently reconnects on the next call) and switching a
//! connection into streaming mode for SSE subscriptions.

use crate::sse::{parse_sse_block, SseEvent};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    pub status: u16,
    /// `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First value of the named header.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// A keep-alive HTTP client bound to one server address.
pub struct HttpClient {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    read_timeout: Duration,
}

impl HttpClient {
    /// Connect to `addr` (10 s default read timeout).
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let mut client = Self {
            addr,
            stream: None,
            buf: Vec::new(),
            read_timeout: Duration::from_secs(10),
        };
        client.ensure_connected()?;
        Ok(client)
    }

    fn ensure_connected(&mut self) -> io::Result<&mut TcpStream> {
        if self.stream.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, Duration::from_secs(5))?;
            stream.set_read_timeout(Some(self.read_timeout))?;
            stream.set_nodelay(true)?;
            self.buf.clear();
            self.stream = Some(stream);
        }
        Ok(self.stream.as_mut().expect("just connected"))
    }

    /// `GET path` → response.
    pub fn get(&mut self, path: &str) -> io::Result<ClientResponse> {
        self.request("GET", path, None)
    }

    /// `POST path` with `body` → response.
    pub fn post(&mut self, path: &str, body: &[u8]) -> io::Result<ClientResponse> {
        self.request("POST", path, Some(body))
    }

    /// Issue one request and read the full response. Close-delimited
    /// responses (streams) are read to EOF and drop the connection; the
    /// next call reconnects.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&[u8]>,
    ) -> io::Result<ClientResponse> {
        self.send_request(method, path, body)?;
        let (response, close) = self.read_response()?;
        if close {
            self.stream = None;
        }
        Ok(response)
    }

    /// Issue a request and hand the connection over as a stream positioned
    /// after the response headers — the SSE subscription path. The client
    /// itself reconnects on its next regular request.
    pub fn open_stream(mut self, method: &str, path: &str) -> io::Result<(u16, StreamReader)> {
        self.send_request(method, path, None)?;
        let (status, headers) = self.read_head()?;
        let _ = headers;
        let stream = self.stream.take().expect("connected by send_request");
        Ok((
            status,
            StreamReader {
                stream,
                buf: std::mem::take(&mut self.buf),
            },
        ))
    }

    fn send_request(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        // A dead keep-alive connection surfaces as a write error or an
        // immediate EOF on read; retry once on a fresh connection.
        for attempt in 0..2 {
            let stream = self.ensure_connected()?;
            let head = match body {
                Some(b) => format!(
                    "{method} {path} HTTP/1.1\r\nHost: pilot-gateway\r\nContent-Length: {}\r\n\r\n",
                    b.len()
                ),
                None => format!("{method} {path} HTTP/1.1\r\nHost: pilot-gateway\r\n\r\n"),
            };
            let result = stream
                .write_all(head.as_bytes())
                .and_then(|()| body.map_or(Ok(()), |b| stream.write_all(b)))
                .and_then(|()| stream.flush());
            match result {
                Ok(()) => return Ok(()),
                Err(e) if attempt == 0 => {
                    let _ = e;
                    self.stream = None;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on success or final error")
    }

    /// Read the status line + headers; leaves any body bytes in `self.buf`.
    fn read_head(&mut self) -> io::Result<(u16, Vec<(String, String)>)> {
        let header_end = loop {
            if let Some(pos) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break pos;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..header_end]).into_owned();
        self.buf.drain(..header_end + 4);
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(n, v)| (n.to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        Ok((status, headers))
    }

    /// Read one full response. Returns `(response, connection_consumed)`.
    fn read_response(&mut self) -> io::Result<(ClientResponse, bool)> {
        let (status, headers) = self.read_head()?;
        let content_length = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse::<usize>().ok());
        let closing = headers
            .iter()
            .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
        let body = match content_length {
            Some(n) => {
                while self.buf.len() < n {
                    self.fill()?;
                }
                let body: Vec<u8> = self.buf.drain(..n).collect();
                body
            }
            None => {
                // Close-delimited: read until EOF.
                loop {
                    match self.fill() {
                        Ok(()) => {}
                        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
                        Err(e) => return Err(e),
                    }
                }
                std::mem::take(&mut self.buf)
            }
        };
        Ok((
            ClientResponse {
                status,
                headers,
                body,
            },
            closing || content_length.is_none(),
        ))
    }

    fn fill(&mut self) -> io::Result<()> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no connection"))?;
        let mut chunk = [0u8; 4096];
        match stream.read(&mut chunk)? {
            0 => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed connection",
            )),
            n => {
                self.buf.extend_from_slice(&chunk[..n]);
                Ok(())
            }
        }
    }
}

/// A connection switched into streaming mode by [`HttpClient::open_stream`]
/// — reads SSE events incrementally with a per-call deadline.
pub struct StreamReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl StreamReader {
    /// Block until the next SSE event arrives, the server closes the
    /// stream (`Ok(None)`), or `timeout` passes (`Ok(None)`).
    pub fn next_event(&mut self, timeout: Duration) -> io::Result<Option<SseEvent>> {
        let deadline = Instant::now() + timeout;
        loop {
            // One event block = bytes up to a blank line.
            if let Some(pos) = self.buf.windows(2).position(|w| w == b"\n\n") {
                let block: Vec<u8> = self.buf.drain(..pos + 2).collect();
                let text = String::from_utf8_lossy(&block);
                match parse_sse_block(text.trim_end_matches('\n')) {
                    Some(ev) => return Ok(Some(ev)),
                    None => continue, // comment/heartbeat block; keep reading
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            self.stream
                .set_read_timeout(Some(remaining.min(Duration::from_millis(250))))?;
            let mut chunk = [0u8; 4096];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Ok(None),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(e) => return Err(e),
            }
        }
    }
}
