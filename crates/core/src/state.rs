//! The pilot state machine.

/// Lifecycle of a pilot, following the P* model's pilot states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PilotState {
    /// Described but not yet submitted.
    New,
    /// Handed to the backend.
    Submitted,
    /// Waiting in a resource queue (batch systems; clouds while booting).
    Queued,
    /// Resources are up; tasks can run.
    Active,
    /// Ran to completion / released.
    Done,
    /// Provisioning or runtime failure.
    Failed,
    /// Cancelled by the application.
    Cancelled,
}

impl PilotState {
    /// Is the transition `self → next` legal?
    pub fn can_transition_to(self, next: PilotState) -> bool {
        use PilotState::*;
        matches!(
            (self, next),
            (New, Submitted)
                | (New, Cancelled)
                | (Submitted, Queued)
                | (Submitted, Active)
                | (Submitted, Failed)
                | (Submitted, Cancelled)
                | (Queued, Active)
                | (Queued, Failed)
                | (Queued, Cancelled)
                | (Active, Done)
                | (Active, Failed)
                | (Active, Cancelled)
        )
    }

    /// True for `Done`, `Failed`, `Cancelled`.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            PilotState::Done | PilotState::Failed | PilotState::Cancelled
        )
    }

    /// Stable label.
    pub fn label(self) -> &'static str {
        match self {
            PilotState::New => "new",
            PilotState::Submitted => "submitted",
            PilotState::Queued => "queued",
            PilotState::Active => "active",
            PilotState::Done => "done",
            PilotState::Failed => "failed",
            PilotState::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for PilotState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use PilotState::*;

    #[test]
    fn happy_path_is_legal() {
        assert!(New.can_transition_to(Submitted));
        assert!(Submitted.can_transition_to(Queued));
        assert!(Queued.can_transition_to(Active));
        assert!(Active.can_transition_to(Done));
    }

    #[test]
    fn skipping_queue_is_legal() {
        // Local/cloud pilots may go straight Submitted → Active.
        assert!(Submitted.can_transition_to(Active));
    }

    #[test]
    fn illegal_transitions_rejected() {
        assert!(!Done.can_transition_to(Active));
        assert!(!Active.can_transition_to(New));
        assert!(!Failed.can_transition_to(Active));
        assert!(!New.can_transition_to(Active));
        assert!(!Cancelled.can_transition_to(Submitted));
    }

    #[test]
    fn cancellation_from_any_live_state() {
        for s in [New, Submitted, Queued, Active] {
            assert!(s.can_transition_to(Cancelled), "{s}");
        }
    }

    #[test]
    fn terminal_states() {
        assert!(Done.is_terminal());
        assert!(Failed.is_terminal());
        assert!(Cancelled.is_terminal());
        assert!(!Active.is_terminal());
        assert!(!Queued.is_terminal());
    }
}
