//! The pilot: a placeholder job owning resources and hosting frameworks.

use crate::backend::ResourceBackend;
use crate::description::PilotDescription;
use crate::error::PilotError;
use crate::queue::QueueSlot;
use crate::state::PilotState;
use parking_lot::{Condvar, Mutex};
use pilot_broker::Broker;
use pilot_dataflow::{Client, LocalCluster};
use pilot_metrics::EnergyModel;
use pilot_params::ParameterServer;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct PilotInner {
    state: Mutex<PilotState>,
    state_changed: Condvar,
    cluster: Mutex<Option<LocalCluster>>,
    slot: Mutex<Option<QueueSlot>>,
    activated_at: Mutex<Option<Instant>>,
    failure: Mutex<Option<String>>,
    broker: Mutex<Option<Broker>>,
    params: Mutex<Option<ParameterServer>>,
}

/// A pilot job. Obtain from [`crate::PilotComputeService::create_pilot`];
/// share freely (`Arc` inside).
#[derive(Clone)]
pub struct Pilot {
    id: u64,
    desc: PilotDescription,
    inner: Arc<PilotInner>,
}

impl Pilot {
    pub(crate) fn new(id: u64, desc: PilotDescription) -> Self {
        Self {
            id,
            desc,
            inner: Arc::new(PilotInner {
                state: Mutex::new(PilotState::New),
                state_changed: Condvar::new(),
                cluster: Mutex::new(None),
                slot: Mutex::new(None),
                activated_at: Mutex::new(None),
                failure: Mutex::new(None),
                broker: Mutex::new(None),
                params: Mutex::new(None),
            }),
        }
    }

    /// Unique id within its service.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The description this pilot was created from.
    pub fn description(&self) -> &PilotDescription {
        &self.desc
    }

    /// The site the pilot lives on.
    pub fn site(&self) -> &str {
        &self.desc.site
    }

    /// Current state.
    pub fn state(&self) -> PilotState {
        *self.inner.state.lock()
    }

    /// Failure message, if the pilot failed.
    pub fn failure(&self) -> Option<String> {
        self.inner.failure.lock().clone()
    }

    /// Attempt a state transition; returns false (and leaves the state) if
    /// it would be illegal.
    pub(crate) fn transition(&self, next: PilotState) -> bool {
        let mut st = self.inner.state.lock();
        if !st.can_transition_to(next) {
            return false;
        }
        *st = next;
        self.inner.state_changed.notify_all();
        true
    }

    /// Drive the provisioning lifecycle on the calling thread (the service
    /// spawns this in the background).
    pub(crate) fn run_lifecycle(&self, backend: Arc<dyn ResourceBackend>) {
        if !self.transition(PilotState::Submitted) {
            return; // cancelled before submission
        }
        if !self.transition(PilotState::Queued) {
            return;
        }
        let provisioned = match backend.provision(&self.desc) {
            Ok(p) => p,
            Err(e) => {
                *self.inner.failure.lock() = Some(e.to_string());
                self.transition(PilotState::Failed);
                return;
            }
        };
        if !provisioned.boot_delay.is_zero() {
            std::thread::sleep(provisioned.boot_delay);
        }
        // The pilot may have been cancelled while queued/booting.
        {
            let mut slot = self.inner.slot.lock();
            *slot = provisioned.slot;
        }
        // Pooled pilots book capacity only: no private worker cluster, so
        // a 1024-pilot federation activates without spawning 1024×cores
        // threads. Their compute multiplexes onto a shared external pool.
        if !self.desc.pooled {
            let cluster = LocalCluster::new(self.desc.cores, self.desc.memory_gb);
            *self.inner.cluster.lock() = Some(cluster);
        }
        if !self.transition(PilotState::Active) {
            // Cancelled during boot: tear the cluster back down.
            self.inner.cluster.lock().take();
            self.inner.slot.lock().take();
        }
        *self.inner.activated_at.lock() = Some(Instant::now());
    }

    /// Block until the pilot reaches `target` (or any terminal state), up
    /// to `timeout`.
    pub fn wait_state(&self, target: PilotState, timeout: Duration) -> Result<(), PilotError> {
        let deadline = Instant::now() + timeout;
        let mut st = self.inner.state.lock();
        loop {
            if *st == target {
                return Ok(());
            }
            if st.is_terminal() {
                return Err(PilotError::NotActive(*st));
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(PilotError::Timeout);
            }
            self.inner.state_changed.wait_for(&mut st, deadline - now);
        }
    }

    /// Convenience: wait until Active.
    pub fn wait_active(&self, timeout: Duration) -> Result<(), PilotError> {
        self.wait_state(PilotState::Active, timeout)
    }

    /// A task-submission client for the pilot's cluster (Active only).
    /// Pooled pilots have no cluster and return [`PilotError::Pooled`].
    pub fn client(&self) -> Result<Client, PilotError> {
        let state = self.state();
        if state != PilotState::Active {
            return Err(PilotError::NotActive(state));
        }
        if self.desc.pooled {
            return Err(PilotError::Pooled);
        }
        let guard = self.inner.cluster.lock();
        guard
            .as_ref()
            .map(|c| c.client())
            .ok_or(PilotError::NotActive(state))
    }

    /// Host a broker on this pilot ("the pilot abstraction can manage
    /// brokering and data processing frameworks, e.g., Kafka"). Idempotent.
    pub fn start_broker(&self) -> Result<Broker, PilotError> {
        if self.state() != PilotState::Active {
            return Err(PilotError::NotActive(self.state()));
        }
        let mut guard = self.inner.broker.lock();
        Ok(guard.get_or_insert_with(Broker::new).clone())
    }

    /// Host a parameter server on this pilot. Idempotent.
    pub fn start_param_server(&self) -> Result<ParameterServer, PilotError> {
        if self.state() != PilotState::Active {
            return Err(PilotError::NotActive(self.state()));
        }
        let mut guard = self.inner.params.lock();
        Ok(guard.get_or_insert_with(ParameterServer::new).clone())
    }

    /// Seconds of pilot lifetime so far (0 before activation).
    pub fn uptime(&self) -> Duration {
        self.inner
            .activated_at
            .lock()
            .map(|t| t.elapsed())
            .unwrap_or(Duration::ZERO)
    }

    /// True once the pilot has outlived its walltime.
    pub fn is_expired(&self) -> bool {
        match self.desc.walltime {
            Some(w) => self.uptime() > w,
            None => false,
        }
    }

    /// Energy estimate: cluster busy time at the class's active wattage,
    /// the rest of the uptime at idle wattage.
    pub fn energy(&self) -> EnergyModel {
        let mut m = EnergyModel::new(self.desc.class);
        if let Some(cluster) = self.inner.cluster.lock().as_ref() {
            m.record_busy(cluster.stats().busy_secs);
        }
        m.set_wall(self.uptime().as_secs_f64());
        m
    }

    /// Cancel the pilot (from any live state). Tears down the cluster if
    /// one was booted.
    pub fn cancel(&self) {
        if self.transition(PilotState::Cancelled) {
            if let Some(mut cluster) = self.inner.cluster.lock().take() {
                cluster.shutdown();
            }
            self.inner.slot.lock().take();
        }
    }

    /// Release the pilot normally (Active → Done): shuts the cluster down
    /// and frees any queue slot.
    pub fn release(&self) {
        if self.transition(PilotState::Done) {
            if let Some(mut cluster) = self.inner.cluster.lock().take() {
                cluster.shutdown();
            }
            self.inner.slot.lock().take();
        }
    }
}

impl std::fmt::Debug for Pilot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pilot")
            .field("id", &self.id)
            .field("resource", &self.desc.resource)
            .field("state", &self.state())
            .finish()
    }
}
