//! The pilot compute service: backend registry + pilot factory.

use crate::backend::{
    CloudVmBackend, LocalBackend, ResourceBackend, ServerlessBackend, SshEdgeBackend,
};
use crate::description::PilotDescription;
use crate::error::PilotError;
use crate::pilot::Pilot;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Creates and tracks pilots, routing descriptions to backend plugins by
/// URL scheme (paper Fig. 1, step 1: "applications acquire edge-to-cloud
/// resources using the pilot framework").
pub struct PilotComputeService {
    backends: Mutex<HashMap<&'static str, Arc<dyn ResourceBackend>>>,
    pilots: Mutex<Vec<Pilot>>,
    next_id: Mutex<u64>,
}

impl PilotComputeService {
    /// A service with the standard plugins registered: `local`, `ssh`
    /// (edge devices), `openstack` (cloud VMs). Batch backends need a queue,
    /// so they are registered explicitly via [`Self::register_backend`].
    pub fn new() -> Self {
        let svc = Self {
            backends: Mutex::new(HashMap::new()),
            pilots: Mutex::new(Vec::new()),
            next_id: Mutex::new(0),
        };
        svc.register_backend(Arc::new(LocalBackend));
        svc.register_backend(Arc::new(SshEdgeBackend::default()));
        svc.register_backend(Arc::new(CloudVmBackend::default()));
        svc.register_backend(Arc::new(ServerlessBackend::new(64)));
        svc
    }

    /// Register (or replace) a backend plugin.
    pub fn register_backend(&self, backend: Arc<dyn ResourceBackend>) {
        self.backends.lock().insert(backend.scheme(), backend);
    }

    /// Registered schemes.
    pub fn schemes(&self) -> Vec<&'static str> {
        let mut s: Vec<&'static str> = self.backends.lock().keys().copied().collect();
        s.sort_unstable();
        s
    }

    /// Create a pilot and start provisioning it in the background.
    /// Returns immediately with the pilot in (or soon past) `New`.
    pub fn create_pilot(&self, desc: PilotDescription) -> Result<Pilot, PilotError> {
        desc.validate().map_err(PilotError::InvalidDescription)?;
        let backend = self
            .backends
            .lock()
            .get(desc.scheme())
            .cloned()
            .ok_or_else(|| PilotError::UnknownScheme(desc.scheme().to_string()))?;
        let id = {
            let mut n = self.next_id.lock();
            let id = *n;
            *n += 1;
            id
        };
        let pilot = Pilot::new(id, desc);
        self.pilots.lock().push(pilot.clone());
        let p = pilot.clone();
        std::thread::Builder::new()
            .name(format!("pilot-{id}-lifecycle"))
            .spawn(move || p.run_lifecycle(backend))
            .expect("spawn pilot lifecycle thread");
        Ok(pilot)
    }

    /// Create a pilot and block until it is Active (or fails).
    pub fn submit_and_wait(
        &self,
        desc: PilotDescription,
        timeout: Duration,
    ) -> Result<Pilot, PilotError> {
        let pilot = self.create_pilot(desc)?;
        pilot.wait_active(timeout)?;
        Ok(pilot)
    }

    /// Provision a fleet of pilots on ONE background thread and block
    /// until every one is Active (or the first failure/timeout).
    ///
    /// [`Self::create_pilot`] spawns a lifecycle thread per pilot; for a
    /// 1024-cell federation that is a 1024-thread spike just to flip
    /// state machines whose local backend boots instantly. Here the whole
    /// fleet shares a single transient `pilot-fleet-lifecycle` thread —
    /// the federation layer's O(k)-threads budget starts at provisioning.
    pub fn submit_fleet(
        &self,
        descs: Vec<PilotDescription>,
        timeout: Duration,
    ) -> Result<Vec<Pilot>, PilotError> {
        let mut work = Vec::with_capacity(descs.len());
        let mut fleet = Vec::with_capacity(descs.len());
        for desc in descs {
            desc.validate().map_err(PilotError::InvalidDescription)?;
            let backend = self
                .backends
                .lock()
                .get(desc.scheme())
                .cloned()
                .ok_or_else(|| PilotError::UnknownScheme(desc.scheme().to_string()))?;
            let id = {
                let mut n = self.next_id.lock();
                let id = *n;
                *n += 1;
                id
            };
            let pilot = Pilot::new(id, desc);
            self.pilots.lock().push(pilot.clone());
            fleet.push(pilot.clone());
            work.push((pilot, backend));
        }
        std::thread::Builder::new()
            .name("pilot-fleet-lifecycle".to_string())
            .spawn(move || {
                for (pilot, backend) in work {
                    pilot.run_lifecycle(backend);
                }
            })
            .expect("spawn fleet lifecycle thread");
        let deadline = std::time::Instant::now() + timeout;
        for pilot in &fleet {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            pilot.wait_active(left)?;
        }
        Ok(fleet)
    }

    /// All pilots ever created by this service.
    pub fn pilots(&self) -> Vec<Pilot> {
        self.pilots.lock().clone()
    }

    /// Cancel every non-terminal pilot.
    pub fn cancel_all(&self) {
        for p in self.pilots.lock().iter() {
            p.cancel();
        }
    }

    /// Enforce walltimes once: cancel every Active pilot that has outlived
    /// its walltime. Returns how many were reaped. (Walltime is otherwise
    /// advisory; call this from a periodic maintenance loop to make it
    /// binding, as a batch scheduler would.)
    pub fn reap_expired(&self) -> usize {
        let mut reaped = 0;
        for p in self.pilots.lock().iter() {
            if p.state() == crate::state::PilotState::Active && p.is_expired() {
                p.cancel();
                reaped += 1;
            }
        }
        reaped
    }

    /// Aggregate energy estimate across every pilot this service created —
    /// the fleet-level number an energy-aware scheduler (the paper's
    /// future-work direction) would optimise.
    pub fn fleet_energy_joules(&self) -> f64 {
        self.pilots.lock().iter().map(|p| p.energy().joules()).sum()
    }
}

impl Default for PilotComputeService {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for PilotComputeService {
    fn drop(&mut self) {
        self.cancel_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::BatchQueueBackend;
    use crate::queue::BatchQueue;
    use crate::state::PilotState;

    const WAIT: Duration = Duration::from_secs(5);

    #[test]
    fn local_pilot_activates_and_runs_tasks() {
        let svc = PilotComputeService::new();
        let pilot = svc
            .submit_and_wait(PilotDescription::local(2, 4.0), WAIT)
            .unwrap();
        assert_eq!(pilot.state(), PilotState::Active);
        let client = pilot.client().unwrap();
        let f = client.submit("probe", || Ok(7u32)).unwrap();
        assert_eq!(f.wait_as::<u32>().unwrap(), 7);
        pilot.release();
        assert_eq!(pilot.state(), PilotState::Done);
    }

    #[test]
    fn edge_pilot_has_boot_delay_and_right_envelope() {
        let svc = PilotComputeService::new();
        let pilot = svc
            .create_pilot(PilotDescription::edge_device("pi-1", "factory"))
            .unwrap();
        // Immediately after create it cannot be active yet (100 ms boot).
        assert_ne!(pilot.state(), PilotState::Active);
        pilot.wait_active(WAIT).unwrap();
        assert_eq!(pilot.description().cores, 1);
        assert_eq!(pilot.site(), "factory");
    }

    #[test]
    fn unknown_scheme_rejected() {
        let svc = PilotComputeService::new();
        let mut d = PilotDescription::local(1, 1.0);
        d.resource = "warp://drive".into();
        assert_eq!(
            svc.create_pilot(d).err(),
            Some(PilotError::UnknownScheme("warp".into()))
        );
    }

    #[test]
    fn invalid_description_rejected() {
        let svc = PilotComputeService::new();
        let mut d = PilotDescription::local(1, 1.0);
        d.cores = 0;
        assert!(matches!(
            svc.create_pilot(d),
            Err(PilotError::InvalidDescription(_))
        ));
    }

    #[test]
    fn client_before_active_fails() {
        let svc = PilotComputeService::new();
        let pilot = svc
            .create_pilot(PilotDescription::edge_device("pi", "lab"))
            .unwrap();
        // The 100 ms boot window is plenty to observe the pre-active error.
        if pilot.state() != PilotState::Active {
            assert!(matches!(pilot.client(), Err(PilotError::NotActive(_))));
        }
    }

    #[test]
    fn batch_pilot_goes_through_queue() {
        let svc = PilotComputeService::new();
        let queue = BatchQueue::new("normal", 1);
        svc.register_backend(Arc::new(BatchQueueBackend::new(queue.clone())));
        let p1 = svc
            .create_pilot(PilotDescription::hpc("normal", 4, 8.0))
            .unwrap();
        p1.wait_active(WAIT).unwrap();
        // Second pilot must wait in the queue while p1 holds the slot.
        let p2 = svc
            .create_pilot(PilotDescription::hpc("normal", 4, 8.0))
            .unwrap();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(p2.state(), PilotState::Queued);
        p1.release();
        p2.wait_active(WAIT).unwrap();
        p2.release();
    }

    #[test]
    fn cancel_before_active() {
        let svc = PilotComputeService::new();
        let pilot = svc
            .create_pilot(PilotDescription::edge_device("pi", "lab"))
            .unwrap();
        pilot.cancel();
        assert_eq!(pilot.state(), PilotState::Cancelled);
        // The lifecycle thread must not resurrect it.
        std::thread::sleep(Duration::from_millis(200));
        assert_eq!(pilot.state(), PilotState::Cancelled);
        assert!(pilot.client().is_err());
    }

    #[test]
    fn failed_provisioning_surfaces_message() {
        let svc = PilotComputeService::new();
        let mut d = PilotDescription::edge_device("pi", "lab");
        d.cores = 4;
        d.memory_gb = 64.0; // over the edge envelope
        let pilot = svc.create_pilot(d).unwrap();
        let err = pilot.wait_active(WAIT).unwrap_err();
        assert_eq!(err, PilotError::NotActive(PilotState::Failed));
        assert!(pilot.failure().unwrap().contains("64"));
    }

    #[test]
    fn pilot_hosts_broker_and_param_server() {
        let svc = PilotComputeService::new();
        let pilot = svc
            .submit_and_wait(PilotDescription::local(1, 2.0), WAIT)
            .unwrap();
        let broker = pilot.start_broker().unwrap();
        broker
            .create_topic("t", 1, pilot_broker::RetentionPolicy::unbounded())
            .unwrap();
        // Idempotent: same broker comes back.
        let broker2 = pilot.start_broker().unwrap();
        assert!(broker2.topic("t").is_ok());
        let ps = pilot.start_param_server().unwrap();
        ps.put("w", vec![1.0]);
        assert_eq!(pilot.start_param_server().unwrap().len(), 1);
    }

    #[test]
    fn energy_accounting_reflects_work() {
        let svc = PilotComputeService::new();
        let pilot = svc
            .submit_and_wait(PilotDescription::local(1, 2.0), WAIT)
            .unwrap();
        let client = pilot.client().unwrap();
        let f = client
            .submit("burn", || {
                std::thread::sleep(Duration::from_millis(50));
                Ok(())
            })
            .unwrap();
        f.wait().unwrap();
        let e = pilot.energy();
        assert!(e.busy_secs() >= 0.04, "busy={}", e.busy_secs());
        assert!(e.joules() > 0.0);
    }

    #[test]
    fn walltime_expiry_flag() {
        let svc = PilotComputeService::new();
        let desc = PilotDescription::local(1, 1.0).with_walltime(Duration::from_millis(30));
        let pilot = svc.submit_and_wait(desc, WAIT).unwrap();
        assert!(!pilot.is_expired());
        std::thread::sleep(Duration::from_millis(60));
        assert!(pilot.is_expired());
    }

    #[test]
    fn service_tracks_and_cancels_all() {
        let svc = PilotComputeService::new();
        for _ in 0..3 {
            svc.submit_and_wait(PilotDescription::local(1, 1.0), WAIT)
                .unwrap();
        }
        assert_eq!(svc.pilots().len(), 3);
        svc.cancel_all();
        for p in svc.pilots() {
            assert_eq!(p.state(), PilotState::Cancelled);
        }
    }

    #[test]
    fn reap_expired_cancels_only_overdue() {
        let svc = PilotComputeService::new();
        let short = svc
            .submit_and_wait(
                PilotDescription::local(1, 1.0).with_walltime(Duration::from_millis(20)),
                WAIT,
            )
            .unwrap();
        let long = svc
            .submit_and_wait(
                PilotDescription::local(1, 1.0).with_walltime(Duration::from_secs(3600)),
                WAIT,
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(svc.reap_expired(), 1);
        assert_eq!(short.state(), PilotState::Cancelled);
        assert_eq!(long.state(), PilotState::Active);
    }

    #[test]
    fn fleet_energy_aggregates() {
        let svc = PilotComputeService::new();
        let a = svc
            .submit_and_wait(PilotDescription::local(1, 1.0), WAIT)
            .unwrap();
        let b = svc
            .submit_and_wait(PilotDescription::local(1, 1.0), WAIT)
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let fleet = svc.fleet_energy_joules();
        assert!(fleet > 0.0);
        assert!((fleet - (a.energy().joules() + b.energy().joules())).abs() < fleet * 0.5);
    }

    #[test]
    fn serverless_pilot_through_service() {
        let svc = PilotComputeService::new();
        let mut desc = PilotDescription::local(1, 2.0);
        desc.resource = "serverless://faas".into();
        let pilot = svc.submit_and_wait(desc, WAIT).unwrap();
        let f = pilot.client().unwrap().submit("fn", || Ok(1u8)).unwrap();
        assert_eq!(f.wait_as::<u8>().unwrap(), 1);
    }

    #[test]
    fn fleet_activates_on_one_lifecycle_thread() {
        let svc = PilotComputeService::new();
        let fleet = svc
            .submit_fleet(
                (0..32).map(|_| PilotDescription::pooled(1, 0.5)).collect(),
                WAIT,
            )
            .unwrap();
        assert_eq!(fleet.len(), 32);
        let mut ids = std::collections::BTreeSet::new();
        for p in &fleet {
            assert_eq!(p.state(), PilotState::Active);
            // Pooled: capacity booked, but no private cluster to submit to.
            assert_eq!(p.client().err(), Some(PilotError::Pooled));
            // Hosting still works without a cluster.
            assert!(p.start_broker().is_ok());
            ids.insert(p.id());
        }
        assert_eq!(ids.len(), 32, "fleet ids are unique");
        assert_eq!(svc.pilots().len(), 32);
    }

    #[test]
    fn fleet_rejects_invalid_description_up_front() {
        let svc = PilotComputeService::new();
        let mut bad = PilotDescription::local(1, 1.0);
        bad.cores = 0;
        let err = svc
            .submit_fleet(vec![PilotDescription::local(1, 1.0), bad], WAIT)
            .unwrap_err();
        assert!(matches!(err, PilotError::InvalidDescription(_)));
    }

    #[test]
    fn pilot_ids_are_unique() {
        let svc = PilotComputeService::new();
        let a = svc.create_pilot(PilotDescription::local(1, 1.0)).unwrap();
        let b = svc.create_pilot(PilotDescription::local(1, 1.0)).unwrap();
        assert_ne!(a.id(), b.id());
    }
}
