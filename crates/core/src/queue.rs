//! A capacity-limited FIFO batch queue, simulating HPC queue-wait.
//!
//! HPC pilots do not boot instantly: they sit in a scheduler queue until a
//! slot frees up. [`BatchQueue`] reproduces that lifecycle stage — jobs
//! acquire one of `capacity` slots in submission order; a pilot's `Queued`
//! state lasts exactly as long as its slot wait.

use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

struct QueueState {
    /// Tickets waiting for a slot, FIFO.
    waiting: VecDeque<u64>,
    running: usize,
    next_ticket: u64,
}

/// A shared batch queue with `capacity` concurrent jobs.
#[derive(Clone)]
pub struct BatchQueue {
    name: String,
    capacity: usize,
    state: Arc<Mutex<QueueState>>,
    slot_freed: Arc<Condvar>,
}

/// RAII slot: dropping it releases the slot to the next waiter.
pub struct QueueSlot {
    queue: BatchQueue,
}

impl Drop for QueueSlot {
    fn drop(&mut self) {
        let mut st = self.queue.state.lock();
        st.running -= 1;
        self.queue.slot_freed.notify_all();
    }
}

impl BatchQueue {
    /// Create a queue with the given concurrent-job capacity.
    pub fn new(name: &str, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be > 0");
        Self {
            name: name.to_string(),
            capacity,
            state: Arc::new(Mutex::new(QueueState {
                waiting: VecDeque::new(),
                running: 0,
                next_ticket: 0,
            })),
            slot_freed: Arc::new(Condvar::new()),
        }
    }

    /// Queue name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Jobs currently running.
    pub fn running(&self) -> usize {
        self.state.lock().running
    }

    /// Jobs currently waiting.
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting.len()
    }

    /// Block until a slot is available (FIFO), up to `timeout`.
    /// Returns the slot, or `None` on timeout (the ticket is withdrawn).
    pub fn acquire(&self, timeout: Duration) -> Option<QueueSlot> {
        let mut st = self.state.lock();
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push_back(ticket);
        loop {
            // Our turn iff we are at the head and a slot is free.
            if st.waiting.front() == Some(&ticket) && st.running < self.capacity {
                st.waiting.pop_front();
                st.running += 1;
                // Wake others: the new head may also find a free slot.
                self.slot_freed.notify_all();
                return Some(QueueSlot {
                    queue: self.clone(),
                });
            }
            if self.slot_freed.wait_for(&mut st, timeout).timed_out() {
                st.waiting.retain(|&t| t != ticket);
                self.slot_freed.notify_all();
                return None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn capacity_limits_concurrency() {
        let q = BatchQueue::new("normal", 2);
        let s1 = q.acquire(Duration::from_secs(1)).unwrap();
        let _s2 = q.acquire(Duration::from_secs(1)).unwrap();
        assert_eq!(q.running(), 2);
        // Third blocks until one releases.
        let q2 = q.clone();
        let h = std::thread::spawn(move || {
            let start = Instant::now();
            let _s3 = q2.acquire(Duration::from_secs(5)).unwrap();
            start.elapsed()
        });
        std::thread::sleep(Duration::from_millis(50));
        drop(s1);
        let waited = h.join().unwrap();
        assert!(waited >= Duration::from_millis(40), "waited={waited:?}");
    }

    #[test]
    fn timeout_withdraws_ticket() {
        let q = BatchQueue::new("normal", 1);
        let _held = q.acquire(Duration::from_secs(1)).unwrap();
        assert!(q.acquire(Duration::from_millis(30)).is_none());
        assert_eq!(q.waiting(), 0);
    }

    #[test]
    fn fifo_order() {
        let q = BatchQueue::new("normal", 1);
        let first = q.acquire(Duration::from_secs(1)).unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut handles = Vec::new();
        for i in 0..3 {
            let q = q.clone();
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                // Stagger submissions to fix the intended order.
                std::thread::sleep(Duration::from_millis(20 * (i as u64 + 1)));
                let slot = q.acquire(Duration::from_secs(5)).unwrap();
                order.lock().push(i);
                drop(slot);
            }));
        }
        std::thread::sleep(Duration::from_millis(120));
        drop(first);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), vec![0, 1, 2]);
    }

    #[test]
    fn slot_released_on_drop() {
        let q = BatchQueue::new("normal", 1);
        {
            let _s = q.acquire(Duration::from_secs(1)).unwrap();
            assert_eq!(q.running(), 1);
        }
        assert_eq!(q.running(), 0);
        assert!(q.acquire(Duration::from_millis(10)).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be > 0")]
    fn zero_capacity_panics() {
        BatchQueue::new("bad", 0);
    }
}
