//! Pilot error types.

/// Failures while creating or operating pilots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PilotError {
    /// The description failed validation.
    InvalidDescription(String),
    /// No backend plugin is registered for the URL scheme.
    UnknownScheme(String),
    /// The backend could not provision the resource.
    ProvisioningFailed(String),
    /// The operation needs an Active pilot, but it is in another state.
    NotActive(crate::state::PilotState),
    /// Waiting for the pilot to activate timed out.
    Timeout,
    /// The pilot's walltime was exceeded.
    WalltimeExceeded,
    /// The pilot is pooled: it books capacity but hosts no private task
    /// cluster, so cluster-backed operations are unavailable.
    Pooled,
}

impl std::fmt::Display for PilotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PilotError::InvalidDescription(msg) => write!(f, "invalid description: {msg}"),
            PilotError::UnknownScheme(s) => write!(f, "no backend for scheme '{s}'"),
            PilotError::ProvisioningFailed(msg) => write!(f, "provisioning failed: {msg}"),
            PilotError::NotActive(s) => write!(f, "pilot not active (state: {s})"),
            PilotError::Timeout => write!(f, "timed out waiting for pilot"),
            PilotError::WalltimeExceeded => write!(f, "pilot walltime exceeded"),
            PilotError::Pooled => {
                write!(f, "pooled pilot hosts no task cluster (compute is shared)")
            }
        }
    }
}

impl std::error::Error for PilotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            PilotError::UnknownScheme("warp".into()).to_string(),
            "no backend for scheme 'warp'"
        );
        assert!(PilotError::NotActive(crate::state::PilotState::Queued)
            .to_string()
            .contains("queued"));
    }
}
