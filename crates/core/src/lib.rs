//! # pilot-core — the pilot abstraction
//!
//! "The term pilot refers to a placeholder job in a queuing system that
//! allocates resources on which the application can execute tasks. A pilot
//! generally refers to a dedicated resource set that an application owns,
//! e.g., a virtual machine, a job partition (HPC), or a Lambda function"
//! (paper Section II-A, citing the P* model \[10\]). The pilot abstraction
//! *decouples resource and workload management*: acquiring the resource
//! (step 1 of Fig. 1) is separate from running tasks on it (step 2).
//!
//! This crate implements that abstraction over simulated resources:
//!
//! * [`PilotDescription`] — what to allocate: a resource URL
//!   (`local://`, `ssh://host`, `openstack://site/flavor`, `batch://queue`),
//!   cores, memory, walltime, and the site it lives on. Presets mirror the
//!   paper's testbed (LRZ medium 4 cores/18 GB, LRZ large 10 cores/44 GB,
//!   Jetstream medium 6 cores/16 GB, RasPi-class edge devices).
//! * [`ResourceBackend`] — the plugin interface ("supports various resource
//!   types via a plugin-based architecture"). Shipped plugins simulate the
//!   lifecycle cost of each class: instant local processes, SSH-bootstrapped
//!   edge devices, cloud VMs with boot delays, and an HPC [`BatchQueue`]
//!   with capacity-limited FIFO scheduling and real queue-wait behaviour.
//! * [`Pilot`] — the placeholder job: a state machine
//!   (`New → Submitted → Queued → Active → Done/Failed/Cancelled`) that, on
//!   activation, boots a `pilot-dataflow` cluster sized to the description
//!   (the paper's managed Dask cluster), and can additionally host a
//!   `pilot-broker` broker or a `pilot-params` parameter server — "the
//!   pilot abstraction can manage brokering and data processing frameworks,
//!   e.g., Kafka and Dask".
//! * [`PilotComputeService`] — the application-facing factory that routes
//!   descriptions to backends by URL scheme and tracks every pilot it made.
//!
//! Energy accounting (`pilot-metrics`' future-work hook) is wired through:
//! each pilot knows its hardware class and reports joules from its cluster's
//! busy time.

pub mod backend;
pub mod description;
pub mod error;
pub mod pilot;
pub mod queue;
pub mod service;
pub mod state;

pub use backend::{
    BatchQueueBackend, CloudVmBackend, LocalBackend, ProvisionedResource, ResourceBackend,
    ServerlessBackend, SshEdgeBackend,
};
pub use description::PilotDescription;
pub use error::PilotError;
pub use pilot::Pilot;
pub use queue::BatchQueue;
pub use service::PilotComputeService;
pub use state::PilotState;
