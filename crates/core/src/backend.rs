//! Resource-backend plugins.
//!
//! "Pilot-Edge ... supports various resource types via a plugin-based
//! architecture, e.g., HPC and cloud clusters (such as OpenStack, AWS),
//! smaller IoT devices (via SSH)" (paper Section II-B). A backend's job is
//! purely the *provisioning* side of the pilot lifecycle: wait for the
//! resource (queue), then boot it. Task execution on the provisioned
//! resource is uniform (`pilot-dataflow`), which is exactly the decoupling
//! the pilot abstraction is about.
//!
//! Boot delays are simulated at ~100× time compression (a real OpenStack VM
//! takes tens of seconds; the simulated one takes a few hundred ms) so the
//! lifecycle ordering — local < SSH edge < cloud VM < batch HPC — is
//! preserved at laptop-friendly test times. All delays are configurable.

use crate::description::PilotDescription;
use crate::error::PilotError;
use crate::queue::{BatchQueue, QueueSlot};
use std::time::Duration;

/// What a backend hands back once the resource is available.
pub struct ProvisionedResource {
    /// Held for the pilot's lifetime; dropping it releases the queue slot.
    pub slot: Option<QueueSlot>,
    /// Simulated boot time the pilot sleeps before turning Active.
    pub boot_delay: Duration,
}

/// A provisioning plugin, selected by resource-URL scheme.
pub trait ResourceBackend: Send + Sync {
    /// The URL scheme this backend serves (`"local"`, `"ssh"`, ...).
    fn scheme(&self) -> &'static str;

    /// Block until the resource is available (queue wait happens here) and
    /// return its boot parameters.
    fn provision(&self, desc: &PilotDescription) -> Result<ProvisionedResource, PilotError>;
}

/// In-process resources: instant.
#[derive(Debug, Default)]
pub struct LocalBackend;

impl ResourceBackend for LocalBackend {
    fn scheme(&self) -> &'static str {
        "local"
    }

    fn provision(&self, _desc: &PilotDescription) -> Result<ProvisionedResource, PilotError> {
        Ok(ProvisionedResource {
            slot: None,
            boot_delay: Duration::ZERO,
        })
    }
}

/// IoT devices reached over SSH: a short connect-and-bootstrap delay.
#[derive(Debug)]
pub struct SshEdgeBackend {
    /// Simulated ssh + agent bootstrap time.
    pub boot_delay: Duration,
}

impl Default for SshEdgeBackend {
    fn default() -> Self {
        Self {
            boot_delay: Duration::from_millis(100),
        }
    }
}

impl ResourceBackend for SshEdgeBackend {
    fn scheme(&self) -> &'static str {
        "ssh"
    }

    fn provision(&self, desc: &PilotDescription) -> Result<ProvisionedResource, PilotError> {
        // An edge device is a fixed physical box: requesting more than its
        // class provides is a provisioning failure, not a silent clamp.
        if desc.cores > 4 || desc.memory_gb > 8.0 {
            return Err(PilotError::ProvisioningFailed(format!(
                "edge device cannot provide {} cores / {} GB",
                desc.cores, desc.memory_gb
            )));
        }
        Ok(ProvisionedResource {
            slot: None,
            boot_delay: self.boot_delay,
        })
    }
}

/// Cloud VMs (OpenStack/AWS-class): a boot delay scaling mildly with size.
#[derive(Debug)]
pub struct CloudVmBackend {
    /// Base boot time for the smallest flavor.
    pub base_boot: Duration,
}

impl Default for CloudVmBackend {
    fn default() -> Self {
        Self {
            base_boot: Duration::from_millis(250),
        }
    }
}

impl ResourceBackend for CloudVmBackend {
    fn scheme(&self) -> &'static str {
        "openstack"
    }

    fn provision(&self, desc: &PilotDescription) -> Result<ProvisionedResource, PilotError> {
        // Larger flavors take marginally longer to schedule and boot.
        let factor = 1.0 + (desc.cores as f64 / 16.0);
        Ok(ProvisionedResource {
            slot: None,
            boot_delay: self.base_boot.mul_f64(factor),
        })
    }
}

/// HPC partitions behind a batch queue: capacity-limited FIFO wait, then a
/// node-boot (prologue) delay.
pub struct BatchQueueBackend {
    pub queue: BatchQueue,
    /// Maximum time to sit in the queue before giving up.
    pub queue_timeout: Duration,
    /// Node prologue time once scheduled.
    pub boot_delay: Duration,
}

impl BatchQueueBackend {
    /// A backend over an existing queue.
    pub fn new(queue: BatchQueue) -> Self {
        Self {
            queue,
            queue_timeout: Duration::from_secs(30),
            boot_delay: Duration::from_millis(50),
        }
    }
}

impl ResourceBackend for BatchQueueBackend {
    fn scheme(&self) -> &'static str {
        "batch"
    }

    fn provision(&self, _desc: &PilotDescription) -> Result<ProvisionedResource, PilotError> {
        let slot = self
            .queue
            .acquire(self.queue_timeout)
            .ok_or(PilotError::Timeout)?;
        Ok(ProvisionedResource {
            slot: Some(slot),
            boot_delay: self.boot_delay,
        })
    }
}

/// Serverless cloud functions: the pilot abstraction also covers "a Lambda
/// function" (paper Section II-A; ref. \[11\] characterises serverless
/// streaming). Provisioning semantics: bounded provider concurrency, a
/// cold-start penalty for every instance beyond the warm pool, and
/// near-instant reuse of warm instances.
pub struct ServerlessBackend {
    /// Provider-side concurrency limit.
    limit: BatchQueue,
    /// Cold-start penalty for a fresh instance.
    pub cold_start: Duration,
    /// Warm-reuse delay.
    pub warm_start: Duration,
    /// How long to wait for free concurrency before giving up.
    pub queue_timeout: Duration,
    /// Instances launched so far — releases leave instances warm, so any
    /// provision beyond the historical peak is a cold start.
    launched: parking_lot::Mutex<usize>,
}

impl ServerlessBackend {
    /// A backend with the given provider concurrency limit.
    pub fn new(concurrency: usize) -> Self {
        Self {
            limit: BatchQueue::new("serverless", concurrency),
            cold_start: Duration::from_millis(200),
            warm_start: Duration::from_millis(5),
            queue_timeout: Duration::from_secs(30),
            launched: parking_lot::Mutex::new(0),
        }
    }

    /// Instances launched (≈ cold starts experienced) so far.
    pub fn cold_starts(&self) -> usize {
        *self.launched.lock()
    }
}

impl ResourceBackend for ServerlessBackend {
    fn scheme(&self) -> &'static str {
        "serverless"
    }

    fn provision(&self, desc: &PilotDescription) -> Result<ProvisionedResource, PilotError> {
        // Functions are small: provider caps per-instance resources.
        if desc.cores > 2 || desc.memory_gb > 10.0 {
            return Err(PilotError::ProvisioningFailed(format!(
                "serverless instances cap at 2 cores / 10 GB, asked {} cores / {} GB",
                desc.cores, desc.memory_gb
            )));
        }
        let slot = self
            .limit
            .acquire(self.queue_timeout)
            .ok_or(PilotError::Timeout)?;
        let boot_delay = {
            let mut launched = self.launched.lock();
            let active = self.limit.running();
            if active > *launched {
                *launched = active;
                self.cold_start
            } else {
                self.warm_start
            }
        };
        Ok(ProvisionedResource {
            slot: Some(slot),
            boot_delay,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_is_instant() {
        let b = LocalBackend;
        let p = b.provision(&PilotDescription::local(2, 4.0)).unwrap();
        assert_eq!(p.boot_delay, Duration::ZERO);
        assert!(p.slot.is_none());
    }

    #[test]
    fn ssh_rejects_oversized_requests() {
        let b = SshEdgeBackend::default();
        let mut d = PilotDescription::edge_device("pi", "lab");
        d.cores = 64;
        assert!(matches!(
            b.provision(&d),
            Err(PilotError::ProvisioningFailed(_))
        ));
    }

    #[test]
    fn ssh_accepts_edge_envelope() {
        let b = SshEdgeBackend::default();
        let p = b
            .provision(&PilotDescription::edge_device("pi", "lab"))
            .unwrap();
        assert_eq!(p.boot_delay, Duration::from_millis(100));
    }

    #[test]
    fn cloud_boot_scales_with_flavor() {
        let b = CloudVmBackend::default();
        let small = b.provision(&PilotDescription::lrz_medium()).unwrap();
        let large = b.provision(&PilotDescription::lrz_large()).unwrap();
        assert!(large.boot_delay > small.boot_delay);
    }

    #[test]
    fn batch_waits_in_queue() {
        let q = BatchQueue::new("normal", 1);
        let held = q.acquire(Duration::from_secs(1)).unwrap();
        let mut backend = BatchQueueBackend::new(q);
        backend.queue_timeout = Duration::from_millis(30);
        assert_eq!(
            backend
                .provision(&PilotDescription::hpc("normal", 8, 16.0))
                .err(),
            Some(PilotError::Timeout)
        );
        drop(held);
        assert!(backend
            .provision(&PilotDescription::hpc("normal", 8, 16.0))
            .is_ok());
    }

    #[test]
    fn serverless_first_instance_is_cold_then_warm() {
        let b = ServerlessBackend::new(2);
        let desc = PilotDescription {
            resource: "serverless://lambda".into(),
            cores: 1,
            memory_gb: 2.0,
            walltime: None,
            site: "cloud".into(),
            class: pilot_metrics::ResourceClass::CloudMedium,
            pooled: false,
        };
        let p1 = b.provision(&desc).unwrap();
        assert_eq!(p1.boot_delay, b.cold_start);
        assert_eq!(b.cold_starts(), 1);
        drop(p1); // instance returns to the warm pool
        let p2 = b.provision(&desc).unwrap();
        assert_eq!(p2.boot_delay, b.warm_start, "reuse must be warm");
        assert_eq!(b.cold_starts(), 1);
    }

    #[test]
    fn serverless_concurrency_limit_enforced() {
        let mut b = ServerlessBackend::new(1);
        b.queue_timeout = Duration::from_millis(30);
        let desc = PilotDescription {
            resource: "serverless://lambda".into(),
            cores: 1,
            memory_gb: 2.0,
            walltime: None,
            site: "cloud".into(),
            class: pilot_metrics::ResourceClass::CloudMedium,
            pooled: false,
        };
        let held = b.provision(&desc).unwrap();
        assert_eq!(b.provision(&desc).err(), Some(PilotError::Timeout));
        drop(held);
        assert!(b.provision(&desc).is_ok());
    }

    #[test]
    fn serverless_rejects_oversized_functions() {
        let b = ServerlessBackend::new(4);
        let mut desc = PilotDescription::local(1, 2.0);
        desc.resource = "serverless://lambda".into();
        desc.cores = 8;
        assert!(matches!(
            b.provision(&desc),
            Err(PilotError::ProvisioningFailed(_))
        ));
    }

    #[test]
    fn schemes_are_distinct() {
        assert_eq!(LocalBackend.scheme(), "local");
        assert_eq!(SshEdgeBackend::default().scheme(), "ssh");
        assert_eq!(CloudVmBackend::default().scheme(), "openstack");
        assert_eq!(ServerlessBackend::new(1).scheme(), "serverless");
    }
}
