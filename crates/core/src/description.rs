//! Pilot descriptions: what resource to allocate, where.

use pilot_metrics::ResourceClass;
use std::time::Duration;

/// Description of the resource a pilot should hold.
///
/// The `resource` URL selects the backend plugin by scheme, mirroring the
/// pilot framework's resource URLs (e.g. RADICAL-Pilot's
/// `slurm://machine`): `local://`, `ssh://<device>`,
/// `openstack://<site>/<flavor>`, `batch://<queue>`.
#[derive(Debug, Clone, PartialEq)]
pub struct PilotDescription {
    /// Backend-selecting resource URL.
    pub resource: String,
    /// Worker cores the pilot provides.
    pub cores: usize,
    /// Memory in GB shared by the pilot's workers.
    pub memory_gb: f64,
    /// Maximum lifetime. `None` = unlimited.
    pub walltime: Option<Duration>,
    /// The `pilot-netsim` site this pilot lives on (used for placement and
    /// link selection).
    pub site: String,
    /// Hardware class for energy accounting.
    pub class: ResourceClass,
    /// Pooled pilots book capacity (cores/memory accounting, broker and
    /// parameter-server hosting) without booting a private task cluster —
    /// their compute runs on an externally shared pool. This is how a
    /// 1024-cell federation activates 1024 pilots while adding zero
    /// worker threads per pilot; see `pilot_edge::federation`.
    pub pooled: bool,
}

impl PilotDescription {
    /// A local pilot (in-process, boots instantly). Handy default for tests.
    pub fn local(cores: usize, memory_gb: f64) -> Self {
        Self {
            resource: "local://".to_string(),
            cores,
            memory_gb,
            walltime: None,
            site: "local".to_string(),
            class: ResourceClass::CloudMedium,
            pooled: false,
        }
    }

    /// A RasPi-class edge device reached over SSH: 1 core, 4 GB — exactly
    /// the envelope the paper simulates per edge device ("allocating one
    /// core and about 4 GB of memory, comparable to a current Raspberry
    /// Pi").
    pub fn edge_device(name: &str, site: &str) -> Self {
        Self {
            resource: format!("ssh://{name}"),
            cores: 1,
            memory_gb: 4.0,
            walltime: None,
            site: site.to_string(),
            class: ResourceClass::EdgeDevice,
            pooled: false,
        }
    }

    /// The paper's LRZ "medium" VM: 4 cores, 18 GB.
    pub fn lrz_medium() -> Self {
        Self {
            resource: "openstack://lrz/medium".to_string(),
            cores: 4,
            memory_gb: 18.0,
            walltime: None,
            site: "lrz".to_string(),
            class: ResourceClass::CloudMedium,
            pooled: false,
        }
    }

    /// The paper's LRZ "large" VM: 10 cores, 44 GB (used for all processing
    /// tasks in Section III.2).
    pub fn lrz_large() -> Self {
        Self {
            resource: "openstack://lrz/large".to_string(),
            cores: 10,
            memory_gb: 44.0,
            walltime: None,
            site: "lrz".to_string(),
            class: ResourceClass::CloudLarge,
            pooled: false,
        }
    }

    /// The paper's Jetstream "medium" VM: 6 cores, 16 GB.
    pub fn jetstream_medium() -> Self {
        Self {
            resource: "openstack://jetstream/medium".to_string(),
            cores: 6,
            memory_gb: 16.0,
            walltime: None,
            site: "jetstream".to_string(),
            class: ResourceClass::CloudMedium,
            pooled: false,
        }
    }

    /// An HPC partition reached through a batch queue.
    pub fn hpc(queue: &str, cores: usize, memory_gb: f64) -> Self {
        Self {
            resource: format!("batch://{queue}"),
            cores,
            memory_gb,
            walltime: Some(Duration::from_secs(3600)),
            site: "hpc".to_string(),
            class: ResourceClass::HpcNode,
            pooled: false,
        }
    }

    /// A pooled local pilot: books `cores`/`memory_gb` of capacity and can
    /// host a broker or parameter server, but boots no private task
    /// cluster — its compute multiplexes onto an externally shared pool.
    /// The per-cell pilot shape for large federations.
    pub fn pooled(cores: usize, memory_gb: f64) -> Self {
        let mut d = Self::local(cores, memory_gb);
        d.pooled = true;
        d
    }

    /// Builder: mark the pilot pooled (no private task cluster).
    pub fn with_pooled(mut self) -> Self {
        self.pooled = true;
        self
    }

    /// Builder: set the walltime.
    pub fn with_walltime(mut self, walltime: Duration) -> Self {
        self.walltime = Some(walltime);
        self
    }

    /// Builder: set the site.
    pub fn with_site(mut self, site: &str) -> Self {
        self.site = site.to_string();
        self
    }

    /// URL scheme of the resource (backend selector).
    pub fn scheme(&self) -> &str {
        self.resource
            .split_once("://")
            .map(|(s, _)| s)
            .unwrap_or("local")
    }

    /// Validate, returning the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("cores must be > 0".into());
        }
        if self.memory_gb <= 0.0 {
            return Err("memory_gb must be > 0".into());
        }
        if !self.resource.contains("://") && self.resource != "local" {
            return Err(format!("resource URL '{}' has no scheme", self.resource));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_vm_types() {
        let m = PilotDescription::lrz_medium();
        assert_eq!((m.cores, m.memory_gb), (4, 18.0));
        let l = PilotDescription::lrz_large();
        assert_eq!((l.cores, l.memory_gb), (10, 44.0));
        let j = PilotDescription::jetstream_medium();
        assert_eq!((j.cores, j.memory_gb), (6, 16.0));
        let e = PilotDescription::edge_device("pi-1", "factory");
        assert_eq!((e.cores, e.memory_gb), (1, 4.0));
    }

    #[test]
    fn scheme_extraction() {
        assert_eq!(PilotDescription::lrz_large().scheme(), "openstack");
        assert_eq!(PilotDescription::edge_device("x", "s").scheme(), "ssh");
        assert_eq!(PilotDescription::local(1, 1.0).scheme(), "local");
        assert_eq!(PilotDescription::hpc("normal", 64, 256.0).scheme(), "batch");
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut d = PilotDescription::local(1, 1.0);
        d.cores = 0;
        assert!(d.validate().is_err());
        d.cores = 1;
        d.memory_gb = 0.0;
        assert!(d.validate().is_err());
        d.memory_gb = 1.0;
        d.resource = "garbage".into();
        assert!(d.validate().is_err());
    }

    #[test]
    fn builders() {
        let d = PilotDescription::local(2, 4.0)
            .with_walltime(Duration::from_secs(60))
            .with_site("lab");
        assert_eq!(d.walltime, Some(Duration::from_secs(60)));
        assert_eq!(d.site, "lab");
    }

    #[test]
    fn pooled_constructor_and_builder() {
        assert!(!PilotDescription::local(1, 1.0).pooled);
        let p = PilotDescription::pooled(2, 4.0);
        assert!(p.pooled);
        assert_eq!(p.scheme(), "local");
        assert!(PilotDescription::local(1, 1.0).with_pooled().pooled);
        assert!(p.validate().is_ok());
    }
}
