//! # pilot-ml — the outlier-detection models of the Pilot-Edge evaluation
//!
//! The paper characterises Pilot-Edge with three machine-learning models for
//! streaming outlier detection (Section III.2):
//!
//! * **k-means** (25 clusters, matching the generator's 25 mixture
//!   components) — a point's outlier score is its distance to the nearest
//!   centroid. Implemented in [`kmeans`] with both batch Lloyd's iterations
//!   and the mini-batch streaming update of Sculley (per-centroid learning
//!   rate `1/count`), since the paper updates the model "based on the
//!   incoming data".
//! * **Isolation forest** (PyOD defaults: 100 trees, 256-point subsamples) —
//!   implemented in [`isoforest`] following Liu, Ting & Zhou (2008): a
//!   point's score is `2^(−E[h(x)]/c(ψ))` over the ensemble's path lengths.
//! * **Auto-encoder** (PyOD's Keras model with hidden layers [64, 32, 32,
//!   64] and — as the paper states — **11,552 trainable parameters**) —
//!   implemented in [`autoencoder`] as a dense MLP with ReLU activations
//!   trained by backpropagation (SGD or Adam); the outlier score is the
//!   reconstruction error.
//!
//! All three implement the [`OutlierModel`] trait so the Pilot-Edge pipeline
//! can hot-swap them (the paper's "exchanging low- vs high-fidelity models"
//! at runtime), and all three serialise their parameters to a flat `f64`
//! vector ([`OutlierModel::weights`]) for distribution through the
//! parameter server.
//!
//! Supporting modules: [`linalg`] (small dense matrix kernels), [`dataset`]
//! (borrowed row-major views + standardisation), [`preprocess`] (streaming
//! z-score standardisation — the paper's "pre-processing" stage), [`eval`]
//! (ROC-AUC, precision@k for ground-truth scoring), and [`federated`]
//! (FedAvg aggregation — the paper's named future-work scenario).

pub mod autoencoder;
pub mod dataset;
pub mod eval;
pub mod federated;
pub mod isoforest;
pub mod kmeans;
pub mod linalg;
pub mod outlier;
pub mod preprocess;

pub use autoencoder::{AutoEncoder, AutoEncoderConfig};
pub use dataset::Dataset;
pub use isoforest::{IsolationForest, IsolationForestConfig};
pub use kmeans::{KMeans, KMeansConfig};
pub use outlier::{ModelKind, OutlierModel};
pub use preprocess::StandardScaler;
