//! Borrowed row-major dataset views and standardisation.

/// A borrowed view over `rows × cols` values in row-major order.
///
/// The pipeline's hot path decodes wire payloads into a flat `Vec<f64>`;
/// `Dataset` lets the models consume that buffer without copying.
#[derive(Debug, Clone, Copy)]
pub struct Dataset<'a> {
    data: &'a [f64],
    rows: usize,
    cols: usize,
}

impl<'a> Dataset<'a> {
    /// Wrap a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn new(data: &'a [f64], rows: usize, cols: usize) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "dataset buffer length {} != rows {} * cols {}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Number of rows (points).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns (features).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a feature slice.
    #[inline]
    pub fn row(&self, i: usize) -> &'a [f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The underlying flat buffer.
    #[inline]
    pub fn raw(&self) -> &'a [f64] {
        self.data
    }

    /// Iterate over rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = &'a [f64]> + '_ {
        (0..self.rows).map(move |i| self.row(i))
    }

    /// True if the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Per-column mean.
    pub fn column_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.cols];
        if self.rows == 0 {
            return means;
        }
        for row in self.iter_rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= self.rows as f64;
        }
        means
    }

    /// Per-column population standard deviation.
    pub fn column_stds(&self) -> Vec<f64> {
        let means = self.column_means();
        let mut vars = vec![0.0; self.cols];
        if self.rows == 0 {
            return vars;
        }
        for row in self.iter_rows() {
            for ((v, &x), &m) in vars.iter_mut().zip(row).zip(&means) {
                let d = x - m;
                *v += d * d;
            }
        }
        for v in &mut vars {
            *v = (*v / self.rows as f64).sqrt();
        }
        vars
    }

    /// Z-score standardisation into a new owned buffer. Columns with zero
    /// standard deviation are centred but not scaled.
    pub fn standardized(&self) -> Vec<f64> {
        let means = self.column_means();
        let stds = self.column_stds();
        let mut out = Vec::with_capacity(self.data.len());
        for row in self.iter_rows() {
            for ((&x, &m), &s) in row.iter().zip(&means).zip(&stds) {
                out.push(if s > 0.0 { (x - m) / s } else { x - m });
            }
        }
        out
    }
}

/// Squared Euclidean distance between two equal-length slices.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_access() {
        let data = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let ds = Dataset::new(&data, 3, 2);
        assert_eq!(ds.row(0), &[1.0, 2.0]);
        assert_eq!(ds.row(2), &[5.0, 6.0]);
        assert_eq!(ds.rows(), 3);
        assert_eq!(ds.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "dataset buffer length")]
    fn wrong_length_panics() {
        let data = [1.0, 2.0, 3.0];
        Dataset::new(&data, 2, 2);
    }

    #[test]
    fn column_means_and_stds() {
        let data = [1.0, 10.0, 3.0, 10.0, 5.0, 10.0];
        let ds = Dataset::new(&data, 3, 2);
        assert_eq!(ds.column_means(), vec![3.0, 10.0]);
        let stds = ds.column_stds();
        assert!((stds[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(stds[1], 0.0);
    }

    #[test]
    fn standardize_zero_mean_unit_std() {
        let data = [1.0, 3.0, 5.0, 7.0];
        let ds = Dataset::new(&data, 4, 1);
        let z = ds.standardized();
        let zds = Dataset::new(&z, 4, 1);
        let m = zds.column_means()[0];
        let s = zds.column_stds()[0];
        assert!(m.abs() < 1e-12);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn standardize_constant_column_centred_only() {
        let data = [5.0, 5.0, 5.0];
        let ds = Dataset::new(&data, 3, 1);
        assert_eq!(ds.standardized(), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn empty_dataset() {
        let data: [f64; 0] = [];
        let ds = Dataset::new(&data, 0, 4);
        assert!(ds.is_empty());
        assert_eq!(ds.column_means(), vec![0.0; 4]);
    }

    #[test]
    fn sq_dist_basics() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn iter_rows_covers_all() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let ds = Dataset::new(&data, 2, 2);
        let rows: Vec<&[f64]> = ds.iter_rows().collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1], &[3.0, 4.0]);
    }
}
