//! Streaming pre-processing: the first stage of the paper's cloud
//! processing ("the processing tasks, which include pre-processing,
//! training and inference", Section III.2).
//!
//! [`StandardScaler`] maintains running per-feature mean/variance with
//! Welford's online algorithm (exact, numerically stable, mergeable), so a
//! stream can be z-scored against statistics accumulated over *all* data
//! seen so far — the standard preparation before distance-based models
//! like k-means whose features have unequal scales.

use crate::dataset::Dataset;

/// Online per-feature standardisation (Welford / Chan parallel variant).
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    count: u64,
    mean: Vec<f64>,
    /// Sum of squared deviations (M2 in Welford's formulation).
    m2: Vec<f64>,
}

impl StandardScaler {
    /// A scaler for `features`-dimensional data.
    pub fn new(features: usize) -> Self {
        assert!(features > 0, "features must be > 0");
        Self {
            count: 0,
            mean: vec![0.0; features],
            m2: vec![0.0; features],
        }
    }

    /// Feature dimensionality.
    pub fn features(&self) -> usize {
        self.mean.len()
    }

    /// Rows seen so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Update statistics with a batch.
    pub fn partial_fit(&mut self, data: &Dataset<'_>) {
        assert_eq!(data.cols(), self.features(), "feature mismatch");
        for row in data.iter_rows() {
            self.count += 1;
            let n = self.count as f64;
            for ((m, s), &x) in self.mean.iter_mut().zip(&mut self.m2).zip(row) {
                let delta = x - *m;
                *m += delta / n;
                *s += delta * (x - *m);
            }
        }
    }

    /// Current per-feature means.
    pub fn means(&self) -> &[f64] {
        &self.mean
    }

    /// Current per-feature population standard deviations.
    pub fn stds(&self) -> Vec<f64> {
        if self.count == 0 {
            return vec![0.0; self.features()];
        }
        self.m2
            .iter()
            .map(|&s| (s / self.count as f64).sqrt())
            .collect()
    }

    /// Z-score a batch against the accumulated statistics (constant
    /// features are centred only). Panics if no data has been seen.
    pub fn transform(&self, data: &Dataset<'_>) -> Vec<f64> {
        assert!(self.count > 0, "transform before any partial_fit");
        assert_eq!(data.cols(), self.features(), "feature mismatch");
        let stds = self.stds();
        let mut out = Vec::with_capacity(data.rows() * data.cols());
        for row in data.iter_rows() {
            for ((&x, &m), &s) in row.iter().zip(&self.mean).zip(&stds) {
                out.push(if s > 0.0 { (x - m) / s } else { x - m });
            }
        }
        out
    }

    /// Merge another scaler's statistics into this one (Chan et al.'s
    /// parallel combination) — lets per-device scalers combine at the
    /// cloud.
    pub fn merge(&mut self, other: &StandardScaler) {
        assert_eq!(self.features(), other.features(), "feature mismatch");
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        for i in 0..self.features() {
            let delta = other.mean[i] - self.mean[i];
            self.mean[i] += delta * nb / n;
            self.m2[i] += other.m2[i] + delta * delta * na * nb / n;
        }
        self.count += other.count;
    }

    /// Flatten for the parameter server: `[count, means..., m2s...]`.
    pub fn weights(&self) -> Vec<f64> {
        let mut w = Vec::with_capacity(1 + 2 * self.features());
        w.push(self.count as f64);
        w.extend_from_slice(&self.mean);
        w.extend_from_slice(&self.m2);
        w
    }

    /// Restore from [`StandardScaler::weights`] layout; `false` on shape
    /// mismatch.
    pub fn set_weights(&mut self, weights: &[f64]) -> bool {
        let d = self.features();
        if weights.len() != 1 + 2 * d {
            return false;
        }
        self.count = weights[0].max(0.0) as u64;
        self.mean = weights[1..1 + d].to_vec();
        self.m2 = weights[1 + d..].to_vec();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_mean_and_std() {
        let data = [1.0, 10.0, 3.0, 20.0, 5.0, 30.0];
        let ds = Dataset::new(&data, 3, 2);
        let mut sc = StandardScaler::new(2);
        sc.partial_fit(&ds);
        assert_eq!(sc.means(), &[3.0, 20.0]);
        let stds = sc.stds();
        assert!((stds[0] - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(sc.count(), 3);
    }

    #[test]
    fn incremental_equals_batch() {
        let data: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 5.0 + 2.0).collect();
        let full = Dataset::new(&data, 20, 2);
        let mut batch = StandardScaler::new(2);
        batch.partial_fit(&full);
        let mut inc = StandardScaler::new(2);
        for chunk in data.chunks(8) {
            inc.partial_fit(&Dataset::new(chunk, chunk.len() / 2, 2));
        }
        for (a, b) in batch.means().iter().zip(inc.means()) {
            assert!((a - b).abs() < 1e-10);
        }
        for (a, b) in batch.stds().iter().zip(inc.stds()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn transform_standardizes() {
        let data = [0.0, 2.0, 4.0, 6.0];
        let ds = Dataset::new(&data, 4, 1);
        let mut sc = StandardScaler::new(1);
        sc.partial_fit(&ds);
        let z = sc.transform(&ds);
        let zds = Dataset::new(&z, 4, 1);
        assert!(zds.column_means()[0].abs() < 1e-12);
        assert!((zds.column_stds()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_feature_centred_only() {
        let data = [7.0, 7.0, 7.0];
        let ds = Dataset::new(&data, 3, 1);
        let mut sc = StandardScaler::new(1);
        sc.partial_fit(&ds);
        assert_eq!(sc.transform(&ds), vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn merge_equals_combined_fit() {
        let a_data: Vec<f64> = (0..30).map(|i| i as f64 * 0.7).collect();
        let b_data: Vec<f64> = (0..24).map(|i| 100.0 - i as f64).collect();
        let mut a = StandardScaler::new(3);
        a.partial_fit(&Dataset::new(&a_data, 10, 3));
        let mut b = StandardScaler::new(3);
        b.partial_fit(&Dataset::new(&b_data, 8, 3));
        let mut combined = StandardScaler::new(3);
        let mut all = a_data.clone();
        all.extend_from_slice(&b_data);
        combined.partial_fit(&Dataset::new(&all, 18, 3));
        a.merge(&b);
        assert_eq!(a.count(), 18);
        for (x, y) in a.means().iter().zip(combined.means()) {
            assert!((x - y).abs() < 1e-10);
        }
        for (x, y) in a.stds().iter().zip(combined.stds()) {
            assert!((x - y).abs() < 1e-10);
        }
    }

    #[test]
    fn merge_with_empty_sides() {
        let data = [1.0, 2.0, 3.0];
        let mut a = StandardScaler::new(1);
        a.partial_fit(&Dataset::new(&data, 3, 1));
        let snapshot = a.clone();
        a.merge(&StandardScaler::new(1));
        assert_eq!(a, snapshot);
        let mut empty = StandardScaler::new(1);
        empty.merge(&snapshot);
        assert_eq!(empty, snapshot);
    }

    #[test]
    fn weights_roundtrip() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let mut a = StandardScaler::new(2);
        a.partial_fit(&Dataset::new(&data, 2, 2));
        let w = a.weights();
        assert_eq!(w.len(), 5);
        let mut b = StandardScaler::new(2);
        assert!(b.set_weights(&w));
        assert_eq!(a, b);
        assert!(!b.set_weights(&[1.0]));
    }

    #[test]
    #[should_panic(expected = "transform before any partial_fit")]
    fn transform_untrained_panics() {
        let data = [1.0];
        StandardScaler::new(1).transform(&Dataset::new(&data, 1, 1));
    }
}
