//! The common interface every evaluation model implements.
//!
//! Pilot-Edge's processing functions are hot-swappable at runtime (paper
//! Section II-D: "exchanging low vs high fidelity models"); the trait object
//! boundary here is what makes that swap a one-line operation in the
//! pipeline. The `weights`/`set_weights` pair is the contract with the
//! parameter server: "a Redis-based parameter server for sharing model
//! weights across the continuum" (Section II-B).

use crate::dataset::Dataset;
use pilot_dataflow::ComputePool;
use std::sync::Arc;

/// Which model a pipeline stage is running; used in experiment labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Identity/no-op processing — the paper's "baseline".
    Baseline,
    /// k-means distance-to-centroid scoring.
    KMeans,
    /// Isolation forest.
    IsolationForest,
    /// Auto-encoder reconstruction error.
    AutoEncoder,
}

impl ModelKind {
    /// Stable label for reports ("baseline", "kmeans", ...).
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::Baseline => "baseline",
            ModelKind::KMeans => "kmeans",
            ModelKind::IsolationForest => "isoforest",
            ModelKind::AutoEncoder => "autoencoder",
        }
    }

    /// All kinds, in the order the paper's Fig. 3 presents them.
    pub fn all() -> [ModelKind; 4] {
        [
            ModelKind::Baseline,
            ModelKind::KMeans,
            ModelKind::IsolationForest,
            ModelKind::AutoEncoder,
        ]
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A streaming outlier-detection model.
///
/// The pipeline calls [`OutlierModel::partial_fit`] then
/// [`OutlierModel::score`] for every incoming message — exactly the paper's
/// "in all cases, the model is updated based on the incoming data".
pub trait OutlierModel: Send {
    /// Which model this is.
    fn kind(&self) -> ModelKind;

    /// Update the model with a new batch.
    fn partial_fit(&mut self, data: &Dataset<'_>);

    /// Outlier score per row; **higher means more anomalous**.
    fn score(&self, data: &Dataset<'_>) -> Vec<f64>;

    /// Flatten all trainable parameters for the parameter server. Models
    /// without numeric parameters (baseline, isolation forest — a tree
    /// structure) return an empty vector.
    fn weights(&self) -> Vec<f64>;

    /// Load parameters previously produced by [`OutlierModel::weights`].
    /// Returns `false` (leaving the model unchanged) if the shape does not
    /// match.
    fn set_weights(&mut self, weights: &[f64]) -> bool;

    /// Attach a [`ComputePool`] so fit/score kernels can fan out over the
    /// cores the hosting pilot owns. Models guarantee **bit-identical**
    /// results for any pool width (fixed chunk boundaries, per-unit seeds,
    /// deterministic merge order), so attaching a pool is purely a
    /// performance decision. The default keeps the model sequential —
    /// stateless models (the baseline) simply ignore the pool.
    fn set_compute_pool(&mut self, _pool: Arc<ComputePool>) {}
}

/// The paper's baseline: no model at all. `partial_fit` is a no-op and every
/// point scores 0. Exists so the Fig. 2/3 "baseline" rows run through the
/// identical pipeline code path as the real models.
#[derive(Debug, Default, Clone)]
pub struct Baseline;

impl OutlierModel for Baseline {
    fn kind(&self) -> ModelKind {
        ModelKind::Baseline
    }

    fn partial_fit(&mut self, _data: &Dataset<'_>) {}

    fn score(&self, data: &Dataset<'_>) -> Vec<f64> {
        vec![0.0; data.rows()]
    }

    fn weights(&self) -> Vec<f64> {
        Vec::new()
    }

    fn set_weights(&mut self, weights: &[f64]) -> bool {
        weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(ModelKind::Baseline.label(), "baseline");
        assert_eq!(ModelKind::KMeans.label(), "kmeans");
        assert_eq!(ModelKind::IsolationForest.label(), "isoforest");
        assert_eq!(ModelKind::AutoEncoder.label(), "autoencoder");
    }

    #[test]
    fn all_in_figure_order() {
        let all = ModelKind::all();
        assert_eq!(all[0], ModelKind::Baseline);
        assert_eq!(all[3], ModelKind::AutoEncoder);
    }

    #[test]
    fn baseline_scores_zero() {
        let data = [1.0, 2.0, 3.0, 4.0];
        let ds = Dataset::new(&data, 2, 2);
        let mut b = Baseline;
        b.partial_fit(&ds);
        assert_eq!(b.score(&ds), vec![0.0, 0.0]);
        assert!(b.weights().is_empty());
        assert!(b.set_weights(&[]));
        assert!(!b.set_weights(&[1.0]));
    }
}
