//! Ground-truth evaluation of outlier scores.
//!
//! The paper's figures report systems metrics (throughput/latency), but the
//! repository also verifies that the models *work*: the generator emits
//! ground-truth outlier labels, and these utilities score the models against
//! them (ROC-AUC and precision@k). Used by integration tests and the
//! `outlier_detection` example.

/// Area under the ROC curve for `scores` against boolean `labels`
/// (true = positive/outlier). Higher scores should indicate outliers.
/// Ties are handled by the standard rank-sum (Mann–Whitney) formulation.
/// Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let n_pos = labels.iter().filter(|&&l| l).count();
    let n_neg = labels.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Rank scores (average ranks for ties).
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap());
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && scores[idx[j + 1]] == scores[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = ranks
        .iter()
        .zip(labels)
        .filter(|(_, &l)| l)
        .map(|(&r, _)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos * n_neg) as f64
}

/// Precision among the `k` highest-scoring points. Returns 0 for `k == 0`.
pub fn precision_at_k(scores: &[f64], labels: &[bool], k: usize) -> f64 {
    assert_eq!(scores.len(), labels.len());
    if k == 0 || scores.is_empty() {
        return 0.0;
    }
    let k = k.min(scores.len());
    let mut idx: Vec<usize> = (0..scores.len()).collect();
    idx.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap());
    let hits = idx[..k].iter().filter(|&&i| labels[i]).count();
    hits as f64 / k as f64
}

/// Threshold scores at the `1 − contamination` quantile, mirroring PyOD's
/// `contamination` parameter: the top `contamination` fraction of scores is
/// flagged as outliers.
pub fn threshold_by_contamination(scores: &[f64], contamination: f64) -> Vec<bool> {
    let contamination = contamination.clamp(0.0, 1.0);
    if scores.is_empty() {
        return Vec::new();
    }
    let n_flag = ((scores.len() as f64) * contamination).round() as usize;
    if n_flag == 0 {
        return vec![false; scores.len()];
    }
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let cutoff = sorted[n_flag.min(sorted.len()) - 1];
    scores.iter().map(|&s| s >= cutoff).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_auc_one() {
        let scores = [0.1, 0.2, 0.9, 0.95];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 1.0);
    }

    #[test]
    fn inverted_scores_auc_zero() {
        let scores = [0.9, 0.95, 0.1, 0.2];
        let labels = [false, false, true, true];
        assert_eq!(roc_auc(&scores, &labels), 0.0);
    }

    #[test]
    fn random_scores_auc_half() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let labels = [false, true, false, true];
        assert_eq!(roc_auc(&scores, &labels), 0.5);
    }

    #[test]
    fn single_class_auc_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[false, false]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[true, true]), 0.5);
    }

    #[test]
    fn auc_with_ties_averaged() {
        // Two positives with the same score as two negatives: AUC = 0.5 for
        // those pairs, 1.0 for the clearly-higher positive.
        let scores = [0.5, 0.5, 0.5, 0.5, 0.9];
        let labels = [false, false, true, true, true];
        let auc = roc_auc(&scores, &labels);
        // pairs: 6 total; (0.9 vs both negs) = 2 wins; 4 ties = 2.0
        assert!((auc - (2.0 + 2.0) / 6.0).abs() < 1e-12, "auc={auc}");
    }

    #[test]
    fn precision_at_k_basics() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [true, false, false, true];
        assert_eq!(precision_at_k(&scores, &labels, 1), 1.0);
        assert_eq!(precision_at_k(&scores, &labels, 2), 0.5);
        assert_eq!(precision_at_k(&scores, &labels, 0), 0.0);
        // k beyond len clamps.
        assert_eq!(precision_at_k(&scores, &labels, 10), 0.5);
    }

    #[test]
    fn contamination_flags_top_fraction() {
        let scores = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        let flags = threshold_by_contamination(&scores, 0.2);
        assert_eq!(flags.iter().filter(|&&f| f).count(), 2);
        assert!(flags[9] && flags[8]);
    }

    #[test]
    fn contamination_zero_flags_nothing() {
        let flags = threshold_by_contamination(&[1.0, 2.0], 0.0);
        assert!(flags.iter().all(|&f| !f));
    }

    #[test]
    fn contamination_one_flags_everything() {
        let flags = threshold_by_contamination(&[1.0, 2.0], 1.0);
        assert!(flags.iter().all(|&f| f));
    }

    #[test]
    fn contamination_empty_input() {
        assert!(threshold_by_contamination(&[], 0.5).is_empty());
    }
}
