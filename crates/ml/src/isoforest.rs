//! Isolation forest (Liu, Ting & Zhou, ICDM 2008).
//!
//! The paper uses the PyOD implementation with its defaults: an ensemble of
//! 100 trees ("a default of 100 ensemble tasks"), each built on a random
//! subsample (ψ = 256 in the original algorithm and in
//! scikit-learn/PyOD). An outlier "is defined by the number of steps
//! required to isolate a data point; the fewer steps required, the more
//! likely a point is an outlier". The anomaly score is the original paper's
//! `s(x, ψ) = 2^(−E[h(x)] / c(ψ))` where `c(ψ)` is the average unsuccessful
//! BST search path length.
//!
//! Streaming behaviour: like the Pilot-Edge deployment, the model is refit
//! on each incoming message's data (`partial_fit` rebuilds the ensemble from
//! the new batch) — isolation forests have no incremental update, and
//! rebuilding is exactly what makes them ~5× slower than k-means in Fig. 3.

use crate::dataset::Dataset;
use crate::outlier::{ModelKind, OutlierModel};
use pilot_dataflow::ComputePool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Rows scored per compute-pool unit. Fixed (never derived from pool
/// width) so chunk boundaries — and therefore scores — are identical for
/// every pool size.
const SCORE_CHUNK: usize = 128;

/// Configuration for [`IsolationForest`].
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationForestConfig {
    /// Ensemble size (paper/PyOD default: 100).
    pub n_trees: usize,
    /// Subsample size ψ per tree (original paper default: 256).
    pub subsample: usize,
    /// RNG seed.
    pub seed: u64,
}

impl IsolationForestConfig {
    /// The paper's configuration: 100 trees, ψ = 256.
    pub fn paper() -> Self {
        Self {
            n_trees: 100,
            subsample: 256,
            seed: 42,
        }
    }
}

/// Node of an isolation tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    /// Internal split: feature index, split value, children arena indices.
    Split {
        feature: u32,
        value: f64,
        left: u32,
        right: u32,
    },
    /// External node holding `size` points; contributes `c(size)` to the
    /// path length.
    Leaf { size: u32 },
}

/// One isolation tree.
#[derive(Debug, Clone)]
struct ITree {
    nodes: Vec<Node>,
}

impl ITree {
    /// Build a tree over `sample` (indices into `data`), splitting until
    /// isolation or the height limit `ceil(log2(ψ))`.
    fn build(
        data: &Dataset<'_>,
        sample: &mut [usize],
        height_limit: u32,
        rng: &mut StdRng,
    ) -> Self {
        let mut nodes = Vec::with_capacity(2 * sample.len());
        Self::build_node(data, sample, 0, height_limit, rng, &mut nodes);
        ITree { nodes }
    }

    /// Recursively build; returns the arena index of the created node.
    fn build_node(
        data: &Dataset<'_>,
        sample: &mut [usize],
        depth: u32,
        height_limit: u32,
        rng: &mut StdRng,
        nodes: &mut Vec<Node>,
    ) -> u32 {
        if sample.len() <= 1 || depth >= height_limit {
            nodes.push(Node::Leaf {
                size: sample.len() as u32,
            });
            return (nodes.len() - 1) as u32;
        }
        // Pick a feature with spread; give up after a few attempts (the
        // sample may be constant in every dimension).
        let d = data.cols();
        let mut split = None;
        for _ in 0..8 {
            let f = rng.random_range(0..d);
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for &i in sample.iter() {
                let v = data.row(i)[f];
                lo = lo.min(v);
                hi = hi.max(v);
            }
            if hi > lo {
                split = Some((f, rng.random_range(lo..hi)));
                break;
            }
        }
        let Some((feature, value)) = split else {
            nodes.push(Node::Leaf {
                size: sample.len() as u32,
            });
            return (nodes.len() - 1) as u32;
        };
        // Partition in place.
        let mut mid = 0;
        for i in 0..sample.len() {
            if data.row(sample[i])[feature] < value {
                sample.swap(i, mid);
                mid += 1;
            }
        }
        // Reserve this node's slot before recursing.
        let my_idx = nodes.len() as u32;
        nodes.push(Node::Leaf { size: 0 }); // placeholder
        let (left_sample, right_sample) = sample.split_at_mut(mid);
        let left = Self::build_node(data, left_sample, depth + 1, height_limit, rng, nodes);
        let right = Self::build_node(data, right_sample, depth + 1, height_limit, rng, nodes);
        nodes[my_idx as usize] = Node::Split {
            feature: feature as u32,
            value,
            left,
            right,
        };
        my_idx
    }

    /// Path length h(x) for one point, with the `c(size)` adjustment at
    /// truncated leaves.
    fn path_length(&self, point: &[f64]) -> f64 {
        let mut idx = 0u32;
        let mut depth = 0.0;
        loop {
            match &self.nodes[idx as usize] {
                Node::Leaf { size } => {
                    return depth + c_factor(*size as usize);
                }
                Node::Split {
                    feature,
                    value,
                    left,
                    right,
                } => {
                    depth += 1.0;
                    idx = if point[*feature as usize] < *value {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Average path length of an unsuccessful BST search over `n` points:
/// `c(n) = 2·H(n−1) − 2(n−1)/n`, with `H(i) ≈ ln(i) + γ`.
pub fn c_factor(n: usize) -> f64 {
    /// Euler–Mascheroni constant (std's EGAMMA is not yet stable).
    const EGAMMA: f64 = 0.577_215_664_901_532_9;
    if n <= 1 {
        return 0.0;
    }
    let nf = n as f64;
    let h = (nf - 1.0).ln() + EGAMMA;
    2.0 * h - 2.0 * (nf - 1.0) / nf
}

/// Derive an independent RNG seed for one tree of one fit. Trees must not
/// share an RNG stream (that would serialise tree construction), and
/// successive refits must draw different forests (the streaming pipeline
/// refits per message), so the seed mixes `(config seed, fit epoch, tree
/// index)` through a SplitMix64 finaliser.
fn derive_tree_seed(seed: u64, epoch: u64, tree: u64) -> u64 {
    let mut z =
        seed ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ tree.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Sample ψ distinct indices from `0..n` (Floyd's algorithm). The pick set
/// is kept in a `Vec` — ψ ≤ 256 keeps the linear `contains` cheap and, unlike
/// a hash set, the resulting order is a pure function of the RNG stream.
fn sample_indices(n: usize, psi: usize, rng: &mut StdRng) -> Vec<usize> {
    if psi >= n {
        return (0..n).collect();
    }
    let mut chosen: Vec<usize> = Vec::with_capacity(psi);
    for j in (n - psi)..n {
        let t = rng.random_range(0..=j);
        if chosen.contains(&t) {
            chosen.push(j);
        } else {
            chosen.push(t);
        }
    }
    chosen
}

/// The isolation-forest ensemble.
#[derive(Debug)]
pub struct IsolationForest {
    config: IsolationForestConfig,
    trees: Vec<ITree>,
    /// ψ actually used by the last fit (min(subsample, n)).
    effective_subsample: usize,
    /// Fits completed so far; folded into per-tree seeds so successive
    /// refits (one per streaming message) draw fresh forests.
    fit_epoch: u64,
    /// Fan-out for tree building and scoring; sequential by default.
    pool: Arc<ComputePool>,
}

impl IsolationForest {
    /// Create an untrained forest.
    pub fn new(config: IsolationForestConfig) -> Self {
        assert!(config.n_trees > 0, "n_trees must be > 0");
        assert!(config.subsample > 1, "subsample must be > 1");
        Self {
            config,
            trees: Vec::new(),
            effective_subsample: 0,
            fit_epoch: 0,
            pool: Arc::new(ComputePool::sequential()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &IsolationForestConfig {
        &self.config
    }

    /// True once trees exist.
    pub fn is_trained(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Number of trees currently in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Fit the ensemble on a batch (replaces any previous trees).
    ///
    /// Every tree owns an RNG seeded from `(seed, fit epoch, tree index)`,
    /// so the ensemble is a pure function of the config and fit history —
    /// independent of build order and therefore of pool width. With a
    /// multi-thread [`ComputePool`] attached the (paper-default) 100 trees
    /// build in parallel; this is the Fig. 3 hot spot, since streaming
    /// refits rebuild the whole ensemble per message.
    pub fn fit(&mut self, data: &Dataset<'_>) {
        if data.is_empty() {
            return;
        }
        let n = data.rows();
        let psi = self.config.subsample.min(n);
        let height_limit = (psi as f64).log2().ceil().max(1.0) as u32;
        let seed = self.config.seed;
        let epoch = self.fit_epoch;
        self.fit_epoch += 1;
        self.trees = self.pool.map(self.config.n_trees, |t| {
            let mut rng = StdRng::seed_from_u64(derive_tree_seed(seed, epoch, t as u64));
            let mut sample = sample_indices(n, psi, &mut rng);
            ITree::build(data, &mut sample, height_limit, &mut rng)
        });
        self.effective_subsample = psi;
    }

    /// Mean path length over the ensemble for one point.
    pub fn mean_path_length(&self, point: &[f64]) -> f64 {
        assert!(self.is_trained(), "score before training");
        self.trees.iter().map(|t| t.path_length(point)).sum::<f64>() / self.trees.len() as f64
    }
}

impl OutlierModel for IsolationForest {
    fn kind(&self) -> ModelKind {
        ModelKind::IsolationForest
    }

    /// Streaming update = refit on the incoming batch (isolation forests
    /// are not incrementally updatable; this mirrors the paper's per-message
    /// model update and is the source of the model's high per-message cost).
    fn partial_fit(&mut self, data: &Dataset<'_>) {
        self.fit(data);
    }

    /// Anomaly score `s(x, ψ) = 2^(−E[h(x)]/c(ψ))` ∈ (0, 1]; higher is more
    /// anomalous. Rows are fanned out over the pool in fixed-size chunks;
    /// each score depends on its row alone, so the result is bit-identical
    /// at every pool width.
    fn score(&self, data: &Dataset<'_>) -> Vec<f64> {
        assert!(self.is_trained(), "score before training");
        let c = c_factor(self.effective_subsample).max(f64::MIN_POSITIVE);
        let view = *data;
        let mut scores = vec![0.0; data.rows()];
        self.pool
            .for_each_chunk_mut(&mut scores, SCORE_CHUNK, |ci, chunk| {
                let base = ci * SCORE_CHUNK;
                for (off, s) in chunk.iter_mut().enumerate() {
                    let e_h = self.mean_path_length(view.row(base + off));
                    *s = 2f64.powf(-e_h / c);
                }
            });
        scores
    }

    fn weights(&self) -> Vec<f64> {
        // Tree structure is not a flat parameter vector; the parameter
        // server shares isolation forests by re-fitting on the receiver
        // side (documented contract).
        Vec::new()
    }

    fn set_weights(&mut self, weights: &[f64]) -> bool {
        weights.is_empty()
    }

    fn set_compute_pool(&mut self, pool: Arc<ComputePool>) {
        self.pool = pool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tight Gaussian blob with a few extreme points appended.
    fn blob_with_outliers() -> (Vec<f64>, usize, usize) {
        let mut data = Vec::new();
        let mut state = 9u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 2000) as f64 / 1000.0 - 1.0
        };
        let n_inliers = 500;
        for _ in 0..n_inliers {
            data.push(next());
            data.push(next());
        }
        let outliers = [(50.0, 50.0), (-60.0, 40.0), (45.0, -55.0)];
        for &(x, y) in &outliers {
            data.push(x);
            data.push(y);
        }
        (data, n_inliers, outliers.len())
    }

    fn cfg() -> IsolationForestConfig {
        IsolationForestConfig {
            n_trees: 50,
            subsample: 128,
            seed: 3,
        }
    }

    #[test]
    fn c_factor_known_values() {
        assert_eq!(c_factor(0), 0.0);
        assert_eq!(c_factor(1), 0.0);
        // c(2) = 2·(ln(1)+γ) − 2·(1/2) = 2γ − 1 ≈ 0.1544
        assert!((c_factor(2) - (2.0 * 0.577_215_664_901_532_9 - 1.0)).abs() < 1e-12);
        // c grows with n
        assert!(c_factor(256) > c_factor(64));
    }

    #[test]
    fn outliers_rank_above_inliers() {
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut f = IsolationForest::new(cfg());
        f.fit(&ds);
        let scores = f.score(&ds);
        let min_outlier = scores[n_in..].iter().cloned().fold(f64::INFINITY, f64::min);
        // Count inliers scoring above the weakest outlier — should be none
        // or nearly none.
        let violations = scores[..n_in].iter().filter(|&&s| s > min_outlier).count();
        assert!(violations <= 2, "violations={violations}");
    }

    #[test]
    fn scores_are_in_unit_interval() {
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut f = IsolationForest::new(cfg());
        f.fit(&ds);
        for s in f.score(&ds) {
            assert!((0.0..=1.0).contains(&s), "s={s}");
        }
    }

    #[test]
    fn outlier_scores_exceed_half() {
        // Liu et al.: points with score well above 0.5 are anomalies.
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut f = IsolationForest::new(cfg());
        f.fit(&ds);
        let scores = f.score(&ds);
        for s in &scores[n_in..] {
            assert!(*s > 0.55, "outlier score {s}");
        }
    }

    #[test]
    fn partial_fit_rebuilds_ensemble() {
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut f = IsolationForest::new(cfg());
        f.partial_fit(&ds);
        assert_eq!(f.tree_count(), 50);
        f.partial_fit(&ds);
        assert_eq!(f.tree_count(), 50);
    }

    #[test]
    fn constant_data_gets_uniform_scores() {
        let data = vec![1.0; 64 * 2];
        let ds = Dataset::new(&data, 64, 2);
        let mut f = IsolationForest::new(cfg());
        f.fit(&ds);
        let scores = f.score(&ds);
        let first = scores[0];
        assert!(scores.iter().all(|&s| (s - first).abs() < 1e-9));
    }

    #[test]
    fn small_batch_clamps_subsample() {
        let data = vec![0.0, 1.0, 2.0, 3.0]; // 4 rows × 1 col
        let ds = Dataset::new(&data, 4, 1);
        let mut f = IsolationForest::new(cfg());
        f.fit(&ds);
        assert_eq!(f.effective_subsample, 4);
        assert_eq!(f.score(&ds).len(), 4);
    }

    #[test]
    fn seeded_forests_reproduce() {
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut a = IsolationForest::new(cfg());
        let mut b = IsolationForest::new(cfg());
        a.fit(&ds);
        b.fit(&ds);
        assert_eq!(a.score(&ds), b.score(&ds));
    }

    #[test]
    fn pool_width_never_changes_scores() {
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut seq = IsolationForest::new(cfg());
        seq.fit(&ds);
        let expect = seq.score(&ds);
        for width in [2usize, 3, 8] {
            let mut f = IsolationForest::new(cfg());
            f.set_compute_pool(Arc::new(ComputePool::new(width)));
            f.fit(&ds);
            assert_eq!(f.score(&ds), expect, "width={width}");
        }
    }

    #[test]
    fn refits_draw_fresh_forests() {
        // Streaming refits must not reuse the epoch-0 forest seeds.
        let (data, n_in, n_out) = blob_with_outliers();
        let ds = Dataset::new(&data, n_in + n_out, 2);
        let mut f = IsolationForest::new(cfg());
        f.fit(&ds);
        let first = f.score(&ds);
        f.fit(&ds);
        assert_ne!(
            f.score(&ds),
            first,
            "second fit reused first fit's RNG streams"
        );
    }

    #[test]
    fn sampled_indices_are_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let sample = sample_indices(1000, 256, &mut rng);
        assert_eq!(sample.len(), 256);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 256, "duplicates drawn");
        assert!(sample.iter().all(|&i| i < 1000));
        // ψ ≥ n degenerates to the identity permutation.
        assert_eq!(sample_indices(4, 8, &mut rng), vec![0, 1, 2, 3]);
    }

    #[test]
    fn weights_contract_is_empty() {
        let mut f = IsolationForest::new(cfg());
        assert!(f.weights().is_empty());
        assert!(f.set_weights(&[]));
        assert!(!f.set_weights(&[1.0]));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut f = IsolationForest::new(cfg());
        let data: [f64; 0] = [];
        f.partial_fit(&Dataset::new(&data, 0, 2));
        assert!(!f.is_trained());
    }

    #[test]
    fn paper_config_defaults() {
        let c = IsolationForestConfig::paper();
        assert_eq!(c.n_trees, 100);
        assert_eq!(c.subsample, 256);
    }
}
