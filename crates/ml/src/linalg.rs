//! Minimal dense linear-algebra kernels for the auto-encoder.
//!
//! Only what backpropagation through small dense layers needs: row-major
//! GEMM in the three transpose configurations, plus a handful of
//! element-wise helpers. The GEMMs are cache-blocked: loops are tiled by
//! `BLOCK` so the working set of each tile (a block of A, a block of B,
//! and the touched C rows) stays resident while it is reused, which is what
//! keeps the 1000-row per-message batches from thrashing once matrices stop
//! fitting in L1.
//!
//! **Bit-exactness contract**: blocking never reorders the floating-point
//! accumulation of any single output element — for every `C[i][j]` the
//! reduction still runs over `p` in ascending order, exactly as the naive
//! triple loop would. Together with the row-independence of `matmul` /
//! `matmul_a_bt` (row `i` of `C` reads only row `i` of `A`), this is what
//! lets the auto-encoder fan a forward pass out over row chunks and still
//! produce bit-identical activations at every compute-pool width.

/// Cache-block edge for the GEMM kernels. 64×64 f64 tiles are 32 KiB — an
/// L1-sized working set on current cores.
const BLOCK: usize = 64;

/// `C[m×n] = A[m×k] · B[k×n]` (row-major, C overwritten).
pub fn matmul(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A dims");
    assert_eq!(b.len(), k * n, "B dims");
    assert_eq!(c.len(), m * n, "C dims");
    c.fill(0.0);
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for pb in (0..k).step_by(BLOCK) {
            let p_end = (pb + BLOCK).min(k);
            for i in ib..i_end {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for p in pb..p_end {
                    let a_ip = a_row[p];
                    let b_row = &b[p * n..(p + 1) * n];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_ip * b_v;
                    }
                }
            }
        }
    }
}

/// `C[m×n] = Aᵀ[m×k] · B[k×n]` where `A` is stored `k×m` (row-major).
pub fn matmul_at_b(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "A dims");
    assert_eq!(b.len(), k * n, "B dims");
    assert_eq!(c.len(), m * n, "C dims");
    c.fill(0.0);
    for pb in (0..k).step_by(BLOCK) {
        let p_end = (pb + BLOCK).min(k);
        for ib in (0..m).step_by(BLOCK) {
            let i_end = (ib + BLOCK).min(m);
            for p in pb..p_end {
                let a_row = &a[p * m..(p + 1) * m];
                let b_row = &b[p * n..(p + 1) * n];
                for i in ib..i_end {
                    let a_pi = a_row[i];
                    let c_row = &mut c[i * n..(i + 1) * n];
                    for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                        *c_v += a_pi * b_v;
                    }
                }
            }
        }
    }
}

/// `C[m×n] = A[m×k] · Bᵀ[k×n]` where `B` is stored `n×k` (row-major).
pub fn matmul_a_bt(a: &[f64], b: &[f64], c: &mut [f64], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A dims");
    assert_eq!(b.len(), n * k, "B dims");
    assert_eq!(c.len(), m * n, "C dims");
    for ib in (0..m).step_by(BLOCK) {
        let i_end = (ib + BLOCK).min(m);
        for jb in (0..n).step_by(BLOCK) {
            let j_end = (jb + BLOCK).min(n);
            for i in ib..i_end {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for j in jb..j_end {
                    let b_row = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&x, &y) in a_row.iter().zip(b_row) {
                        acc += x * y;
                    }
                    c_row[j] = acc;
                }
            }
        }
    }
}

/// Add row-vector `bias[n]` to every row of `x[m×n]`.
pub fn add_bias(x: &mut [f64], bias: &[f64]) {
    let n = bias.len();
    assert_eq!(x.len() % n, 0, "x not a multiple of bias length");
    for row in x.chunks_exact_mut(n) {
        for (v, &b) in row.iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// In-place ReLU.
pub fn relu(x: &mut [f64]) {
    for v in x.iter_mut() {
        if *v < 0.0 {
            *v = 0.0;
        }
    }
}

/// In-place ReLU derivative mask: `g[i] = 0` wherever `activ[i] <= 0`.
pub fn relu_backward(g: &mut [f64], activ: &[f64]) {
    assert_eq!(g.len(), activ.len());
    for (gv, &a) in g.iter_mut().zip(activ) {
        if a <= 0.0 {
            *gv = 0.0;
        }
    }
}

/// Column sums of `x[m×n]` into `out[n]` (used for bias gradients).
pub fn column_sums(x: &[f64], out: &mut [f64]) {
    let n = out.len();
    assert_eq!(x.len() % n, 0);
    out.fill(0.0);
    for row in x.chunks_exact(n) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v;
        }
    }
}

/// `y ← y + alpha * x`.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len());
    for (yv, &xv) in y.iter_mut().zip(x) {
        *yv += alpha * xv;
    }
}

/// Mean squared error between two equal-length buffers.
pub fn mse(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    let mut acc = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = [1.0, 2.0, 3.0, 4.0]; // 2x2
        let i = [1.0, 0.0, 0.0, 1.0];
        let mut c = [0.0; 4];
        matmul(&a, &i, &mut c, 2, 2, 2);
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_known_product() {
        // [1 2; 3 4] · [5 6; 7 8] = [19 22; 43 50]
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [0.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        // A 1x3 · B 3x2 = C 1x2
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 4.0, 2.0, 5.0, 3.0, 6.0];
        let mut c = [0.0; 2];
        matmul(&a, &b, &mut c, 1, 3, 2);
        assert_eq!(c, [14.0, 32.0]);
    }

    #[test]
    fn at_b_equals_transpose_then_mul() {
        // A stored 2x3; compute Aᵀ(3x2) · B(2x2).
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0, 2.0, 3.0, 4.0];
        let mut c = [0.0; 6];
        matmul_at_b(&a, &b, &mut c, 3, 2, 2);
        // Aᵀ = [1 4; 2 5; 3 6]; Aᵀ·B = [13 18; 17 24; 21 30]
        assert_eq!(c, [13.0, 18.0, 17.0, 24.0, 21.0, 30.0]);
    }

    #[test]
    fn a_bt_equals_mul_by_transpose() {
        // A 2x2 · Bᵀ where B stored 2x2.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0]; // B = [5 6; 7 8], Bᵀ = [5 7; 6 8]
        let mut c = [0.0; 4];
        matmul_a_bt(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, [17.0, 23.0, 39.0, 53.0]);
    }

    /// Naive reference GEMMs with the same per-element accumulation order
    /// the blocked kernels promise; blocked output must match **bit for
    /// bit**, including at sizes that straddle block boundaries.
    fn naive_matmul(a: &[f64], b: &[f64], m: usize, k: usize, n: usize) -> Vec<f64> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn test_matrix(len: usize, salt: u64) -> Vec<f64> {
        // Deterministic irregular values; xorshift keeps it dependency-free.
        let mut state = salt | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state % 2048) as f64 / 512.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn blocked_matmul_is_bit_identical_across_block_edges() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (7, 5, 3),
            (64, 64, 64),
            (70, 130, 65),
            (129, 3, 64),
        ] {
            let a = test_matrix(m * k, 5);
            let b = test_matrix(k * n, 11);
            let mut c = vec![0.0; m * n];
            matmul(&a, &b, &mut c, m, k, n);
            assert_eq!(c, naive_matmul(&a, &b, m, k, n), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn blocked_at_b_is_bit_identical_across_block_edges() {
        for &(m, k, n) in &[(5, 3, 2), (65, 70, 64), (64, 129, 3)] {
            let a = test_matrix(k * m, 17);
            let b = test_matrix(k * n, 23);
            let mut c = vec![0.0; m * n];
            matmul_at_b(&a, &b, &mut c, m, k, n);
            // Reference: explicit transpose then naive multiply.
            let mut at = vec![0.0; m * k];
            for p in 0..k {
                for i in 0..m {
                    at[i * k + p] = a[p * m + i];
                }
            }
            assert_eq!(c, naive_matmul(&at, &b, m, k, n), "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn blocked_a_bt_is_bit_identical_across_block_edges() {
        for &(m, k, n) in &[(3, 4, 2), (70, 65, 66), (2, 130, 64)] {
            let a = test_matrix(m * k, 29);
            let b = test_matrix(n * k, 31);
            let mut c = vec![1.0; m * n]; // non-zero: kernel must overwrite
            matmul_a_bt(&a, &b, &mut c, m, k, n);
            let mut expect = vec![0.0; m * n];
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0;
                    for p in 0..k {
                        acc += a[i * k + p] * b[j * k + p];
                    }
                    expect[i * n + j] = acc;
                }
            }
            assert_eq!(c, expect, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn bias_broadcast() {
        let mut x = [0.0, 0.0, 1.0, 1.0];
        add_bias(&mut x, &[10.0, 20.0]);
        assert_eq!(x, [10.0, 20.0, 11.0, 21.0]);
    }

    #[test]
    fn relu_and_backward() {
        let mut x = [-1.0, 0.0, 2.0];
        relu(&mut x);
        assert_eq!(x, [0.0, 0.0, 2.0]);
        let mut g = [5.0, 5.0, 5.0];
        relu_backward(&mut g, &x);
        assert_eq!(g, [0.0, 0.0, 5.0]);
    }

    #[test]
    fn column_sums_basic() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]; // 3x2
        let mut out = [0.0; 2];
        column_sums(&x, &mut out);
        assert_eq!(out, [9.0, 12.0]);
    }

    #[test]
    fn axpy_basic() {
        let mut y = [1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[], &[]), 0.0);
    }
}
