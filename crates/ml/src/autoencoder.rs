//! Dense auto-encoder for reconstruction-error outlier detection.
//!
//! The paper uses "the Keras-based auto-encoder implementation of PyOD with
//! four hidden layers with a size of [64, 32, 32, 64], and thus, a total
//! number of 11,552 parameters". PyOD's Keras model wraps those hidden
//! layers with extra input-sized dense layers; the dense-layer sequence that
//! yields **exactly 11,552 trainable parameters** for 32 input features is
//!
//! ```text
//! 32 → 32 → 64 → 32 → 32 → 64 → 32 → 32
//!    1056  2112  2080  1056  2112  2080  1056   = 11,552
//! ```
//!
//! (each arrow is a dense layer with bias; counts are `in·out + out`).
//! This module implements that exact architecture as a from-scratch MLP:
//! ReLU activations on all but the last layer, mean-squared reconstruction
//! error as the loss, and backpropagation with either plain SGD or Adam.
//!
//! The outlier score of a point is its reconstruction error — "the
//! reconstruction error is used to determine whether a data point is
//! anomalous".

use crate::dataset::Dataset;
use crate::linalg::{add_bias, column_sums, matmul, matmul_a_bt, matmul_at_b, relu, relu_backward};
use crate::outlier::{ModelKind, OutlierModel};
use pilot_dataflow::ComputePool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Rows per compute-pool unit in the batch forward/score path. Fixed (never
/// derived from pool width); each row's activations depend on that row
/// alone (see the bit-exactness contract in [`crate::linalg`]), so chunked
/// forward passes reproduce the full-batch result exactly.
const FORWARD_CHUNK: usize = 128;

/// Optimiser choice for training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Optimizer {
    /// Plain stochastic gradient descent.
    Sgd,
    /// Adam (Kingma & Ba) with the canonical β₁=0.9, β₂=0.999, ε=1e-8.
    Adam,
}

/// Configuration for [`AutoEncoder`].
#[derive(Debug, Clone, PartialEq)]
pub struct AutoEncoderConfig {
    /// Input dimensionality.
    pub features: usize,
    /// Sizes of the dense layers between input and output. The paper's
    /// PyOD model for 32 features is `[32, 64, 32, 32, 64, 32]` with an
    /// implicit final output layer of size `features`.
    pub hidden: Vec<usize>,
    /// Learning rate.
    pub lr: f64,
    /// Passes over each batch in `partial_fit`.
    pub epochs_per_batch: usize,
    /// Mini-batch size used inside a training pass.
    pub minibatch: usize,
    /// Optimiser.
    pub optimizer: Optimizer,
    /// Weight-init seed.
    pub seed: u64,
}

impl AutoEncoderConfig {
    /// The paper's PyOD architecture over 32 features: hidden sizes
    /// `[64, 32, 32, 64]` plus PyOD's input-sized wrapper layers, for a
    /// total of 11,552 trainable parameters.
    pub fn paper() -> Self {
        Self {
            features: 32,
            hidden: vec![32, 64, 32, 32, 64, 32],
            lr: 1e-3,
            epochs_per_batch: 1,
            minibatch: 64,
            optimizer: Optimizer::Adam,
            seed: 42,
        }
    }

    /// Full sequence of layer dimensions, input to output.
    pub fn layer_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.hidden.len() + 2);
        dims.push(self.features);
        dims.extend_from_slice(&self.hidden);
        dims.push(self.features);
        dims
    }

    /// Total trainable parameter count (weights + biases).
    pub fn parameter_count(&self) -> usize {
        self.layer_dims()
            .windows(2)
            .map(|w| w[0] * w[1] + w[1])
            .sum()
    }
}

/// One dense layer's parameters and its Adam state.
#[derive(Debug, Clone)]
struct Layer {
    /// `in_dim × out_dim`, row-major.
    w: Vec<f64>,
    /// `out_dim`.
    b: Vec<f64>,
    in_dim: usize,
    out_dim: usize,
    // Adam moments (allocated lazily on first Adam step).
    m_w: Vec<f64>,
    v_w: Vec<f64>,
    m_b: Vec<f64>,
    v_b: Vec<f64>,
}

impl Layer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        // He initialisation for ReLU layers.
        let scale = (2.0 / in_dim as f64).sqrt();
        let w = (0..in_dim * out_dim)
            .map(|_| {
                // Box–Muller
                let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.random();
                scale * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            })
            .collect();
        Self {
            w,
            b: vec![0.0; out_dim],
            in_dim,
            out_dim,
            m_w: Vec::new(),
            v_w: Vec::new(),
            m_b: Vec::new(),
            v_b: Vec::new(),
        }
    }

    fn ensure_adam_state(&mut self) {
        if self.m_w.is_empty() {
            self.m_w = vec![0.0; self.w.len()];
            self.v_w = vec![0.0; self.w.len()];
            self.m_b = vec![0.0; self.b.len()];
            self.v_b = vec![0.0; self.b.len()];
        }
    }
}

/// The auto-encoder model.
#[derive(Debug, Clone)]
pub struct AutoEncoder {
    config: AutoEncoderConfig,
    layers: Vec<Layer>,
    /// Adam timestep.
    t: u64,
    /// Mean training loss of the last `partial_fit` call.
    last_loss: f64,
    /// Fan-out for batch forward/score; sequential by default. Training
    /// stays on the caller thread (its gradient reduction is inherently
    /// batch-order-dependent).
    pool: Arc<ComputePool>,
}

impl AutoEncoder {
    /// Create a randomly-initialised model.
    pub fn new(config: AutoEncoderConfig) -> Self {
        assert!(config.features > 0, "features must be > 0");
        assert!(config.lr > 0.0, "lr must be > 0");
        assert!(config.minibatch > 0, "minibatch must be > 0");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let dims = config.layer_dims();
        let layers = dims
            .windows(2)
            .map(|w| Layer::new(w[0], w[1], &mut rng))
            .collect();
        Self {
            config,
            layers,
            t: 0,
            last_loss: f64::NAN,
            pool: Arc::new(ComputePool::sequential()),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &AutoEncoderConfig {
        &self.config
    }

    /// Total trainable parameters (matches
    /// [`AutoEncoderConfig::parameter_count`]).
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Mean training loss of the last `partial_fit` (NaN before training).
    pub fn last_loss(&self) -> f64 {
        self.last_loss
    }

    /// Forward pass: returns the activations of every layer (index 0 = the
    /// input batch itself). All but the last layer apply ReLU.
    fn forward(&self, batch: &[f64], rows: usize) -> Vec<Vec<f64>> {
        let mut acts: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len() + 1);
        acts.push(batch.to_vec());
        for (li, layer) in self.layers.iter().enumerate() {
            let mut out = vec![0.0; rows * layer.out_dim];
            matmul(
                acts.last().unwrap(),
                &layer.w,
                &mut out,
                rows,
                layer.in_dim,
                layer.out_dim,
            );
            add_bias(&mut out, &layer.b);
            if li + 1 < self.layers.len() {
                relu(&mut out);
            }
            acts.push(out);
        }
        acts
    }

    /// Reconstruct a batch (the final activation of the forward pass).
    ///
    /// Rows are fanned out over the pool in fixed chunks of
    /// `FORWARD_CHUNK`; per-row independence of the dense layers makes the
    /// chunked result bit-identical to a single full-batch pass.
    pub fn reconstruct(&self, data: &Dataset<'_>) -> Vec<f64> {
        assert_eq!(data.cols(), self.config.features, "feature mismatch");
        let d = self.config.features;
        let raw = data.raw();
        let mut out = vec![0.0; data.rows() * d];
        // Chunk length is a multiple of the feature count, so every chunk
        // covers whole rows.
        self.pool
            .for_each_chunk_mut(&mut out, FORWARD_CHUNK * d, |ci, chunk| {
                let rows = chunk.len() / d;
                let start = ci * FORWARD_CHUNK * d;
                let batch = &raw[start..start + chunk.len()];
                let recon = self.forward(batch, rows).pop().unwrap();
                chunk.copy_from_slice(&recon);
            });
        out
    }

    /// One SGD/Adam step on one mini-batch; returns the batch MSE.
    fn train_step(&mut self, batch: &[f64], rows: usize) -> f64 {
        let acts = self.forward(batch, rows);
        let output = acts.last().unwrap();
        let n_out = output.len();
        // dL/dŷ for L = mean((ŷ−x)²): 2(ŷ−x)/N.
        let mut delta: Vec<f64> = output
            .iter()
            .zip(batch)
            .map(|(&y, &x)| 2.0 * (y - x) / n_out as f64)
            .collect();
        let loss = output
            .iter()
            .zip(batch)
            .map(|(&y, &x)| (y - x) * (y - x))
            .sum::<f64>()
            / n_out as f64;

        self.t += 1;
        let lr = self.config.lr;
        let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
        // Backward through layers.
        for li in (0..self.layers.len()).rev() {
            let input = &acts[li];
            let in_dim = self.layers[li].in_dim;
            let out_dim = self.layers[li].out_dim;
            // Gradients.
            let mut grad_w = vec![0.0; in_dim * out_dim];
            matmul_at_b(input, &delta, &mut grad_w, in_dim, rows, out_dim);
            let mut grad_b = vec![0.0; out_dim];
            column_sums(&delta, &mut grad_b);
            // Propagate delta to the previous layer before mutating weights.
            if li > 0 {
                let mut prev_delta = vec![0.0; rows * in_dim];
                matmul_a_bt(
                    &delta,
                    &self.layers[li].w,
                    &mut prev_delta,
                    rows,
                    out_dim,
                    in_dim,
                );
                relu_backward(&mut prev_delta, &acts[li]);
                delta = prev_delta;
            }
            // Apply the update.
            let layer = &mut self.layers[li];
            match self.config.optimizer {
                Optimizer::Sgd => {
                    for (w, g) in layer.w.iter_mut().zip(&grad_w) {
                        *w -= lr * g;
                    }
                    for (b, g) in layer.b.iter_mut().zip(&grad_b) {
                        *b -= lr * g;
                    }
                }
                Optimizer::Adam => {
                    layer.ensure_adam_state();
                    let t = self.t as f64;
                    let bias1 = 1.0 - b1.powf(t);
                    let bias2 = 1.0 - b2.powf(t);
                    for (((w, &g), m), v) in layer
                        .w
                        .iter_mut()
                        .zip(&grad_w)
                        .zip(layer.m_w.iter_mut())
                        .zip(layer.v_w.iter_mut())
                    {
                        *m = b1 * *m + (1.0 - b1) * g;
                        *v = b2 * *v + (1.0 - b2) * g * g;
                        let m_hat = *m / bias1;
                        let v_hat = *v / bias2;
                        *w -= lr * m_hat / (v_hat.sqrt() + eps);
                    }
                    for (((b, &g), m), v) in layer
                        .b
                        .iter_mut()
                        .zip(&grad_b)
                        .zip(layer.m_b.iter_mut())
                        .zip(layer.v_b.iter_mut())
                    {
                        *m = b1 * *m + (1.0 - b1) * g;
                        *v = b2 * *v + (1.0 - b2) * g * g;
                        let m_hat = *m / bias1;
                        let v_hat = *v / bias2;
                        *b -= lr * m_hat / (v_hat.sqrt() + eps);
                    }
                }
            }
        }
        loss
    }

    /// Numerical-gradient check hook (tests only): loss on a batch without
    /// updating parameters.
    #[doc(hidden)]
    pub fn loss_on(&self, data: &Dataset<'_>) -> f64 {
        let out = self.reconstruct(data);
        crate::linalg::mse(&out, data.raw())
    }

    /// Direct parameter access for finite-difference tests.
    #[doc(hidden)]
    pub fn nudge_weight(&mut self, layer: usize, idx: usize, delta: f64) {
        self.layers[layer].w[idx] += delta;
    }

    /// The compute pool currently attached (sequential by default).
    pub fn compute_pool(&self) -> &Arc<ComputePool> {
        &self.pool
    }
}

impl OutlierModel for AutoEncoder {
    fn kind(&self) -> ModelKind {
        ModelKind::AutoEncoder
    }

    /// Train on the incoming batch: `epochs_per_batch` passes of mini-batch
    /// gradient descent.
    fn partial_fit(&mut self, data: &Dataset<'_>) {
        assert_eq!(data.cols(), self.config.features, "feature mismatch");
        if data.is_empty() {
            return;
        }
        let d = self.config.features;
        let mb = self.config.minibatch;
        let mut total = 0.0;
        let mut steps = 0;
        for _ in 0..self.config.epochs_per_batch.max(1) {
            for chunk in data.raw().chunks(mb * d) {
                let rows = chunk.len() / d;
                total += self.train_step(chunk, rows);
                steps += 1;
            }
        }
        self.last_loss = total / steps as f64;
    }

    /// Outlier score: per-row mean squared reconstruction error.
    fn score(&self, data: &Dataset<'_>) -> Vec<f64> {
        let recon = self.reconstruct(data);
        let d = self.config.features;
        data.raw()
            .chunks(d)
            .zip(recon.chunks(d))
            .map(|(x, y)| {
                x.iter()
                    .zip(y)
                    .map(|(&a, &b)| (a - b) * (a - b))
                    .sum::<f64>()
                    / d as f64
            })
            .collect()
    }

    /// Flat layout: for each layer, weights then biases.
    fn weights(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.parameter_count());
        for l in &self.layers {
            out.extend_from_slice(&l.w);
            out.extend_from_slice(&l.b);
        }
        out
    }

    fn set_weights(&mut self, weights: &[f64]) -> bool {
        if weights.len() != self.parameter_count() {
            return false;
        }
        let mut off = 0;
        for l in &mut self.layers {
            let wl = l.w.len();
            l.w.copy_from_slice(&weights[off..off + wl]);
            off += wl;
            let bl = l.b.len();
            l.b.copy_from_slice(&weights[off..off + bl]);
            off += bl;
        }
        true
    }

    fn set_compute_pool(&mut self, pool: Arc<ComputePool>) {
        self.pool = pool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> AutoEncoderConfig {
        AutoEncoderConfig {
            features: 4,
            hidden: vec![8, 4, 8],
            lr: 1e-2,
            epochs_per_batch: 50,
            minibatch: 16,
            optimizer: Optimizer::Adam,
            seed: 1,
        }
    }

    /// Points on a 1-D manifold embedded in 4-D (easily compressible).
    fn manifold_data(n: usize) -> Vec<f64> {
        let mut data = Vec::with_capacity(n * 4);
        for i in 0..n {
            let t = i as f64 / n as f64 * 2.0 - 1.0;
            data.extend_from_slice(&[t, 2.0 * t, -t, 0.5 * t]);
        }
        data
    }

    #[test]
    fn paper_parameter_count() {
        // The headline check: the paper states 11,552 parameters.
        let cfg = AutoEncoderConfig::paper();
        assert_eq!(cfg.parameter_count(), 11_552);
        let model = AutoEncoder::new(cfg);
        assert_eq!(model.parameter_count(), 11_552);
    }

    #[test]
    fn layer_dims_sandwich_hidden() {
        let cfg = AutoEncoderConfig::paper();
        assert_eq!(cfg.layer_dims(), vec![32, 32, 64, 32, 32, 64, 32, 32]);
    }

    #[test]
    fn training_reduces_loss() {
        let data = manifold_data(64);
        let ds = Dataset::new(&data, 64, 4);
        let mut ae = AutoEncoder::new(tiny_config());
        let before = ae.loss_on(&ds);
        for _ in 0..10 {
            ae.partial_fit(&ds);
        }
        let after = ae.loss_on(&ds);
        assert!(
            after < before * 0.5,
            "loss did not halve: before={before} after={after}"
        );
    }

    #[test]
    fn sgd_also_learns() {
        let mut cfg = tiny_config();
        cfg.optimizer = Optimizer::Sgd;
        cfg.lr = 0.05;
        let data = manifold_data(64);
        let ds = Dataset::new(&data, 64, 4);
        let mut ae = AutoEncoder::new(cfg);
        let before = ae.loss_on(&ds);
        for _ in 0..20 {
            ae.partial_fit(&ds);
        }
        assert!(ae.loss_on(&ds) < before, "SGD failed to reduce loss");
    }

    #[test]
    fn outliers_have_higher_reconstruction_error() {
        let mut data = manifold_data(128);
        // Off-manifold outliers.
        data.extend_from_slice(&[5.0, -5.0, 5.0, -5.0]);
        data.extend_from_slice(&[-4.0, 4.0, 4.0, 4.0]);
        let train = manifold_data(128);
        let train_ds = Dataset::new(&train, 128, 4);
        let mut ae = AutoEncoder::new(tiny_config());
        for _ in 0..20 {
            ae.partial_fit(&train_ds);
        }
        let ds = Dataset::new(&data, 130, 4);
        let scores = ae.score(&ds);
        let max_inlier = scores[..128].iter().cloned().fold(0.0f64, f64::max);
        assert!(scores[128] > max_inlier, "outlier 1 not detected");
        assert!(scores[129] > max_inlier, "outlier 2 not detected");
    }

    #[test]
    fn gradient_matches_finite_difference() {
        // Analytic gradient via one SGD step vs central finite differences.
        let mut cfg = tiny_config();
        cfg.optimizer = Optimizer::Sgd;
        cfg.epochs_per_batch = 1;
        let data = manifold_data(8);
        let ds = Dataset::new(&data, 8, 4);

        // Finite-difference gradient for a handful of weights in layer 0.
        for idx in [0usize, 3, 7] {
            let mut m = AutoEncoder::new(cfg.clone());
            let eps = 1e-6;
            m.nudge_weight(0, idx, eps);
            let up = m.loss_on(&ds);
            m.nudge_weight(0, idx, -2.0 * eps);
            let down = m.loss_on(&ds);
            m.nudge_weight(0, idx, eps); // restore
            let fd_grad = (up - down) / (2.0 * eps);

            // Analytic: after one SGD step with lr, w' = w − lr·g.
            let mut m2 = AutoEncoder::new(cfg.clone());
            let w_before = m2.weights();
            m2.partial_fit(&ds);
            let w_after = m2.weights();
            let analytic = (w_before[idx] - w_after[idx]) / cfg.lr;

            assert!(
                (fd_grad - analytic).abs() < 1e-4 * (1.0 + fd_grad.abs()),
                "idx={idx} fd={fd_grad} analytic={analytic}"
            );
        }
    }

    #[test]
    fn pool_width_never_changes_reconstruction() {
        // 300 rows spans multiple FORWARD_CHUNK chunks plus a partial one.
        let data = manifold_data(300);
        let ds = Dataset::new(&data, 300, 4);
        let mut seq = AutoEncoder::new(tiny_config());
        seq.partial_fit(&ds);
        let expect = seq.score(&ds);
        let trained = seq.weights();
        for width in [2usize, 3, 8] {
            let mut ae = AutoEncoder::new(tiny_config());
            assert!(ae.set_weights(&trained));
            ae.set_compute_pool(Arc::new(ComputePool::new(width)));
            assert_eq!(ae.score(&ds), expect, "width={width}");
        }
    }

    #[test]
    fn weights_roundtrip_preserves_behaviour() {
        let data = manifold_data(32);
        let ds = Dataset::new(&data, 32, 4);
        let mut a = AutoEncoder::new(tiny_config());
        a.partial_fit(&ds);
        let w = a.weights();
        assert_eq!(w.len(), a.parameter_count());
        let mut b = AutoEncoder::new(tiny_config().clone());
        assert!(b.set_weights(&w));
        assert_eq!(a.score(&ds), b.score(&ds));
    }

    #[test]
    fn set_weights_rejects_bad_shape() {
        let mut ae = AutoEncoder::new(tiny_config());
        assert!(!ae.set_weights(&[0.0; 3]));
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut ae = AutoEncoder::new(tiny_config());
        let data: [f64; 0] = [];
        ae.partial_fit(&Dataset::new(&data, 0, 4));
        assert!(ae.last_loss().is_nan());
    }

    #[test]
    fn reconstruct_shape_matches_input() {
        let data = manifold_data(10);
        let ds = Dataset::new(&data, 10, 4);
        let ae = AutoEncoder::new(tiny_config());
        assert_eq!(ae.reconstruct(&ds).len(), 40);
    }

    #[test]
    fn deterministic_initialisation() {
        let a = AutoEncoder::new(tiny_config());
        let b = AutoEncoder::new(tiny_config());
        assert_eq!(a.weights(), b.weights());
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn feature_mismatch_panics() {
        let ae = AutoEncoder::new(tiny_config());
        let data = [0.0; 6];
        ae.reconstruct(&Dataset::new(&data, 2, 3));
    }
}
