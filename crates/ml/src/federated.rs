//! Federated averaging — the paper's named future-work scenario ("we will
//! explore novel edge-to-cloud scenarios, e.g., federated learning").
//!
//! Implements the FedAvg aggregation rule (McMahan et al., 2017): each
//! round, clients train locally and upload `(weights, sample_count)`; the
//! server replaces the global model with the sample-weighted average. The
//! weight vectors are the flat parametrisations every [`crate::OutlierModel`]
//! already exposes, so any weighted model (k-means, auto-encoder) can be
//! trained federated without code changes — the `federated` example runs it
//! end-to-end over Pilot-Edge's parameter server.

/// One client's contribution to a round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Flat model parameters (layout defined by the model).
    pub weights: Vec<f64>,
    /// Local samples this update was trained on (its FedAvg weight).
    pub samples: u64,
}

/// Sample-weighted average of client updates (FedAvg).
///
/// Returns `None` if `updates` is empty, shapes disagree, or the total
/// sample count is zero.
pub fn fed_avg(updates: &[ClientUpdate]) -> Option<Vec<f64>> {
    let first = updates.first()?;
    let dim = first.weights.len();
    let total: u64 = updates.iter().map(|u| u.samples).sum();
    if total == 0 || updates.iter().any(|u| u.weights.len() != dim) {
        return None;
    }
    let mut out = vec![0.0; dim];
    for u in updates {
        let w = u.samples as f64 / total as f64;
        for (o, &v) in out.iter_mut().zip(&u.weights) {
            *o += w * v;
        }
    }
    Some(out)
}

/// A multi-round FedAvg coordinator tracking the global model.
#[derive(Debug, Clone)]
pub struct FedAvgServer {
    global: Vec<f64>,
    round: u64,
    /// Pending updates for the current round.
    pending: Vec<ClientUpdate>,
    /// Clients required per round before aggregation fires.
    clients_per_round: usize,
}

impl FedAvgServer {
    /// Start from an initial global model.
    pub fn new(initial: Vec<f64>, clients_per_round: usize) -> Self {
        assert!(clients_per_round > 0, "clients_per_round must be > 0");
        Self {
            global: initial,
            round: 0,
            pending: Vec::new(),
            clients_per_round,
        }
    }

    /// The current global model.
    pub fn global(&self) -> &[f64] {
        &self.global
    }

    /// Completed aggregation rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Updates waiting for the current round.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Submit a client update. When `clients_per_round` updates have
    /// arrived, the round aggregates and the new global model is returned.
    /// Shape-mismatched updates are rejected with `Err`.
    pub fn submit(&mut self, update: ClientUpdate) -> Result<Option<&[f64]>, String> {
        if update.weights.len() != self.global.len() {
            return Err(format!(
                "update has {} weights, global model has {}",
                update.weights.len(),
                self.global.len()
            ));
        }
        self.pending.push(update);
        if self.pending.len() >= self.clients_per_round {
            let aggregated = fed_avg(&self.pending)
                .ok_or_else(|| "aggregation failed (zero samples?)".to_string())?;
            self.global = aggregated;
            self.pending.clear();
            self.round += 1;
            Ok(Some(&self.global))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fed_avg_weighted_mean() {
        let updates = [
            ClientUpdate {
                weights: vec![0.0, 0.0],
                samples: 1,
            },
            ClientUpdate {
                weights: vec![3.0, 9.0],
                samples: 2,
            },
        ];
        // (1·[0,0] + 2·[3,9]) / 3 = [2, 6]
        assert_eq!(fed_avg(&updates), Some(vec![2.0, 6.0]));
    }

    #[test]
    fn fed_avg_rejects_bad_inputs() {
        assert_eq!(fed_avg(&[]), None);
        let mismatch = [
            ClientUpdate {
                weights: vec![1.0],
                samples: 1,
            },
            ClientUpdate {
                weights: vec![1.0, 2.0],
                samples: 1,
            },
        ];
        assert_eq!(fed_avg(&mismatch), None);
        let zero = [ClientUpdate {
            weights: vec![1.0],
            samples: 0,
        }];
        assert_eq!(fed_avg(&zero), None);
    }

    #[test]
    fn server_aggregates_when_round_fills() {
        let mut server = FedAvgServer::new(vec![0.0], 2);
        assert!(server
            .submit(ClientUpdate {
                weights: vec![10.0],
                samples: 1,
            })
            .unwrap()
            .is_none());
        assert_eq!(server.pending(), 1);
        let global = server
            .submit(ClientUpdate {
                weights: vec![20.0],
                samples: 3,
            })
            .unwrap()
            .unwrap()
            .to_vec();
        // (1·10 + 3·20)/4 = 17.5
        assert_eq!(global, vec![17.5]);
        assert_eq!(server.round(), 1);
        assert_eq!(server.pending(), 0);
    }

    #[test]
    fn server_rejects_shape_mismatch() {
        let mut server = FedAvgServer::new(vec![0.0, 0.0], 1);
        assert!(server
            .submit(ClientUpdate {
                weights: vec![1.0],
                samples: 1,
            })
            .is_err());
    }

    #[test]
    fn multiple_rounds_progress() {
        let mut server = FedAvgServer::new(vec![0.0], 1);
        for r in 1..=3 {
            server
                .submit(ClientUpdate {
                    weights: vec![r as f64],
                    samples: 1,
                })
                .unwrap();
            assert_eq!(server.round(), r);
            assert_eq!(server.global(), &[r as f64]);
        }
    }

    #[test]
    fn federated_kmeans_converges_like_central() {
        // Two clients with disjoint halves of the same mixture; federated
        // averaging of centroid matrices should land near the central fit.
        use crate::dataset::Dataset;
        use crate::kmeans::{KMeans, KMeansConfig};
        use crate::outlier::OutlierModel;
        let cfg = KMeansConfig {
            k: 2,
            features: 1,
            max_iters: 50,
            tol: 1e-9,
            seed: 3,
        };
        // Cluster A around 0, cluster B around 100.
        let client1: Vec<f64> = (0..50).map(|i| (i % 5) as f64 * 0.1).collect();
        let client2: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64 * 0.1).collect();
        let mut updates = Vec::new();
        for data in [&client1, &client2] {
            let ds = Dataset::new(data, 50, 1);
            let mut m = KMeans::new(cfg.clone());
            m.fit(&ds);
            updates.push(ClientUpdate {
                weights: m.weights(),
                samples: 50,
            });
        }
        // Each client sees ONE cluster, so both of its centroids sit there;
        // the average of the two client models lands near 50 for both
        // centroids — the textbook failure-and-fix motivation for running
        // *rounds* with shared initialisation. Verify the mechanics: the
        // average is the exact midpoint of the client centroids.
        let global = fed_avg(&updates).unwrap();
        let c1 = &updates[0].weights;
        let c2 = &updates[1].weights;
        for i in 0..2 {
            assert!((global[i] - (c1[i] + c2[i]) / 2.0).abs() < 1e-9);
        }
    }
}
