//! Federated averaging — the paper's named future-work scenario ("we will
//! explore novel edge-to-cloud scenarios, e.g., federated learning").
//!
//! Implements the FedAvg aggregation rule (McMahan et al., 2017): each
//! round, clients train locally and upload `(weights, sample_count)`; the
//! server replaces the global model with the sample-weighted average. The
//! weight vectors are the flat parametrisations every [`crate::OutlierModel`]
//! already exposes, so any weighted model (k-means, auto-encoder) can be
//! trained federated without code changes — the `federated` example runs it
//! end-to-end over Pilot-Edge's parameter server.

/// One client's contribution to a round.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientUpdate {
    /// Flat model parameters (layout defined by the model).
    pub weights: Vec<f64>,
    /// Local samples this update was trained on (its FedAvg weight).
    pub samples: u64,
}

/// Sample-weighted average of client updates (FedAvg).
///
/// Returns `None` if `updates` is empty, shapes disagree, or the total
/// sample count is zero.
pub fn fed_avg(updates: &[ClientUpdate]) -> Option<Vec<f64>> {
    let first = updates.first()?;
    let dim = first.weights.len();
    let total: u64 = updates.iter().map(|u| u.samples).sum();
    if total == 0 || updates.iter().any(|u| u.weights.len() != dim) {
        return None;
    }
    let mut out = vec![0.0; dim];
    for u in updates {
        let w = u.samples as f64 / total as f64;
        for (o, &v) in out.iter_mut().zip(&u.weights) {
            *o += w * v;
        }
    }
    Some(out)
}

/// FedAvg into a caller-owned buffer: same semantics as [`fed_avg`]
/// (returns `false` on empty input, shape mismatch, or zero total
/// samples, leaving `out` cleared), but reuses `out`'s capacity so a
/// steady-state aggregation loop allocates nothing per round.
///
/// Numerically this accumulates `samples · wᵢ` sums and normalizes once
/// at the end, so results agree with [`fed_avg`] to floating-point
/// rounding (not bit-exactly).
pub fn fed_avg_into(out: &mut Vec<f64>, updates: &[ClientUpdate]) -> bool {
    out.clear();
    let Some(first) = updates.first() else {
        return false;
    };
    let dim = first.weights.len();
    let total: u64 = updates.iter().map(|u| u.samples).sum();
    if total == 0 || updates.iter().any(|u| u.weights.len() != dim) {
        return false;
    }
    out.resize(dim, 0.0);
    for u in updates {
        let s = u.samples as f64;
        for (o, &v) in out.iter_mut().zip(&u.weights) {
            *o += s * v;
        }
    }
    let inv = 1.0 / total as f64;
    for o in out.iter_mut() {
        *o *= inv;
    }
    true
}

/// Streaming FedAvg: push `(weights, samples)` contributions one at a
/// time — no intermediate [`ClientUpdate`] vector, no per-contribution
/// allocation — then [`FedAvgAccumulator::finish_into`] a reusable
/// output buffer. This is the shape the hierarchical aggregators need:
/// regional tiers pull cell models as borrowed slices straight out of
/// the parameter server and fold them in place.
#[derive(Debug, Clone, Default)]
pub struct FedAvgAccumulator {
    sums: Vec<f64>,
    total: u64,
    count: usize,
    mismatch: bool,
}

impl FedAvgAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one contribution in. The first push fixes the shape; any
    /// later shape mismatch poisons the round (finish returns `false`),
    /// mirroring [`fed_avg`]'s all-or-nothing rule.
    pub fn push(&mut self, weights: &[f64], samples: u64) {
        if self.count == 0 {
            self.sums.clear();
            self.sums.resize(weights.len(), 0.0);
        } else if weights.len() != self.sums.len() {
            self.mismatch = true;
        }
        if self.mismatch {
            self.count += 1;
            return;
        }
        let s = samples as f64;
        for (o, &v) in self.sums.iter_mut().zip(weights) {
            *o += s * v;
        }
        self.total += samples;
        self.count += 1;
    }

    /// Contributions pushed since the last finish/reset.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Total samples folded in so far.
    pub fn total_samples(&self) -> u64 {
        self.total
    }

    /// Normalize the folded sums into `out` (capacity reused) and reset
    /// for the next round. Returns `false` — with `out` cleared — when
    /// nothing was pushed, shapes mismatched, or total samples are zero.
    pub fn finish_into(&mut self, out: &mut Vec<f64>) -> bool {
        out.clear();
        let ok = self.count > 0 && !self.mismatch && self.total > 0;
        if ok {
            out.extend_from_slice(&self.sums);
            let inv = 1.0 / self.total as f64;
            for o in out.iter_mut() {
                *o *= inv;
            }
        }
        self.sums.clear();
        self.total = 0;
        self.count = 0;
        self.mismatch = false;
        ok
    }
}

/// A multi-round FedAvg coordinator tracking the global model.
#[derive(Debug, Clone)]
pub struct FedAvgServer {
    global: Vec<f64>,
    round: u64,
    /// Pending updates for the current round.
    pending: Vec<ClientUpdate>,
    /// Clients required per round before aggregation fires.
    clients_per_round: usize,
}

impl FedAvgServer {
    /// Start from an initial global model.
    pub fn new(initial: Vec<f64>, clients_per_round: usize) -> Self {
        assert!(clients_per_round > 0, "clients_per_round must be > 0");
        Self {
            global: initial,
            round: 0,
            pending: Vec::new(),
            clients_per_round,
        }
    }

    /// The current global model.
    pub fn global(&self) -> &[f64] {
        &self.global
    }

    /// Completed aggregation rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Updates waiting for the current round.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Submit a client update. When `clients_per_round` updates have
    /// arrived, the round aggregates and the new global model is returned.
    /// Shape-mismatched updates are rejected with `Err`.
    pub fn submit(&mut self, update: ClientUpdate) -> Result<Option<&[f64]>, String> {
        if update.weights.len() != self.global.len() {
            return Err(format!(
                "update has {} weights, global model has {}",
                update.weights.len(),
                self.global.len()
            ));
        }
        self.pending.push(update);
        if self.pending.len() >= self.clients_per_round {
            let aggregated = fed_avg(&self.pending)
                .ok_or_else(|| "aggregation failed (zero samples?)".to_string())?;
            self.global = aggregated;
            self.pending.clear();
            self.round += 1;
            Ok(Some(&self.global))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fed_avg_weighted_mean() {
        let updates = [
            ClientUpdate {
                weights: vec![0.0, 0.0],
                samples: 1,
            },
            ClientUpdate {
                weights: vec![3.0, 9.0],
                samples: 2,
            },
        ];
        // (1·[0,0] + 2·[3,9]) / 3 = [2, 6]
        assert_eq!(fed_avg(&updates), Some(vec![2.0, 6.0]));
    }

    #[test]
    fn fed_avg_rejects_bad_inputs() {
        assert_eq!(fed_avg(&[]), None);
        let mismatch = [
            ClientUpdate {
                weights: vec![1.0],
                samples: 1,
            },
            ClientUpdate {
                weights: vec![1.0, 2.0],
                samples: 1,
            },
        ];
        assert_eq!(fed_avg(&mismatch), None);
        let zero = [ClientUpdate {
            weights: vec![1.0],
            samples: 0,
        }];
        assert_eq!(fed_avg(&zero), None);
    }

    #[test]
    fn server_aggregates_when_round_fills() {
        let mut server = FedAvgServer::new(vec![0.0], 2);
        assert!(server
            .submit(ClientUpdate {
                weights: vec![10.0],
                samples: 1,
            })
            .unwrap()
            .is_none());
        assert_eq!(server.pending(), 1);
        let global = server
            .submit(ClientUpdate {
                weights: vec![20.0],
                samples: 3,
            })
            .unwrap()
            .unwrap()
            .to_vec();
        // (1·10 + 3·20)/4 = 17.5
        assert_eq!(global, vec![17.5]);
        assert_eq!(server.round(), 1);
        assert_eq!(server.pending(), 0);
    }

    #[test]
    fn server_rejects_shape_mismatch() {
        let mut server = FedAvgServer::new(vec![0.0, 0.0], 1);
        assert!(server
            .submit(ClientUpdate {
                weights: vec![1.0],
                samples: 1,
            })
            .is_err());
    }

    #[test]
    fn multiple_rounds_progress() {
        let mut server = FedAvgServer::new(vec![0.0], 1);
        for r in 1..=3 {
            server
                .submit(ClientUpdate {
                    weights: vec![r as f64],
                    samples: 1,
                })
                .unwrap();
            assert_eq!(server.round(), r);
            assert_eq!(server.global(), &[r as f64]);
        }
    }

    #[test]
    fn fed_avg_into_reuses_buffer_and_matches() {
        let updates = [
            ClientUpdate {
                weights: vec![0.0, 0.0],
                samples: 1,
            },
            ClientUpdate {
                weights: vec![3.0, 9.0],
                samples: 2,
            },
        ];
        let mut out = Vec::with_capacity(8);
        let cap = out.capacity();
        assert!(fed_avg_into(&mut out, &updates));
        assert_eq!(out, vec![2.0, 6.0]);
        assert_eq!(out.capacity(), cap, "steady state must not reallocate");
        // Failure modes clear the buffer and report false.
        assert!(!fed_avg_into(&mut out, &[]));
        assert!(out.is_empty());
    }

    #[test]
    fn accumulator_streams_like_batch() {
        let mut acc = FedAvgAccumulator::new();
        acc.push(&[0.0, 0.0], 1);
        acc.push(&[3.0, 9.0], 2);
        assert_eq!(acc.count(), 2);
        assert_eq!(acc.total_samples(), 3);
        let mut out = Vec::new();
        assert!(acc.finish_into(&mut out));
        assert_eq!(out, vec![2.0, 6.0]);
        // finish resets: the accumulator is reusable for the next round.
        assert_eq!(acc.count(), 0);
        acc.push(&[5.0], 1);
        assert!(acc.finish_into(&mut out));
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn accumulator_rejects_mismatch_and_zero_samples() {
        let mut acc = FedAvgAccumulator::new();
        let mut out = vec![99.0];
        assert!(!acc.finish_into(&mut out), "empty round fails");
        assert!(out.is_empty());
        acc.push(&[1.0, 2.0], 1);
        acc.push(&[1.0], 1); // shape mismatch poisons the round
        assert!(!acc.finish_into(&mut out));
        acc.push(&[1.0], 0); // zero total samples
        assert!(!acc.finish_into(&mut out));
    }

    /// Materialize equal-shape updates from raw generated parts: each
    /// client's fixed-width weight row is truncated to the shared `dim`.
    fn make_updates(dim: usize, raw: &[(Vec<f64>, u64)]) -> Vec<ClientUpdate> {
        raw.iter()
            .map(|(w, s)| ClientUpdate {
                weights: w[..dim].to_vec(),
                samples: *s,
            })
            .collect()
    }

    proptest! {
        /// Sample-weight normalization: the average is a convex
        /// combination, so every coordinate stays inside the clients'
        /// per-coordinate envelope, and scaling every sample count by a
        /// common factor changes nothing (weights normalize).
        #[test]
        fn prop_normalization(
            dim in 1usize..6,
            raw in proptest::collection::vec(
                (proptest::collection::vec(-1e6f64..1e6, 6..7), 1u64..1000),
                1..8,
            ),
            scale in 1u64..50,
        ) {
            let updates = make_updates(dim, &raw);
            let avg = fed_avg(&updates).unwrap();
            for (d, a) in avg.iter().enumerate() {
                let lo = updates.iter().map(|u| u.weights[d]).fold(f64::MAX, f64::min);
                let hi = updates.iter().map(|u| u.weights[d]).fold(f64::MIN, f64::max);
                prop_assert!(*a >= lo - 1e-6 && *a <= hi + 1e-6);
            }
            let scaled: Vec<ClientUpdate> = updates
                .iter()
                .map(|u| ClientUpdate { weights: u.weights.clone(), samples: u.samples * scale })
                .collect();
            let avg2 = fed_avg(&scaled).unwrap();
            for (a, b) in avg.iter().zip(&avg2) {
                prop_assert!((a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0));
            }
        }

        /// Shape mismatch → None/false across all three entry points.
        #[test]
        fn prop_shape_mismatch_rejected(
            dim in 1usize..6,
            raw in proptest::collection::vec(
                (proptest::collection::vec(-1e6f64..1e6, 6..7), 1u64..1000),
                1..8,
            ),
            extra in -1e6f64..1e6,
        ) {
            let updates = make_updates(dim, &raw);
            let mut bad = updates.clone();
            // One extra client disagrees on dim — the whole round fails.
            bad.push(ClientUpdate {
                weights: vec![extra; dim + 1],
                samples: 1,
            });
            prop_assert_eq!(fed_avg(&bad), None);
            let mut out = vec![1.0];
            prop_assert!(!fed_avg_into(&mut out, &bad));
            prop_assert!(out.is_empty());
            let mut acc = FedAvgAccumulator::new();
            for u in &bad {
                acc.push(&u.weights, u.samples);
            }
            prop_assert!(!acc.finish_into(&mut out));
        }

        /// Permutation invariance: client order cannot matter (up to
        /// floating-point rounding), and the streaming paths agree with
        /// the batch path.
        #[test]
        fn prop_permutation_invariance(
            dim in 1usize..6,
            raw in proptest::collection::vec(
                (proptest::collection::vec(-1e6f64..1e6, 6..7), 1u64..1000),
                1..8,
            ),
            rot in 0usize..8,
        ) {
            let updates = make_updates(dim, &raw);
            let base = fed_avg(&updates).unwrap();
            let mut rotated = updates.clone();
            let n = rotated.len();
            rotated.rotate_left(rot % n);
            let tol = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
            let perm = fed_avg(&rotated).unwrap();
            let mut streamed = Vec::new();
            prop_assert!(fed_avg_into(&mut streamed, &rotated));
            let mut acc = FedAvgAccumulator::new();
            for u in &rotated {
                acc.push(&u.weights, u.samples);
            }
            let mut acc_out = Vec::new();
            prop_assert!(acc.finish_into(&mut acc_out));
            for d in 0..base.len() {
                prop_assert!(tol(base[d], perm[d]), "fed_avg perm at {}", d);
                prop_assert!(tol(base[d], streamed[d]), "fed_avg_into at {}", d);
                prop_assert!(tol(base[d], acc_out[d]), "accumulator at {}", d);
            }
        }
    }

    #[test]
    fn federated_kmeans_converges_like_central() {
        // Two clients with disjoint halves of the same mixture; federated
        // averaging of centroid matrices should land near the central fit.
        use crate::dataset::Dataset;
        use crate::kmeans::{KMeans, KMeansConfig};
        use crate::outlier::OutlierModel;
        let cfg = KMeansConfig {
            k: 2,
            features: 1,
            max_iters: 50,
            tol: 1e-9,
            seed: 3,
        };
        // Cluster A around 0, cluster B around 100.
        let client1: Vec<f64> = (0..50).map(|i| (i % 5) as f64 * 0.1).collect();
        let client2: Vec<f64> = (0..50).map(|i| 100.0 + (i % 5) as f64 * 0.1).collect();
        let mut updates = Vec::new();
        for data in [&client1, &client2] {
            let ds = Dataset::new(data, 50, 1);
            let mut m = KMeans::new(cfg.clone());
            m.fit(&ds);
            updates.push(ClientUpdate {
                weights: m.weights(),
                samples: 50,
            });
        }
        // Each client sees ONE cluster, so both of its centroids sit there;
        // the average of the two client models lands near 50 for both
        // centroids — the textbook failure-and-fix motivation for running
        // *rounds* with shared initialisation. Verify the mechanics: the
        // average is the exact midpoint of the client centroids.
        let global = fed_avg(&updates).unwrap();
        let c1 = &updates[0].weights;
        let c2 = &updates[1].weights;
        for i in 0..2 {
            assert!((global[i] - (c1[i] + c2[i]) / 2.0).abs() < 1e-9);
        }
    }
}
