//! k-means clustering with streaming (mini-batch) updates.
//!
//! The paper's lightest model: 25 clusters, scoring each point by its
//! distance to the nearest centroid. Two training paths are provided:
//!
//! * [`KMeans::fit`] — classic Lloyd's iterations with k-means++-style
//!   seeding, for offline use;
//! * [`KMeans::partial_fit`] — Sculley's mini-batch update (per-centroid
//!   learning rate `1/count`), which is what the streaming pipeline calls
//!   per message ("the model is updated based on the incoming data").

use crate::dataset::{sq_dist, Dataset};
use crate::outlier::{ModelKind, OutlierModel};
use pilot_dataflow::ComputePool;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::sync::Arc;

/// Rows per compute-pool unit in the assignment/scoring kernels. Fixed
/// (never derived from pool width): partial centroid sums are merged in
/// chunk-index order, so for a given dataset the floating-point operation
/// order — and therefore every centroid and inertia bit — is identical
/// whether the pool is 1 or N threads wide.
const ROW_CHUNK: usize = 256;

/// Configuration for [`KMeans`].
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters (the paper uses 25).
    pub k: usize,
    /// Feature dimensionality.
    pub features: usize,
    /// Maximum Lloyd's iterations in [`KMeans::fit`].
    pub max_iters: usize,
    /// Relative inertia-improvement tolerance for early stopping.
    pub tol: f64,
    /// RNG seed for seeding centroids.
    pub seed: u64,
}

impl KMeansConfig {
    /// The paper's configuration: k = 25 over 32 features.
    pub fn paper() -> Self {
        Self {
            k: 25,
            features: 32,
            max_iters: 20,
            tol: 1e-4,
            seed: 42,
        }
    }
}

/// # Example
///
/// ```
/// use pilot_ml::{Dataset, KMeans, KMeansConfig, OutlierModel};
///
/// let data = vec![0.0, 0.1, 0.2, 10.0, 10.1, 9.9]; // two 1-D clusters
/// let ds = Dataset::new(&data, 6, 1);
/// let mut km = KMeans::new(KMeansConfig { k: 2, features: 1, max_iters: 20, tol: 1e-6, seed: 1 });
/// km.fit(&ds);
/// let far = [100.0];
/// let near = [0.1];
/// assert!(km.nearest(&far).1 > km.nearest(&near).1); // outliers score higher
/// ```
/// A k-means model. Centroids are lazily seeded from the first batch.
#[derive(Debug)]
pub struct KMeans {
    config: KMeansConfig,
    /// Row-major `k × features`; empty until the first batch arrives.
    centroids: Vec<f64>,
    /// Points assigned to each centroid so far (mini-batch learning rates).
    counts: Vec<u64>,
    rng: StdRng,
    /// Fan-out for the assignment/scoring kernels; sequential by default.
    pool: Arc<ComputePool>,
}

impl KMeans {
    /// Create an untrained model.
    pub fn new(config: KMeansConfig) -> Self {
        assert!(config.k > 0, "k must be > 0");
        assert!(config.features > 0, "features must be > 0");
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            config,
            centroids: Vec::new(),
            counts: Vec::new(),
            rng,
            pool: Arc::new(ComputePool::sequential()),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &KMeansConfig {
        &self.config
    }

    /// Row-major `k × features` centroid matrix (empty before training).
    pub fn centroids(&self) -> &[f64] {
        &self.centroids
    }

    /// True once centroids exist.
    pub fn is_trained(&self) -> bool {
        !self.centroids.is_empty()
    }

    /// k-means++ style seeding: first centroid uniform, subsequent ones
    /// sampled proportionally to squared distance from the nearest chosen
    /// centroid. If the batch has fewer rows than k, rows are recycled.
    fn seed_centroids(&mut self, data: &Dataset<'_>) {
        let k = self.config.k;
        let d = self.config.features;
        let n = data.rows();
        let mut centroids = Vec::with_capacity(k * d);
        let first = self.rng.random_range(0..n);
        centroids.extend_from_slice(data.row(first));
        let mut dists: Vec<f64> = (0..n)
            .map(|i| sq_dist(data.row(i), &centroids[0..d]))
            .collect();
        while centroids.len() < k * d {
            let total: f64 = dists.iter().sum();
            let chosen = if total <= 0.0 {
                self.rng.random_range(0..n)
            } else {
                let mut target = self.rng.random::<f64>() * total;
                let mut idx = n - 1;
                for (i, &w) in dists.iter().enumerate() {
                    if target < w {
                        idx = i;
                        break;
                    }
                    target -= w;
                }
                idx
            };
            let start = centroids.len();
            centroids.extend_from_slice(data.row(chosen));
            let new_c = centroids[start..start + d].to_vec();
            for (i, dist) in dists.iter_mut().enumerate() {
                *dist = dist.min(sq_dist(data.row(i), &new_c));
            }
        }
        self.centroids = centroids;
        self.counts = vec![1; k];
    }

    /// Index of (and squared distance to) the centroid nearest to `point`.
    pub fn nearest(&self, point: &[f64]) -> (usize, f64) {
        let d = self.config.features;
        let mut best = (0usize, f64::INFINITY);
        for c in 0..self.config.k {
            let dist = sq_dist(point, &self.centroids[c * d..(c + 1) * d]);
            if dist < best.1 {
                best = (c, dist);
            }
        }
        best
    }

    /// Assign every row to its nearest centroid.
    pub fn predict(&self, data: &Dataset<'_>) -> Vec<usize> {
        assert!(self.is_trained(), "predict before training");
        let view = *data;
        let mut labels = vec![0usize; data.rows()];
        self.pool
            .for_each_chunk_mut(&mut labels, ROW_CHUNK, |ci, chunk| {
                let base = ci * ROW_CHUNK;
                for (off, l) in chunk.iter_mut().enumerate() {
                    *l = self.nearest(view.row(base + off)).0;
                }
            });
        labels
    }

    /// Sum of squared distances of rows to their nearest centroid. Summed
    /// per fixed-size chunk, then over chunks in index order — the same
    /// operation order at every pool width.
    pub fn inertia(&self, data: &Dataset<'_>) -> f64 {
        let view = *data;
        let n_chunks = data.rows().div_ceil(ROW_CHUNK);
        self.pool
            .map(n_chunks, |ci| {
                let start = ci * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(view.rows());
                let mut acc = 0.0;
                for i in start..end {
                    acc += self.nearest(view.row(i)).1;
                }
                acc
            })
            .into_iter()
            .sum()
    }

    /// Batch Lloyd's iterations (seeding from the batch if untrained).
    pub fn fit(&mut self, data: &Dataset<'_>) {
        assert_eq!(data.cols(), self.config.features, "feature mismatch");
        if data.is_empty() {
            return;
        }
        if !self.is_trained() {
            self.seed_centroids(data);
        }
        let k = self.config.k;
        let d = self.config.features;
        let n_chunks = data.rows().div_ceil(ROW_CHUNK);
        let mut prev_inertia = f64::INFINITY;
        for _ in 0..self.config.max_iters {
            // Assignment + accumulation, fanned over fixed row chunks; each
            // unit builds partial centroid sums for its rows only.
            let view = *data;
            let this = &*self;
            let partials = this.pool.map(n_chunks, |ci| {
                let start = ci * ROW_CHUNK;
                let end = (start + ROW_CHUNK).min(view.rows());
                let mut sums = vec![0.0; k * d];
                let mut counts = vec![0u64; k];
                let mut inertia = 0.0;
                for i in start..end {
                    let row = view.row(i);
                    let (c, dist) = this.nearest(row);
                    inertia += dist;
                    counts[c] += 1;
                    for (s, &v) in sums[c * d..(c + 1) * d].iter_mut().zip(row) {
                        *s += v;
                    }
                }
                (sums, counts, inertia)
            });
            // Deterministic merge: always in chunk-index order, so the
            // floating-point sums are bit-equal at every pool width.
            let mut sums = vec![0.0; k * d];
            let mut counts = vec![0u64; k];
            let mut inertia = 0.0;
            for (part_sums, part_counts, part_inertia) in partials {
                for (s, v) in sums.iter_mut().zip(part_sums) {
                    *s += v;
                }
                for (c, v) in counts.iter_mut().zip(part_counts) {
                    *c += v;
                }
                inertia += part_inertia;
            }
            // Update step; empty clusters keep their centroid.
            for c in 0..k {
                if counts[c] > 0 {
                    for (ct, &s) in self.centroids[c * d..(c + 1) * d]
                        .iter_mut()
                        .zip(&sums[c * d..(c + 1) * d])
                    {
                        *ct = s / counts[c] as f64;
                    }
                }
            }
            if prev_inertia.is_finite()
                && (prev_inertia - inertia).abs() <= self.config.tol * prev_inertia.abs()
            {
                break;
            }
            prev_inertia = inertia;
        }
    }
}

impl OutlierModel for KMeans {
    fn kind(&self) -> ModelKind {
        ModelKind::KMeans
    }

    /// One mini-batch pass (Sculley 2010): each point pulls its nearest
    /// centroid toward it with learning rate `1 / count(centroid)`.
    fn partial_fit(&mut self, data: &Dataset<'_>) {
        assert_eq!(data.cols(), self.config.features, "feature mismatch");
        if data.is_empty() {
            return;
        }
        if !self.is_trained() {
            self.seed_centroids(data);
        }
        let d = self.config.features;
        for row in data.iter_rows() {
            let (c, _) = self.nearest(row);
            self.counts[c] += 1;
            let eta = 1.0 / self.counts[c] as f64;
            for (ct, &v) in self.centroids[c * d..(c + 1) * d].iter_mut().zip(row) {
                *ct += eta * (v - *ct);
            }
        }
    }

    /// Outlier score: Euclidean distance to the nearest centroid, fanned
    /// over fixed row chunks (bit-identical at every pool width).
    fn score(&self, data: &Dataset<'_>) -> Vec<f64> {
        assert!(self.is_trained(), "score before training");
        let view = *data;
        let mut scores = vec![0.0; data.rows()];
        self.pool
            .for_each_chunk_mut(&mut scores, ROW_CHUNK, |ci, chunk| {
                let base = ci * ROW_CHUNK;
                for (off, s) in chunk.iter_mut().enumerate() {
                    *s = self.nearest(view.row(base + off)).1.sqrt();
                }
            });
        scores
    }

    fn weights(&self) -> Vec<f64> {
        // Layout: [centroids (k·d), counts (k)] — counts travel so that a
        // worker resuming from the parameter server keeps the learning-rate
        // schedule.
        let mut w = self.centroids.clone();
        w.extend(self.counts.iter().map(|&c| c as f64));
        w
    }

    fn set_weights(&mut self, weights: &[f64]) -> bool {
        let k = self.config.k;
        let d = self.config.features;
        if weights.len() != k * d + k {
            return false;
        }
        self.centroids = weights[..k * d].to_vec();
        self.counts = weights[k * d..]
            .iter()
            .map(|&c| c.max(1.0) as u64)
            .collect();
        true
    }

    fn set_compute_pool(&mut self, pool: Arc<ComputePool>) {
        self.pool = pool;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated 2-D clusters.
    fn three_clusters() -> (Vec<f64>, usize) {
        let mut data = Vec::new();
        let centres = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut rng_state = 1u64;
        let mut next = || {
            // xorshift for cheap deterministic jitter
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state % 1000) as f64 / 1000.0 - 0.5
        };
        for &(cx, cy) in &centres {
            for _ in 0..50 {
                data.push(cx + next());
                data.push(cy + next());
            }
        }
        (data, 150)
    }

    fn cfg(k: usize, d: usize) -> KMeansConfig {
        KMeansConfig {
            k,
            features: d,
            max_iters: 50,
            tol: 1e-6,
            seed: 7,
        }
    }

    #[test]
    fn fit_recovers_separated_clusters() {
        let (data, n) = three_clusters();
        let ds = Dataset::new(&data, n, 2);
        let mut km = KMeans::new(cfg(3, 2));
        km.fit(&ds);
        // Every point should end up within 1.0 of its centroid.
        let max_dist = km.score(&ds).into_iter().fold(0.0f64, f64::max);
        assert!(max_dist < 1.0, "max_dist={max_dist}");
    }

    #[test]
    fn fit_reduces_inertia() {
        let (data, n) = three_clusters();
        let ds = Dataset::new(&data, n, 2);
        let mut km = KMeans::new(cfg(3, 2));
        km.partial_fit(&ds); // rough seeding + one mini-batch pass
        let before = km.inertia(&ds);
        km.fit(&ds);
        let after = km.inertia(&ds);
        assert!(after <= before + 1e-9, "before={before} after={after}");
    }

    #[test]
    fn partial_fit_converges_toward_clusters() {
        let (data, n) = three_clusters();
        let ds = Dataset::new(&data, n, 2);
        let mut km = KMeans::new(cfg(3, 2));
        for _ in 0..30 {
            km.partial_fit(&ds);
        }
        let mean_score = km.score(&ds).iter().sum::<f64>() / n as f64;
        assert!(mean_score < 1.0, "mean_score={mean_score}");
    }

    #[test]
    fn outliers_score_higher_than_inliers() {
        // Fit on the clean clusters, then score a set containing a blatant
        // outlier: including the outlier in the fit makes the test a bet on
        // whether k-means++ spends a centroid on it (pure seed luck with
        // k=3 and four natural groups).
        let (data, n) = three_clusters();
        let mut km = KMeans::new(cfg(3, 2));
        km.fit(&Dataset::new(&data, n, 2));
        let mut with_outlier = data;
        with_outlier.extend_from_slice(&[100.0, -100.0]); // blatant outlier
        let ds = Dataset::new(&with_outlier, n + 1, 2);
        let scores = km.score(&ds);
        let outlier_score = scores[n];
        let max_inlier = scores[..n].iter().cloned().fold(0.0f64, f64::max);
        assert!(outlier_score > 10.0 * max_inlier);
    }

    #[test]
    fn predict_assigns_consistent_labels() {
        let (data, n) = three_clusters();
        let ds = Dataset::new(&data, n, 2);
        let mut km = KMeans::new(cfg(3, 2));
        km.fit(&ds);
        let labels = km.predict(&ds);
        // Points in the same generated cluster share a label.
        for chunk in labels.chunks(50) {
            assert!(chunk.iter().all(|&l| l == chunk[0]), "labels={chunk:?}");
        }
    }

    #[test]
    fn pool_width_never_changes_fit_or_scores() {
        let (data, n) = three_clusters();
        let ds = Dataset::new(&data, n, 2);
        let mut seq = KMeans::new(cfg(3, 2));
        seq.fit(&ds);
        let expect_centroids = seq.centroids().to_vec();
        let expect_scores = seq.score(&ds);
        let expect_inertia = seq.inertia(&ds);
        for width in [2usize, 3, 8] {
            let mut km = KMeans::new(cfg(3, 2));
            km.set_compute_pool(Arc::new(ComputePool::new(width)));
            km.fit(&ds);
            assert_eq!(km.centroids(), expect_centroids.as_slice(), "width={width}");
            assert_eq!(km.score(&ds), expect_scores, "width={width}");
            assert_eq!(km.inertia(&ds), expect_inertia, "width={width}");
            assert_eq!(km.predict(&ds), seq.predict(&ds), "width={width}");
        }
    }

    #[test]
    fn weights_roundtrip() {
        let (data, n) = three_clusters();
        let ds = Dataset::new(&data, n, 2);
        let mut km = KMeans::new(cfg(3, 2));
        km.fit(&ds);
        let w = km.weights();
        assert_eq!(w.len(), 3 * 2 + 3);
        let mut km2 = KMeans::new(cfg(3, 2));
        assert!(km2.set_weights(&w));
        assert_eq!(km2.centroids(), km.centroids());
        assert_eq!(km2.score(&ds), km.score(&ds));
    }

    #[test]
    fn set_weights_rejects_bad_shape() {
        let mut km = KMeans::new(cfg(3, 2));
        assert!(!km.set_weights(&[1.0, 2.0]));
        assert!(!km.is_trained());
    }

    #[test]
    fn seeding_with_fewer_rows_than_k() {
        let data = [0.0, 0.0, 1.0, 1.0]; // 2 rows, k = 3
        let ds = Dataset::new(&data, 2, 2);
        let mut km = KMeans::new(cfg(3, 2));
        km.partial_fit(&ds);
        assert!(km.is_trained());
        assert_eq!(km.centroids().len(), 6);
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut km = KMeans::new(cfg(3, 2));
        let data: [f64; 0] = [];
        km.partial_fit(&Dataset::new(&data, 0, 2));
        assert!(!km.is_trained());
    }

    #[test]
    fn paper_config() {
        let c = KMeansConfig::paper();
        assert_eq!(c.k, 25);
        assert_eq!(c.features, 32);
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn dimension_mismatch_panics() {
        let data = [0.0; 6];
        let ds = Dataset::new(&data, 2, 3);
        let mut km = KMeans::new(cfg(3, 2));
        km.fit(&ds);
    }
}
