//! # pilot-metrics — the Pilot-Edge monitoring fabric
//!
//! The Pilot-Edge paper (Section II-B, "step 3") emphasises *comprehensive
//! monitoring*: every component of an edge-to-cloud pipeline — the edge data
//! generator, the broker, and the cloud processing service — captures metrics
//! that are **linked by a unique job identifier** so that "progress and errors
//! can be consistently tracked across all components" and bottlenecks are easy
//! to identify (e.g. Fig. 2's observation that with four partitions the Kafka
//! broker can process more data than the consuming cloud tasks).
//!
//! This crate provides that fabric:
//!
//! * [`MetricsRegistry`] — a sharded, thread-safe sink for [`Span`] records
//!   and named [`Counter`]s / [`Histogram`]s, with a single monotonic epoch so
//!   timestamps from different threads are comparable.
//! * [`Span`] — one timed unit of work in one [`Component`], keyed by
//!   `(job_id, msg_id)` so the end-to-end path of a message can be
//!   reconstructed across components.
//! * [`ComponentStats`] / [`PipelineReport`] — aggregation: per-component
//!   throughput (messages/s and MB/s), latency quantiles, end-to-end message
//!   latency (produce start → final process end), and a bottleneck verdict.
//! * [`Histogram`] — a log-bucketed latency histogram with cheap recording
//!   and quantile queries, mergeable across shards.
//! * [`EnergyModel`] — the simple active-time × wattage energy estimate the
//!   paper lists as future work.
//! * [`telemetry`] — the *live* plane: lock-free [`Gauge`]s, the
//!   [`TelemetrySampler`] frame ring, and the online bottleneck
//!   [`attribute`]-or over linked span chains.
//! * [`trace`] — Chrome `trace_event` JSON export
//!   (`chrome://tracing` / Perfetto-loadable) of span chains + gauge
//!   series, with a dependency-free validator for CI smokes.
//!
//! The registry is designed for the hot path of a streaming pipeline: span
//! recording takes one shard lock (sharded by thread to avoid contention) and
//! one `Vec::push`.

pub mod clock;
pub mod counter;
pub mod energy;
pub mod export;
pub mod histogram;
pub mod json;
pub mod prometheus;
pub mod registry;
pub mod report;
pub mod span;
pub mod telemetry;
pub mod timeline;
pub mod top;
pub mod trace;

pub use clock::Clock;
pub use counter::Counter;
pub use energy::{EnergyModel, ResourceClass};
pub use export::{read_csv, write_csv};
pub use histogram::Histogram;
pub use json::{push_json_string, validate_json};
pub use prometheus::{prometheus_exposition, validate_prometheus};
pub use registry::{JobSpans, MetricsRegistry};
pub use report::{ComponentStats, EndToEnd, PipelineReport, ReportBuilder};
pub use span::{Component, JobId, MsgId, Span, SpanBuilder};
pub use telemetry::{
    attribute, frames_json, Attribution, Gauge, Probe, TelemetryFrame, TelemetrySampler,
    WindowAttribution,
};
pub use timeline::{TimeBucket, Timeline};
pub use top::{TopView, PIPELINE_GAUGES};
pub use trace::{
    chrome_trace_json, validate_trace_json, write_chrome_trace, write_chrome_trace_to,
};
