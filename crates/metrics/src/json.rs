//! Hand-rolled JSON building blocks shared by the exporters.
//!
//! No JSON library is taken on as a dependency: the Chrome-trace writer,
//! the telemetry-frame serializer, and the gateway's endpoint payloads all
//! emit flat, fully-controlled output through [`push_json_string`], and
//! tests/CI smokes prove the output well-formed with [`validate_json`] — a
//! full-grammar recursive-descent checker (objects, arrays, strings with
//! escapes, numbers, bools, null), deliberately a *validator* rather than
//! a parser into a document tree.

/// Append `s` as a JSON string literal, escaping per RFC 8259.
pub fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Validate `text` as one complete JSON value (full grammar, no trailing
/// garbage).
pub fn validate_json(text: &str) -> Result<(), String> {
    validate_json_counting(text, None).map(|_| ())
}

/// Validate `text` as one complete JSON value and, if `count_key` is set,
/// return the element count of the first array found under that object key
/// (`None` if no such key holds an array anywhere in the document).
pub(crate) fn validate_json_counting(
    text: &str,
    count_key: Option<&str>,
) -> Result<Option<usize>, String> {
    let mut v = Validator {
        bytes: text.as_bytes(),
        pos: 0,
        count_key,
        counted: None,
        depth: 0,
    };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.bytes.len() {
        return Err(format!("trailing garbage at byte {}", v.pos));
    }
    Ok(v.counted)
}

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Object key whose array value should be counted, if any.
    count_key: Option<&'a str>,
    /// Element count of the first array found under `count_key`.
    counted: Option<usize>,
    depth: usize,
}

impl Validator<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > 128 {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        let r = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => {
                self.array()?;
                Ok(())
            }
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        };
        self.depth -= 1;
        r
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            if self.count_key == Some(key.as_str()) && self.peek() == Some(b'[') {
                let n = self.array()?;
                if self.counted.is_none() {
                    self.counted = Some(n);
                }
            } else {
                self.value()?;
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    /// Validate an array, returning its element count.
    fn array(&mut self) -> Result<usize, String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        let mut n = 0;
        loop {
            self.value()?;
            n += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(n);
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r' | b't' | b'b' | b'f') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(format!("raw control byte {c:#04x} in string")),
                Some(_) => {
                    // Skip one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let ch = self.remaining_char();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn remaining_char(&self) -> char {
        // Safe: `bytes` comes from a &str and pos is always on a boundary.
        std::str::from_utf8(&self.bytes[self.pos..])
            .expect("validator input is UTF-8")
            .chars()
            .next()
            .expect("peeked non-empty")
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |v: &mut Self| {
            let s = v.pos;
            while matches!(v.peek(), Some(c) if c.is_ascii_digit()) {
                v.pos += 1;
            }
            v.pos > s
        };
        let int_start = self.pos;
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        // JSON forbids leading zeros ("01" is not a number).
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return Err(format!("leading zero in number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_standalone_values() {
        for good in [
            "{}",
            "[]",
            "[1,2,3]",
            "\"x\"",
            "-1.5e+3",
            "true",
            "null",
            "{\"a\":{\"b\":[1,\"\\u00e9\\n\"]}}",
        ] {
            assert!(validate_json(good).is_ok(), "rejected: {good}");
        }
    }

    #[test]
    fn rejects_malformed_values() {
        for bad in ["", "{", "[1,]", "{\"a\":01}", "'x'", "[1] x", "nul"] {
            assert!(validate_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn counts_array_under_key() {
        let n = validate_json_counting("{\"rows\":[1,2,3],\"rows\":[9]}", Some("rows")).unwrap();
        assert_eq!(n, Some(3), "first occurrence wins");
        let n = validate_json_counting("{\"other\":[1]}", Some("rows")).unwrap();
        assert_eq!(n, None);
    }

    #[test]
    fn push_json_string_escapes_hostile_input() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd\u{1}e");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001e\"");
        assert!(validate_json(&out).is_ok());
    }
}
