//! The shared `pilot_top` view: one implementation of the live per-stage
//! table, consumed by both the `pilot_top` bin (text) and the gateway's
//! `GET /top` endpoint (JSON) — so the two renderings can never drift.
//!
//! A [`TopView`] is one tick of the table: the latest telemetry frame's
//! levels for a chosen gauge set (in display order), the processed/expected
//! message counts, and — when the caller ran the bottleneck attributor —
//! the dominant component label.

use crate::json::push_json_string;
use crate::telemetry::TelemetryFrame;

/// The pipeline stage gauges shown in the live table, in display order
/// (the `pilot_top` wan/compute scenarios and the pipeline gateway's
/// `GET /top` both show exactly these).
pub const PIPELINE_GAUGES: &[&str] = &[
    "producer.deadline_queue_depth",
    "producer.inflight_batch_bytes",
    "consumer.prefetch_occupancy",
    "broker.lag.total",
    "net.edge_broker.pending_us",
    "net.broker_cloud.pending_us",
    "cloud.compute_pool_occupancy",
];

/// One tick of the live per-stage table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopView {
    /// Frame timestamp, µs since the registry epoch.
    pub t_us: u64,
    /// Messages fully processed so far.
    pub processed: u64,
    /// Expected message total, when the caller knows the stream length.
    pub expected: Option<u64>,
    /// `(gauge name, level)` rows, in display order; gauges absent from
    /// the frame are dropped.
    pub rows: Vec<(String, i64)>,
    /// Dominant component label from the bottleneck attributor, when the
    /// caller ran it (e.g. `"net:b->c"`).
    pub bottleneck: Option<String>,
}

impl TopView {
    /// Build the view for one frame: `gauge_names` picks the rows and
    /// their order.
    pub fn from_frame(
        frame: &TelemetryFrame,
        gauge_names: &[&str],
        processed: u64,
        expected: Option<u64>,
    ) -> Self {
        let rows = gauge_names
            .iter()
            .filter_map(|name| frame.value(name).map(|v| (name.to_string(), v)))
            .collect();
        Self {
            t_us: frame.t_us,
            processed,
            expected,
            rows,
            bottleneck: None,
        }
    }

    /// The `pilot_top` text rendering: a header line and one aligned row
    /// per gauge, terminated by a blank line.
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 52);
        match self.expected {
            Some(expected) => out.push_str(&format!(
                "t={:>9}µs  processed {}/{}\n",
                self.t_us, self.processed, expected
            )),
            None => out.push_str(&format!(
                "t={:>9}µs  processed {}\n",
                self.t_us, self.processed
            )),
        }
        for (name, value) in &self.rows {
            out.push_str(&format!("  {name:<34} {value:>12}\n"));
        }
        if let Some(b) = &self.bottleneck {
            out.push_str(&format!("  bottleneck: {b}\n"));
        }
        out.push('\n');
        out
    }

    /// The JSON rendering served by `GET /top`:
    /// `{"t_us":N,"processed":N,"expected":N|null,
    ///   "rows":[{"name":"...","value":N},...],"bottleneck":"..."|null}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.rows.len() * 48);
        out.push_str("{\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"processed\":");
        out.push_str(&self.processed.to_string());
        out.push_str(",\"expected\":");
        match self.expected {
            Some(e) => out.push_str(&e.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"rows\":[");
        for (i, (name, value)) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            push_json_string(&mut out, name);
            out.push_str(",\"value\":");
            out.push_str(&value.to_string());
            out.push('}');
        }
        out.push_str("],\"bottleneck\":");
        match &self.bottleneck {
            Some(b) => push_json_string(&mut out, b),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;
    use std::sync::Arc;

    fn frame() -> TelemetryFrame {
        TelemetryFrame {
            t_us: 1234,
            values: vec![
                (Arc::from("broker.lag.total"), 7),
                (Arc::from("cloud.compute_pool_occupancy"), 2),
                (Arc::from("unrelated.gauge"), 99),
            ],
        }
    }

    #[test]
    fn from_frame_keeps_display_order_and_drops_missing() {
        let view = TopView::from_frame(&frame(), PIPELINE_GAUGES, 10, Some(20));
        assert_eq!(
            view.rows,
            vec![
                ("broker.lag.total".to_string(), 7),
                ("cloud.compute_pool_occupancy".to_string(), 2),
            ]
        );
    }

    #[test]
    fn text_matches_the_pilot_top_format() {
        let view = TopView::from_frame(&frame(), &["broker.lag.total"], 10, Some(20));
        assert_eq!(
            view.to_text(),
            "t=     1234µs  processed 10/20\n  broker.lag.total                              7\n\n"
        );
    }

    #[test]
    fn text_without_expected_omits_the_denominator() {
        let view = TopView::from_frame(&frame(), &[], 10, None);
        assert!(view.to_text().starts_with("t=     1234µs  processed 10\n"));
    }

    #[test]
    fn json_is_valid_and_carries_all_fields() {
        let mut view = TopView::from_frame(&frame(), PIPELINE_GAUGES, 10, None);
        view.bottleneck = Some("net:b->c \"quoted\"".to_string());
        let json = view.to_json();
        validate_json(&json).expect("valid JSON");
        assert!(json.contains("\"expected\":null"));
        assert!(json.contains("\"name\":\"broker.lag.total\",\"value\":7"));
        assert!(json.contains("\"bottleneck\":\"net:b->c \\\"quoted\\\"\""));
    }
}
