//! Prometheus text exposition (format version 0.0.4) of a registry's
//! gauges and counters.
//!
//! Pilot-Edge gauge/counter names are dotted paths
//! (`broker.lag.total`, `gateway.requests`) — not valid Prometheus metric
//! names — so the exposition models them as two metric families keyed by a
//! `name` label:
//!
//! ```text
//! pilot_gauge{name="broker.lag.total"} 42
//! pilot_counter{name="outliers_detected"} 7
//! ```
//!
//! Label values carry the exposition-format escapes (`\\`, `\"`, `\n`), so
//! a hostile gauge name cannot corrupt the page. [`validate_prometheus`]
//! is the matching dependency-free checker used by tests and the CI smoke
//! to prove a scrape parses.

use crate::registry::MetricsRegistry;

/// Render every gauge and counter of `registry` as a Prometheus text
/// exposition page.
pub fn prometheus_exposition(registry: &MetricsRegistry) -> String {
    let gauges = registry.gauges();
    let counters = registry.counters();
    let mut out = String::with_capacity(128 + (gauges.len() + counters.len()) * 48);
    out.push_str("# HELP pilot_gauge Live level of a named Pilot-Edge gauge.\n");
    out.push_str("# TYPE pilot_gauge gauge\n");
    for (name, gauge) in &gauges {
        out.push_str("pilot_gauge{name=\"");
        push_label_value(&mut out, name);
        out.push_str("\"} ");
        out.push_str(&gauge.get().to_string());
        out.push('\n');
    }
    out.push_str("# HELP pilot_counter Monotonic count of a named Pilot-Edge event.\n");
    out.push_str("# TYPE pilot_counter counter\n");
    for (name, counter) in &counters {
        out.push_str("pilot_counter{name=\"");
        push_label_value(&mut out, name);
        out.push_str("\"} ");
        out.push_str(&counter.get().to_string());
        out.push('\n');
    }
    out
}

/// Append `s` as a Prometheus label value, escaping `\`, `"`, and newline
/// per the text exposition format.
fn push_label_value(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Validate `text` as a Prometheus text exposition page: every line must
/// be a well-formed comment (`# HELP`/`# TYPE` carry a valid metric name)
/// or a sample (`name{labels} value [timestamp]` with valid metric/label
/// names, correctly escaped label values, and a float-parseable value).
/// Returns the number of samples.
pub fn validate_prometheus(text: &str) -> Result<usize, String> {
    let mut samples = 0;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.trim_start().splitn(2, ' ');
            if let Some(kind @ ("HELP" | "TYPE")) = words.next() {
                let rest = words.next().unwrap_or("");
                let name = rest.split(' ').next().unwrap_or("");
                if !is_metric_name(name) {
                    return Err(format!(
                        "line {lineno}: bad metric name in # {kind}: {name:?}"
                    ));
                }
                if kind == "TYPE" {
                    let ty = rest.split(' ').nth(1).unwrap_or("");
                    if !matches!(
                        ty,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: bad metric type {ty:?}"));
                    }
                }
            }
            continue; // other comments are free-form
        }
        validate_sample(line).map_err(|e| format!("line {lineno}: {e}"))?;
        samples += 1;
    }
    Ok(samples)
}

fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Validate one sample line: `name[{labels}] value [timestamp]`.
fn validate_sample(line: &str) -> Result<(), String> {
    let (name_part, rest) = match line.find(['{', ' ']) {
        Some(pos) => (&line[..pos], &line[pos..]),
        None => return Err(format!("no value on sample line {line:?}")),
    };
    if !is_metric_name(name_part) {
        return Err(format!("bad metric name {name_part:?}"));
    }
    let rest = if let Some(labels) = rest.strip_prefix('{') {
        let end = scan_labels(labels)?;
        &labels[end..]
    } else {
        rest
    };
    let mut fields = rest.split_whitespace();
    let value = fields.next().ok_or_else(|| "missing value".to_string())?;
    let value_ok = value.parse::<f64>().is_ok() || matches!(value, "+Inf" | "-Inf" | "NaN" | "Nan");
    if !value_ok {
        return Err(format!("bad sample value {value:?}"));
    }
    if let Some(ts) = fields.next() {
        ts.parse::<i64>()
            .map_err(|_| format!("bad timestamp {ts:?}"))?;
    }
    if fields.next().is_some() {
        return Err("trailing fields after timestamp".into());
    }
    Ok(())
}

/// Scan `name="value",...}` label pairs; returns the offset just past `}`.
fn scan_labels(s: &str) -> Result<usize, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    loop {
        // Label name up to '='.
        let eq = s[pos..]
            .find('=')
            .map(|p| pos + p)
            .ok_or_else(|| "label without '='".to_string())?;
        if !is_label_name(&s[pos..eq]) {
            return Err(format!("bad label name {:?}", &s[pos..eq]));
        }
        pos = eq + 1;
        if bytes.get(pos) != Some(&b'"') {
            return Err("label value must be quoted".into());
        }
        pos += 1;
        // Escaped label value.
        loop {
            match bytes.get(pos) {
                None => return Err("unterminated label value".into()),
                Some(b'"') => {
                    pos += 1;
                    break;
                }
                Some(b'\\') => match bytes.get(pos + 1) {
                    Some(b'\\' | b'"' | b'n') => pos += 2,
                    other => {
                        return Err(format!(
                            "bad label-value escape {:?}",
                            other.map(|b| *b as char)
                        ))
                    }
                },
                Some(b'\n') => return Err("raw newline in label value".into()),
                Some(_) => pos += 1,
            }
        }
        match bytes.get(pos) {
            Some(b',') => pos += 1,
            Some(b'}') => return Ok(pos + 1),
            other => {
                return Err(format!(
                    "expected ',' or '}}' after label, found {:?}",
                    other.map(|b| *b as char)
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_registry_exposes_valid_headers_only() {
        let reg = MetricsRegistry::new();
        let page = prometheus_exposition(&reg);
        assert_eq!(validate_prometheus(&page), Ok(0));
    }

    #[test]
    fn gauges_and_counters_round_trip() {
        let reg = MetricsRegistry::new();
        reg.gauge("broker.lag.total").set(42);
        reg.gauge("gateway.requests").set(-3);
        reg.counter("outliers_detected").add(7);
        let page = prometheus_exposition(&reg);
        assert_eq!(validate_prometheus(&page), Ok(3));
        assert!(page.contains("pilot_gauge{name=\"broker.lag.total\"} 42"));
        assert!(page.contains("pilot_gauge{name=\"gateway.requests\"} -3"));
        assert!(page.contains("pilot_counter{name=\"outliers_detected\"} 7"));
    }

    #[test]
    fn hostile_names_are_escaped_and_still_validate() {
        let reg = MetricsRegistry::new();
        reg.gauge("evil\"name\nwith\\stuff").set(1);
        reg.counter("also\"bad\n").incr();
        let page = prometheus_exposition(&reg);
        assert_eq!(validate_prometheus(&page), Ok(2));
        assert!(page.contains("pilot_gauge{name=\"evil\\\"name\\nwith\\\\stuff\"} 1"));
    }

    #[test]
    fn validator_rejects_malformed_pages() {
        for bad in [
            "0bad_name 1",
            "name{l=\"unterminated} 1",
            "name{l=\"v\"} notanumber",
            "name{0bad=\"v\"} 1",
            "name{l=v} 1",
            "name",
            "name{l=\"v\"} 1 notats",
            "name{l=\"v\"} 1 2 3",
            "# TYPE pilot_gauge wibble",
            "# HELP 0bad text",
        ] {
            assert!(validate_prometheus(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn validator_accepts_general_prometheus_shapes() {
        let page = "# arbitrary comment\n\
                    metric_no_labels 1.5\n\
                    metric{a=\"x\",b=\"y\\n\"} -2e3 1700000000\n\
                    inf_metric +Inf\n";
        assert_eq!(validate_prometheus(page), Ok(3));
    }
}
