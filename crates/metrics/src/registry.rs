//! The metrics registry: a sharded, thread-safe sink for spans and named
//! counters, sharing one clock epoch.

use crate::clock::Clock;
use crate::counter::Counter;
use crate::report::{PipelineReport, ReportBuilder};
use crate::span::{Component, JobId, MsgId, Span, SpanBuilder};
use crate::telemetry::Gauge;
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of span shards. Each recording thread is pinned to one shard
/// (round-robin assignment on first record), so the hot path takes an
/// uncontended lock instead of rotating every call through every shard.
/// Ordering within a shard is irrelevant because spans carry timestamps.
const SHARDS: usize = 64;

/// Spans reserved in a shard on its first push, so a 1M-span run grows each
/// shard O(log n) times instead of reallocating from 4 elements up.
const SHARD_RESERVE: usize = 4096;

thread_local! {
    /// This thread's shard index (assigned lazily from `next_shard`).
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// A thread-safe registry of spans and named counters.
///
/// Cloning an handle is cheap (`Arc` inside). All components of a pipeline
/// share one registry so their timestamps are comparable and their spans can
/// be joined by `(job_id, msg_id)`.
/// # Example
///
/// ```
/// use pilot_metrics::{Component, MetricsRegistry};
///
/// let registry = MetricsRegistry::new();
/// let span = registry.start_span(1, 1, Component::Broker).bytes(1024);
/// registry.finish(span);
/// let report = registry.report();
/// assert_eq!(report.component(&Component::Broker).unwrap().count, 1);
/// ```
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

struct Inner {
    clock: Clock,
    shards: Vec<Mutex<Vec<Span>>>,
    next_shard: AtomicUsize,
    counters: Mutex<HashMap<String, Arc<Counter>>>,
    gauges: Mutex<GaugeStore>,
}

/// Insertion-ordered gauge inventory: samplers and dashboards enumerate
/// gauges in registration order, so the columns of a frame series stay
/// stable across a run.
#[derive(Default)]
struct GaugeStore {
    by_name: HashMap<Arc<str>, usize>,
    ordered: Vec<(Arc<str>, Arc<Gauge>)>,
}

impl MetricsRegistry {
    /// Create an empty registry with a fresh clock epoch.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                clock: Clock::new(),
                shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
                next_shard: AtomicUsize::new(0),
                counters: Mutex::new(HashMap::new()),
                gauges: Mutex::new(GaugeStore::default()),
            }),
        }
    }

    /// The registry's shared clock.
    pub fn clock(&self) -> Clock {
        self.inner.clock
    }

    /// Microseconds since the registry epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.clock.now_micros()
    }

    /// Begin a span for `(job_id, msg_id)` in `component`, timestamped now.
    pub fn start_span(&self, job_id: JobId, msg_id: MsgId, component: Component) -> SpanBuilder {
        SpanBuilder {
            job_id,
            msg_id,
            component,
            start_us: self.now_us(),
            bytes: 0,
        }
    }

    /// Complete a span successfully (end time = now) and record it.
    pub fn finish(&self, builder: SpanBuilder) {
        let span = builder.into_span(self.now_us(), false);
        self.record_span(span);
    }

    /// Complete a span as failed and record it.
    pub fn fail(&self, builder: SpanBuilder) {
        let span = builder.into_span(self.now_us(), true);
        self.record_span(span);
    }

    /// Record a fully-formed span (e.g. reconstructed from simulated time).
    pub fn record_span(&self, span: Span) {
        let shard = MY_SHARD.with(|s| {
            let mut idx = s.get();
            if idx == usize::MAX {
                idx = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
                s.set(idx);
            }
            idx
        });
        let mut guard = self.inner.shards[shard].lock();
        if guard.is_empty() {
            guard.reserve(SHARD_RESERVE);
        }
        guard.push(span);
    }

    /// Convenience: record a span of known start/duration for `(job, msg)`.
    pub fn record(
        &self,
        job_id: JobId,
        msg_id: MsgId,
        component: Component,
        start_us: u64,
        end_us: u64,
        bytes: u64,
    ) {
        self.record_span(Span {
            job_id,
            msg_id,
            component,
            start_us,
            end_us,
            bytes,
            error: false,
        });
    }

    /// A [`JobSpans`] recorder pre-bound to one job — the span-chain helper
    /// pipeline stages use so every component span of a message is keyed by
    /// the same `(job_id, msg_id)` without threading the job id through
    /// every call site.
    pub fn for_job(&self, job_id: JobId) -> JobSpans<'_> {
        JobSpans {
            registry: self,
            job_id,
        }
    }

    /// Fetch (creating if absent) the named counter.
    ///
    /// The returned handle is cheap to clone and updates lock-free — hot
    /// paths should fetch it once and cache it rather than re-looking the
    /// name up per event. Lookup hits do not allocate.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut guard = self.inner.counters.lock();
        if let Some(c) = guard.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        guard.insert(name.to_string(), Arc::clone(&c));
        c
    }

    /// Current value of a named counter (0 if it does not exist).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Snapshot the counter inventory `(name, handle)`, sorted by name.
    /// Counters live in a hash map (unlike the insertion-ordered gauges),
    /// so exporters get a deterministic enumeration by sorting here.
    pub fn counters(&self) -> Vec<(String, Arc<Counter>)> {
        let guard = self.inner.counters.lock();
        let mut out: Vec<(String, Arc<Counter>)> = guard
            .iter()
            .map(|(n, c)| (n.clone(), Arc::clone(c)))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Fetch (creating if absent) the named gauge.
    ///
    /// Like [`Self::counter`], the returned handle is cheap to clone and
    /// updates lock-free — hot paths fetch it once and cache it. Gauges
    /// are enumerated by the telemetry sampler in registration order.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut guard = self.inner.gauges.lock();
        if let Some(&idx) = guard.by_name.get(name) {
            return Arc::clone(&guard.ordered[idx].1);
        }
        let name: Arc<str> = Arc::from(name);
        let g = Arc::new(Gauge::new());
        let idx = guard.ordered.len();
        guard.by_name.insert(Arc::clone(&name), idx);
        guard.ordered.push((name, Arc::clone(&g)));
        g
    }

    /// Current level of a named gauge (`None` if it was never registered).
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        let guard = self.inner.gauges.lock();
        guard
            .by_name
            .get(name)
            .map(|&idx| guard.ordered[idx].1.get())
    }

    /// Snapshot the gauge inventory `(name, handle)` in registration order.
    pub fn gauges(&self) -> Vec<(Arc<str>, Arc<Gauge>)> {
        self.inner.gauges.lock().ordered.clone()
    }

    /// Number of registered gauges.
    pub fn gauge_count(&self) -> usize {
        self.inner.gauges.lock().ordered.len()
    }

    /// Snapshot all spans recorded so far (cloned, in no particular order).
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.extend(shard.lock().iter().cloned());
        }
        out
    }

    /// Total number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Drop all recorded spans (counters are kept).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
    }

    /// Remove and return all recorded spans (counters are kept).
    ///
    /// For callers that genuinely want to take ownership — e.g. archiving
    /// a finished run — without paying [`Self::snapshot`]'s clone.
    pub fn drain(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.append(&mut shard.lock());
        }
        out
    }

    /// Aggregate everything recorded so far into a [`PipelineReport`].
    ///
    /// Spans are streamed out of the shards by reference — no clone of the
    /// span store is made, so this stays cheap at ~1M spans. Recorded spans
    /// are left in place (the report is non-destructive; see
    /// [`Self::drain`] to take them).
    pub fn report(&self) -> PipelineReport {
        self.build_report(|_| true)
    }

    /// Aggregate spans of a single job into a [`PipelineReport`].
    pub fn report_for_job(&self, job_id: JobId) -> PipelineReport {
        self.build_report(|s| s.job_id == job_id)
    }

    fn build_report(&self, keep: impl Fn(&Span) -> bool) -> PipelineReport {
        let mut builder = ReportBuilder::new();
        for shard in &self.inner.shards {
            for span in shard.lock().iter().filter(|s| keep(s)) {
                builder.add(span);
            }
        }
        builder.finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("spans", &self.span_count())
            .finish()
    }
}

/// A span recorder bound to one job (see [`MetricsRegistry::for_job`]).
///
/// Every record call keys its span by the bound `job_id`, so a pipeline
/// stage recording the per-message chain (EdgeProducer → Network → Broker →
/// Network → CloudProcessor) only supplies the message id — one fewer
/// argument to get wrong per call site, and the reason span-chain recording
/// can live in exactly one place.
#[derive(Clone, Copy)]
pub struct JobSpans<'a> {
    registry: &'a MetricsRegistry,
    job_id: JobId,
}

impl JobSpans<'_> {
    /// The job this recorder is bound to.
    pub fn job_id(&self) -> JobId {
        self.job_id
    }

    /// Microseconds since the registry epoch (see [`MetricsRegistry::now_us`]).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.registry.now_us()
    }

    /// Record a successful span of known window for `msg_id`.
    pub fn record(
        &self,
        msg_id: MsgId,
        component: Component,
        start_us: u64,
        end_us: u64,
        bytes: u64,
    ) {
        self.registry
            .record(self.job_id, msg_id, component, start_us, end_us, bytes);
    }

    /// Record a failed span of known window for `msg_id`.
    pub fn record_error(
        &self,
        msg_id: MsgId,
        component: Component,
        start_us: u64,
        end_us: u64,
        bytes: u64,
    ) {
        self.registry.record_span(Span {
            job_id: self.job_id,
            msg_id,
            component,
            start_us,
            end_us,
            bytes,
            error: true,
        });
    }
}

impl std::fmt::Debug for JobSpans<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSpans")
            .field("job_id", &self.job_id)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_finish_records_one_span() {
        let reg = MetricsRegistry::new();
        let b = reg.start_span(1, 1, Component::Broker).bytes(512);
        reg.finish(b);
        let spans = reg.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].bytes, 512);
        assert!(!spans[0].error);
    }

    #[test]
    fn failed_span_is_marked() {
        let reg = MetricsRegistry::new();
        let b = reg.start_span(1, 2, Component::CloudProcessor);
        reg.fail(b);
        assert!(reg.snapshot()[0].error);
    }

    #[test]
    fn job_spans_records_under_bound_job() {
        let reg = MetricsRegistry::new();
        let spans = reg.for_job(7);
        assert_eq!(spans.job_id(), 7);
        spans.record(3, Component::Broker, 10, 20, 64);
        spans.record_error(3, Component::CloudProcessor, 20, 30, 64);
        let all = reg.snapshot();
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.job_id == 7 && s.msg_id == 3));
        assert_eq!(all.iter().filter(|s| s.error).count(), 1);
    }

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("msgs").add(3);
        reg.counter("msgs").add(4);
        assert_eq!(reg.counter_value("msgs"), 7);
        assert_eq!(reg.counter_value("other"), 0);
    }

    #[test]
    fn clear_drops_spans_but_keeps_counters() {
        let reg = MetricsRegistry::new();
        reg.finish(reg.start_span(1, 1, Component::Broker));
        reg.counter("c").incr();
        reg.clear();
        assert_eq!(reg.span_count(), 0);
        assert_eq!(reg.counter_value("c"), 1);
    }

    #[test]
    fn report_for_job_filters() {
        let reg = MetricsRegistry::new();
        reg.record(1, 1, Component::Broker, 0, 10, 100);
        reg.record(2, 1, Component::Broker, 0, 10, 100);
        let r = reg.report_for_job(1);
        assert_eq!(r.total_messages(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    reg.record(t, i, Component::Broker, i, i + 1, 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.span_count(), 8000);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let reg2 = reg.clone();
        reg2.record(1, 1, Component::Broker, 0, 1, 0);
        assert_eq!(reg.span_count(), 1);
    }

    #[test]
    fn report_is_nondestructive_and_matches_from_spans() {
        let reg = MetricsRegistry::new();
        for i in 0..100u64 {
            reg.record(1, i, Component::Broker, i, i + 5, 64);
        }
        let direct = PipelineReport::from_spans(&reg.snapshot());
        let streamed = reg.report();
        assert_eq!(streamed.total_messages(), direct.total_messages());
        assert_eq!(reg.span_count(), 100, "report must not consume spans");
        // And again — repeated reports see the same data.
        assert_eq!(reg.report().total_messages(), 100);
    }

    #[test]
    fn drain_takes_spans_and_keeps_counters() {
        let reg = MetricsRegistry::new();
        reg.record(1, 1, Component::Broker, 0, 1, 8);
        reg.record(1, 2, Component::Broker, 1, 2, 8);
        reg.counter("kept").incr();
        let spans = reg.drain();
        assert_eq!(spans.len(), 2);
        assert_eq!(reg.span_count(), 0);
        assert_eq!(reg.counter_value("kept"), 1);
    }

    #[test]
    fn same_thread_spans_share_a_shard() {
        // Thread-pinned sharding: a single thread's spans all land in one
        // shard, so draining preserves that thread's recording order.
        let reg = MetricsRegistry::new();
        for i in 0..50u64 {
            reg.record(7, i, Component::Broker, i, i + 1, 0);
        }
        let ids: Vec<u64> = reg
            .drain()
            .into_iter()
            .filter(|s| s.job_id == 7)
            .map(|s| s.msg_id)
            .collect();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn counter_lookup_returns_same_instance() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hot");
        let b = reg.counter("hot");
        assert!(Arc::ptr_eq(&a, &b));
        a.add(2);
        assert_eq!(reg.counter_value("hot"), 2);
    }
}
