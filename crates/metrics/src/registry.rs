//! The metrics registry: a sharded, thread-safe sink for spans and named
//! counters, sharing one clock epoch.

use crate::clock::Clock;
use crate::counter::Counter;
use crate::report::PipelineReport;
use crate::span::{Component, JobId, MsgId, Span, SpanBuilder};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of span shards. Spans are sharded round-robin per recording call;
/// ordering within a shard is irrelevant because spans carry timestamps.
const SHARDS: usize = 16;

/// A thread-safe registry of spans and named counters.
///
/// Cloning an handle is cheap (`Arc` inside). All components of a pipeline
/// share one registry so their timestamps are comparable and their spans can
/// be joined by `(job_id, msg_id)`.
/// # Example
///
/// ```
/// use pilot_metrics::{Component, MetricsRegistry};
///
/// let registry = MetricsRegistry::new();
/// let span = registry.start_span(1, 1, Component::Broker).bytes(1024);
/// registry.finish(span);
/// let report = registry.report();
/// assert_eq!(report.component(&Component::Broker).unwrap().count, 1);
/// ```
#[derive(Clone)]
pub struct MetricsRegistry {
    inner: Arc<Inner>,
}

struct Inner {
    clock: Clock,
    shards: Vec<Mutex<Vec<Span>>>,
    next_shard: AtomicUsize,
    counters: Mutex<HashMap<String, Arc<Counter>>>,
}

impl MetricsRegistry {
    /// Create an empty registry with a fresh clock epoch.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                clock: Clock::new(),
                shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
                next_shard: AtomicUsize::new(0),
                counters: Mutex::new(HashMap::new()),
            }),
        }
    }

    /// The registry's shared clock.
    pub fn clock(&self) -> Clock {
        self.inner.clock
    }

    /// Microseconds since the registry epoch.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.clock.now_micros()
    }

    /// Begin a span for `(job_id, msg_id)` in `component`, timestamped now.
    pub fn start_span(&self, job_id: JobId, msg_id: MsgId, component: Component) -> SpanBuilder {
        SpanBuilder {
            job_id,
            msg_id,
            component,
            start_us: self.now_us(),
            bytes: 0,
        }
    }

    /// Complete a span successfully (end time = now) and record it.
    pub fn finish(&self, builder: SpanBuilder) {
        let span = builder.into_span(self.now_us(), false);
        self.record_span(span);
    }

    /// Complete a span as failed and record it.
    pub fn fail(&self, builder: SpanBuilder) {
        let span = builder.into_span(self.now_us(), true);
        self.record_span(span);
    }

    /// Record a fully-formed span (e.g. reconstructed from simulated time).
    pub fn record_span(&self, span: Span) {
        let shard = self.inner.next_shard.fetch_add(1, Ordering::Relaxed) % SHARDS;
        self.inner.shards[shard].lock().push(span);
    }

    /// Convenience: record a span of known start/duration for `(job, msg)`.
    pub fn record(
        &self,
        job_id: JobId,
        msg_id: MsgId,
        component: Component,
        start_us: u64,
        end_us: u64,
        bytes: u64,
    ) {
        self.record_span(Span {
            job_id,
            msg_id,
            component,
            start_us,
            end_us,
            bytes,
            error: false,
        });
    }

    /// Fetch (creating if absent) the named counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut guard = self.inner.counters.lock();
        Arc::clone(
            guard
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// Current value of a named counter (0 if it does not exist).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .counters
            .lock()
            .get(name)
            .map(|c| c.get())
            .unwrap_or(0)
    }

    /// Snapshot all spans recorded so far (cloned, in no particular order).
    pub fn snapshot(&self) -> Vec<Span> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            out.extend(shard.lock().iter().cloned());
        }
        out
    }

    /// Total number of spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Drop all recorded spans (counters are kept).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
    }

    /// Aggregate everything recorded so far into a [`PipelineReport`].
    pub fn report(&self) -> PipelineReport {
        PipelineReport::from_spans(&self.snapshot())
    }

    /// Aggregate spans of a single job into a [`PipelineReport`].
    pub fn report_for_job(&self, job_id: JobId) -> PipelineReport {
        let spans: Vec<Span> = self
            .snapshot()
            .into_iter()
            .filter(|s| s.job_id == job_id)
            .collect();
        PipelineReport::from_spans(&spans)
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("spans", &self.span_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_finish_records_one_span() {
        let reg = MetricsRegistry::new();
        let b = reg.start_span(1, 1, Component::Broker).bytes(512);
        reg.finish(b);
        let spans = reg.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].bytes, 512);
        assert!(!spans[0].error);
    }

    #[test]
    fn failed_span_is_marked() {
        let reg = MetricsRegistry::new();
        let b = reg.start_span(1, 2, Component::CloudProcessor);
        reg.fail(b);
        assert!(reg.snapshot()[0].error);
    }

    #[test]
    fn counters_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        reg.counter("msgs").add(3);
        reg.counter("msgs").add(4);
        assert_eq!(reg.counter_value("msgs"), 7);
        assert_eq!(reg.counter_value("other"), 0);
    }

    #[test]
    fn clear_drops_spans_but_keeps_counters() {
        let reg = MetricsRegistry::new();
        reg.finish(reg.start_span(1, 1, Component::Broker));
        reg.counter("c").incr();
        reg.clear();
        assert_eq!(reg.span_count(), 0);
        assert_eq!(reg.counter_value("c"), 1);
    }

    #[test]
    fn report_for_job_filters() {
        let reg = MetricsRegistry::new();
        reg.record(1, 1, Component::Broker, 0, 10, 100);
        reg.record(2, 1, Component::Broker, 0, 10, 100);
        let r = reg.report_for_job(1);
        assert_eq!(r.total_messages(), 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let reg = MetricsRegistry::new();
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    reg.record(t, i, Component::Broker, i, i + 1, 8);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.span_count(), 8000);
    }

    #[test]
    fn clones_share_state() {
        let reg = MetricsRegistry::new();
        let reg2 = reg.clone();
        reg2.record(1, 1, Component::Broker, 0, 1, 0);
        assert_eq!(reg.span_count(), 1);
    }
}
