//! The live telemetry plane: gauges, the sampler, and the online
//! bottleneck attributor.
//!
//! The paper's "step 3" monitoring service captures *linked*
//! producer→broker→processor measurements keyed by job id precisely so
//! that "bottlenecks are identifiable per component" — but span records
//! alone are post-hoc: they tell you where time went only after the run.
//! This module adds the *online* half:
//!
//! * [`Gauge`] — a lock-free instantaneous level (queue depth, in-flight
//!   bytes, occupancy), registered under a stable name in the
//!   [`MetricsRegistry`](crate::MetricsRegistry) so samplers and
//!   dashboards can enumerate them without knowing the producer.
//! * [`TelemetrySampler`] — a background thread that runs optional
//!   *probes* (callbacks that refresh pull-style gauges, e.g. consumer
//!   lag read from the broker) and snapshots every registered gauge into
//!   a bounded ring of [`TelemetryFrame`]s, retrievable mid-run.
//! * [`attribute`] — the online bottleneck attributor: folds the span
//!   stream (and, when available, the gauge frames) into per-window
//!   per-component busy time and the critical-path share over the linked
//!   per-message span chains, naming the dominant component — the
//!   paper's bottleneck-identification claim, made executable.

use crate::span::{Component, Span};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A lock-free instantaneous level: queue depth, in-flight bytes,
/// occupancy. Unlike a [`Counter`](crate::Counter) (monotonic), a gauge
/// goes up *and* down; `Relaxed` ordering because gauges are statistics,
/// not synchronisation.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Create a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` (may be negative) to the level.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` from the level.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Decrement by one.
    #[inline]
    pub fn decr(&self) {
        self.sub(1);
    }

    /// Overwrite the level (for pull-style gauges refreshed by a probe).
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// One sampler snapshot: every registered gauge's level at `t_us`
/// (microseconds since the registry's clock epoch). Gauge names are
/// shared `Arc<str>`s, so a long frame history does not re-allocate the
/// inventory per frame.
#[derive(Debug, Clone)]
pub struct TelemetryFrame {
    /// Snapshot time, µs since the registry clock epoch.
    pub t_us: u64,
    /// `(gauge name, level)` in registration order — stable across the
    /// frames of one run.
    pub values: Vec<(Arc<str>, i64)>,
}

impl TelemetryFrame {
    /// Level of the named gauge in this frame, if registered.
    pub fn value(&self, name: &str) -> Option<i64> {
        self.values
            .iter()
            .find(|(n, _)| &**n == name)
            .map(|(_, v)| *v)
    }

    /// Render the frame as a JSON object:
    /// `{"t_us":N,"values":{"gauge.name":level,...}}` (gauge names escaped
    /// per RFC 8259). The gateway's `/telemetry/frames` and SSE stream
    /// both emit this shape.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(32 + self.values.len() * 24);
        out.push_str("{\"t_us\":");
        out.push_str(&self.t_us.to_string());
        out.push_str(",\"values\":{");
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            crate::json::push_json_string(&mut out, name);
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("}}");
        out
    }
}

/// Render a slice of frames as a JSON array of [`TelemetryFrame::to_json`]
/// objects.
pub fn frames_json(frames: &[TelemetryFrame]) -> String {
    let mut out = String::with_capacity(2 + frames.len() * 64);
    out.push('[');
    for (i, frame) in frames.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&frame.to_json());
    }
    out.push(']');
    out
}

/// A callback run by the sampler before each snapshot — refreshes
/// pull-style gauges (consumer lag, link horizon, pool occupancy) that
/// no event-driven code path updates.
pub type Probe = Box<dyn Fn() + Send>;

struct SamplerShared {
    frames: Mutex<VecDeque<TelemetryFrame>>,
    stop: AtomicBool,
    wake: Mutex<()>,
    wake_cv: Condvar,
}

/// The telemetry sampler: a background thread snapshotting every gauge of
/// a [`MetricsRegistry`](crate::MetricsRegistry) into a bounded frame
/// ring. Opt-in — when no sampler runs, gauges cost nothing beyond the
/// atomic updates of whoever feeds them (and nothing at all when no gauge
/// is registered).
pub struct TelemetrySampler {
    shared: Arc<SamplerShared>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl TelemetrySampler {
    /// Default frame-ring capacity: at a 10 ms sample interval this holds
    /// the most recent ~82 s of telemetry.
    pub const DEFAULT_CAPACITY: usize = 8192;

    /// Spawn a sampler over `registry`'s gauges, snapshotting every
    /// `interval` into a ring of at most `capacity` frames (oldest frames
    /// are dropped first). `probes` run before each snapshot.
    pub fn spawn(
        registry: crate::MetricsRegistry,
        interval: Duration,
        capacity: usize,
        probes: Vec<Probe>,
    ) -> Self {
        let shared = Arc::new(SamplerShared {
            frames: Mutex::new(VecDeque::new()),
            stop: AtomicBool::new(false),
            wake: Mutex::new(()),
            wake_cv: Condvar::new(),
        });
        let shared2 = Arc::clone(&shared);
        let capacity = capacity.max(1);
        let thread = std::thread::Builder::new()
            .name("pilot-telemetry".into())
            .spawn(move || {
                loop {
                    if shared2.stop.load(Ordering::Acquire) {
                        break;
                    }
                    sample_once(&registry, &probes, &shared2.frames, capacity);
                    let mut guard = shared2.wake.lock();
                    if shared2.stop.load(Ordering::Acquire) {
                        break;
                    }
                    shared2.wake_cv.wait_for(&mut guard, interval);
                }
                // One final probe + snapshot so the frame history (and the
                // pull-style gauges) reflect the drained end state.
                sample_once(&registry, &probes, &shared2.frames, capacity);
            })
            .expect("spawn telemetry sampler");
        Self {
            shared,
            thread: Mutex::new(Some(thread)),
        }
    }

    /// All frames captured so far, oldest first. Callable mid-run.
    pub fn frames(&self) -> Vec<TelemetryFrame> {
        self.shared.frames.lock().iter().cloned().collect()
    }

    /// The most recent frame, if any.
    pub fn latest(&self) -> Option<TelemetryFrame> {
        self.shared.frames.lock().back().cloned()
    }

    /// Number of frames currently held.
    pub fn frame_count(&self) -> usize {
        self.shared.frames.lock().len()
    }

    /// Stop the sampler thread and join it (idempotent). The thread takes
    /// one final probe + snapshot on its way out, so post-drain gauge
    /// levels are visible in the last frame.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let _guard = self.shared.wake.lock();
            self.shared.wake_cv.notify_all();
        }
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }
}

impl Drop for TelemetrySampler {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for TelemetrySampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetrySampler")
            .field("frames", &self.frame_count())
            .finish()
    }
}

fn sample_once(
    registry: &crate::MetricsRegistry,
    probes: &[Probe],
    frames: &Mutex<VecDeque<TelemetryFrame>>,
    capacity: usize,
) {
    for probe in probes {
        probe();
    }
    let frame = TelemetryFrame {
        t_us: registry.now_us(),
        values: registry
            .gauges()
            .into_iter()
            .map(|(name, g)| (name, g.get()))
            .collect(),
    };
    let mut guard = frames.lock();
    if guard.len() >= capacity {
        guard.pop_front();
    }
    guard.push_back(frame);
}

// ---------------------------------------------------------------------------
// Online bottleneck attribution
// ---------------------------------------------------------------------------

/// Per-component busy time within one attribution window.
#[derive(Debug, Clone)]
pub struct WindowAttribution {
    /// Window start, µs since the clock epoch.
    pub start_us: u64,
    /// Busy microseconds per component within the window (span durations
    /// clipped to the window), descending.
    pub busy_us: Vec<(Component, u64)>,
    /// Mean gauge levels over the frames falling inside the window.
    pub mean_gauges: Vec<(Arc<str>, f64)>,
}

impl WindowAttribution {
    /// The component with the most busy time in this window.
    pub fn dominant(&self) -> Option<&Component> {
        self.busy_us.first().map(|(c, _)| c)
    }

    /// Busy-time share of `component` within the window (0 when the
    /// window is empty).
    pub fn utilization(&self, component: &Component, window_us: u64) -> f64 {
        if window_us == 0 {
            return 0.0;
        }
        self.busy_us
            .iter()
            .find(|(c, _)| c == component)
            .map(|(_, b)| *b as f64 / window_us as f64)
            .unwrap_or(0.0)
    }
}

/// The attributor's verdict over a span stream (plus optional gauge
/// frames): windowed busy time and the critical-path share of each
/// component over the linked per-message chains.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// Window width used, µs.
    pub window_us: u64,
    /// Consecutive windows from the first to the last span.
    pub windows: Vec<WindowAttribution>,
    /// Share of the summed per-message chain time spent in each
    /// component, descending. Because the chain of one message is
    /// sequential (produce → link → broker → link → process), this is the
    /// critical-path decomposition of the pipeline.
    pub critical_path: Vec<(Component, f64)>,
}

impl Attribution {
    /// The component dominating the critical path — the pipeline's
    /// bottleneck verdict.
    pub fn dominant(&self) -> Option<&Component> {
        self.critical_path.first().map(|(c, _)| c)
    }

    /// Render a compact per-component table (share of chain time).
    pub fn to_table(&self) -> String {
        let mut out = String::from("component,critical_path_share\n");
        for (c, share) in &self.critical_path {
            out.push_str(&format!("{},{:.4}\n", c.label(), share));
        }
        out
    }
}

/// Fold spans (and optional gauge frames) into an [`Attribution`]: busy
/// time per component per `window_us` window, and the critical-path share
/// over the linked `(job_id, msg_id)` chains. Error spans count toward
/// busy time (a component drowning in failures is busy) but windows and
/// shares are otherwise insensitive to span order.
pub fn attribute(spans: &[Span], frames: &[TelemetryFrame], window_us: u64) -> Attribution {
    assert!(window_us > 0, "attribution window must be > 0");
    if spans.is_empty() {
        return Attribution {
            window_us,
            windows: Vec::new(),
            critical_path: Vec::new(),
        };
    }
    // A span ending exactly on a window boundary belongs to the window it
    // ran in, not the next one — so the last window is derived from
    // `end_us - 1` (clamped for zero-length spans) and no empty trailing
    // window is emitted.
    let span_last = |s: &Span| s.end_us.saturating_sub(1).max(s.start_us);
    let first = spans.iter().map(|s| s.start_us).min().unwrap() / window_us;
    let last = spans.iter().map(span_last).max().unwrap() / window_us;
    let n = (last - first + 1) as usize;
    let mut windows: Vec<BTreeMap<Component, u64>> = vec![BTreeMap::new(); n];
    let mut chain_total: BTreeMap<Component, u64> = BTreeMap::new();
    for s in spans {
        // Critical-path accumulation: every span of a chain contributes
        // its full duration (chains are sequential per message).
        *chain_total.entry(s.component.clone()).or_insert(0) += s.duration_us();
        // Windowed busy time: clip the span to each window it overlaps.
        let wa = (s.start_us / window_us).max(first) - first;
        let wb = (span_last(s) / window_us).min(last) - first;
        for w in wa..=wb {
            let w_start = (first + w) * window_us;
            let w_end = w_start + window_us;
            let overlap = s.end_us.min(w_end).saturating_sub(s.start_us.max(w_start));
            if overlap > 0 || s.start_us == s.end_us {
                *windows[w as usize].entry(s.component.clone()).or_insert(0) += overlap;
            }
        }
    }
    let windows = windows
        .into_iter()
        .enumerate()
        .map(|(w, busy)| {
            let start_us = (first + w as u64) * window_us;
            let end_us = start_us + window_us;
            let mut busy_us: Vec<(Component, u64)> = busy.into_iter().collect();
            busy_us.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            WindowAttribution {
                start_us,
                busy_us,
                mean_gauges: mean_gauges_in(frames, start_us, end_us),
            }
        })
        .collect();
    let total: u64 = chain_total.values().sum();
    let mut critical_path: Vec<(Component, f64)> = chain_total
        .into_iter()
        .map(|(c, b)| {
            (
                c,
                if total == 0 {
                    0.0
                } else {
                    b as f64 / total as f64
                },
            )
        })
        .collect();
    critical_path.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
    Attribution {
        window_us,
        windows,
        critical_path,
    }
}

/// Mean level of every gauge over the frames within `[start_us, end_us)`.
fn mean_gauges_in(frames: &[TelemetryFrame], start_us: u64, end_us: u64) -> Vec<(Arc<str>, f64)> {
    let mut sums: Vec<(Arc<str>, i64, u64)> = Vec::new();
    for f in frames
        .iter()
        .filter(|f| f.t_us >= start_us && f.t_us < end_us)
    {
        for (name, v) in &f.values {
            match sums.iter_mut().find(|(n, _, _)| n == name) {
                Some((_, sum, cnt)) => {
                    *sum += v;
                    *cnt += 1;
                }
                None => sums.push((Arc::clone(name), *v, 1)),
            }
        }
    }
    sums.into_iter()
        .map(|(n, sum, cnt)| (n, sum as f64 / cnt as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn span(component: Component, start: u64, end: u64) -> Span {
        Span {
            job_id: 1,
            msg_id: start,
            component,
            start_us: start,
            end_us: end,
            bytes: 0,
            error: false,
        }
    }

    #[test]
    fn gauge_up_down_set() {
        let g = Gauge::new();
        g.add(5);
        g.decr();
        assert_eq!(g.get(), 4);
        g.sub(10);
        assert_eq!(g.get(), -6);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn registry_gauges_are_shared_and_ordered() {
        let reg = MetricsRegistry::new();
        let a = reg.gauge("b_second");
        let b = reg.gauge("a_first");
        assert!(Arc::ptr_eq(&a, &reg.gauge("b_second")));
        a.add(2);
        b.add(7);
        let snap = reg.gauges();
        // Registration order, not alphabetical.
        assert_eq!(&*snap[0].0, "b_second");
        assert_eq!(&*snap[1].0, "a_first");
        assert_eq!(reg.gauge_value("b_second"), Some(2));
        assert_eq!(reg.gauge_value("missing"), None);
        assert_eq!(reg.gauge_count(), 2);
    }

    #[test]
    fn sampler_captures_monotonic_frames_and_runs_probes() {
        let reg = MetricsRegistry::new();
        let depth = reg.gauge("queue_depth");
        let lag = reg.gauge("lag");
        depth.set(3);
        let lag2 = Arc::clone(&lag);
        let probe: Probe = Box::new(move || lag2.set(42));
        let sampler =
            TelemetrySampler::spawn(reg.clone(), Duration::from_millis(1), 64, vec![probe]);
        while sampler.frame_count() < 5 {
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let frames = sampler.frames();
        assert!(frames.len() >= 5);
        assert!(frames.windows(2).all(|w| w[0].t_us <= w[1].t_us));
        assert!(frames.iter().all(|f| f.value("lag") == Some(42)));
        assert!(frames.iter().all(|f| f.value("queue_depth") == Some(3)));
    }

    #[test]
    fn sampler_ring_is_bounded() {
        let reg = MetricsRegistry::new();
        reg.gauge("g");
        let sampler = TelemetrySampler::spawn(reg, Duration::from_micros(100), 4, Vec::new());
        std::thread::sleep(Duration::from_millis(20));
        sampler.stop();
        assert!(sampler.frame_count() <= 4);
        let frames = sampler.frames();
        assert!(frames.windows(2).all(|w| w[0].t_us <= w[1].t_us));
    }

    #[test]
    fn stop_is_idempotent_and_takes_final_frame() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("g");
        let sampler = TelemetrySampler::spawn(
            reg,
            Duration::from_secs(3600), // never ticks on its own again
            16,
            Vec::new(),
        );
        while sampler.frame_count() == 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
        g.set(99);
        sampler.stop();
        sampler.stop();
        let last = sampler.latest().unwrap();
        assert_eq!(last.value("g"), Some(99), "final snapshot on stop");
    }

    #[test]
    fn attributor_names_the_skewed_component() {
        // 10 chains: producer 10 µs, network 900 µs, processor 90 µs.
        let mut spans = Vec::new();
        for m in 0..10u64 {
            let base = m * 1000;
            spans.push(Span {
                msg_id: m,
                ..span(Component::EdgeProducer, base, base + 10)
            });
            spans.push(Span {
                msg_id: m,
                ..span(Component::Network("wan".into()), base + 10, base + 910)
            });
            spans.push(Span {
                msg_id: m,
                ..span(Component::CloudProcessor, base + 910, base + 1000)
            });
        }
        let a = attribute(&spans, &[], 1000);
        assert_eq!(a.dominant(), Some(&Component::Network("wan".into())));
        assert!(a.critical_path[0].1 > 0.8, "{:?}", a.critical_path);
        assert_eq!(a.windows.len(), 10);
        assert_eq!(
            a.windows[0].dominant(),
            Some(&Component::Network("wan".into()))
        );
        // Shares sum to 1.
        let sum: f64 = a.critical_path.iter().map(|(_, s)| s).sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attributor_busy_time_clips_to_windows() {
        // One 3-window span: busy time must split 500/1000/1000 with no
        // empty trailing window for the boundary-exact end.
        let spans = vec![span(Component::Broker, 500, 3000)];
        let a = attribute(&spans, &[], 1000);
        assert_eq!(a.windows.len(), 3);
        let busy: Vec<u64> = a
            .windows
            .iter()
            .map(|w| w.busy_us.first().map(|(_, b)| *b).unwrap_or(0))
            .collect();
        assert_eq!(busy, vec![500, 1000, 1000]);
        assert!((a.windows[1].utilization(&Component::Broker, 1000) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn attributor_folds_gauge_frames() {
        let spans = vec![span(Component::Broker, 0, 2000)];
        let name: Arc<str> = Arc::from("depth");
        let frames = vec![
            TelemetryFrame {
                t_us: 100,
                values: vec![(Arc::clone(&name), 4)],
            },
            TelemetryFrame {
                t_us: 900,
                values: vec![(Arc::clone(&name), 8)],
            },
            TelemetryFrame {
                t_us: 1500,
                values: vec![(Arc::clone(&name), 2)],
            },
        ];
        let a = attribute(&spans, &frames, 1000);
        assert_eq!(a.windows[0].mean_gauges[0].1, 6.0);
        assert_eq!(a.windows[1].mean_gauges[0].1, 2.0);
    }

    #[test]
    fn empty_spans_empty_attribution() {
        let a = attribute(&[], &[], 1000);
        assert!(a.windows.is_empty());
        assert!(a.dominant().is_none());
    }

    #[test]
    fn to_table_lists_components() {
        let spans = vec![
            span(Component::Broker, 0, 100),
            span(Component::CloudProcessor, 100, 400),
        ];
        let table = attribute(&spans, &[], 1000).to_table();
        assert!(table.starts_with("component,"));
        assert!(table.contains("cloud_processor,0.75"));
    }
}
