//! A shared monotonic clock.
//!
//! All spans recorded into one [`crate::MetricsRegistry`] are timestamped in
//! microseconds relative to a single [`Clock`] epoch, so timestamps taken on
//! different threads (edge producer, broker, cloud worker) are directly
//! comparable — this is what makes cross-component *linking* of a message's
//! journey possible.

use std::time::Instant;

/// A monotonic clock with a fixed epoch.
///
/// Cloning is cheap; clones share the epoch.
#[derive(Debug, Clone, Copy)]
pub struct Clock {
    epoch: Instant,
}

impl Clock {
    /// Create a clock whose epoch is "now".
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the epoch.
    #[inline]
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Seconds elapsed since the epoch, as a float.
    #[inline]
    pub fn now_secs(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn monotonic() {
        let c = Clock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn clones_share_epoch() {
        let c = Clock::new();
        let d = c;
        std::thread::sleep(Duration::from_millis(2));
        let a = c.now_micros();
        let b = d.now_micros();
        // Both read from the same epoch, so they are within a tight window.
        assert!(a.abs_diff(b) < 5_000, "a={a} b={b}");
        assert!(a >= 2_000);
    }

    #[test]
    fn secs_and_micros_agree() {
        let c = Clock::new();
        std::thread::sleep(Duration::from_millis(5));
        let us = c.now_micros() as f64;
        let s = c.now_secs();
        assert!((s * 1e6 - us).abs() < 2_000.0, "s={s} us={us}");
    }
}
