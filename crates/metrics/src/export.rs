//! Span persistence: dump a registry's raw spans to CSV and load them back.
//!
//! The paper's monitoring service retains per-component measurements for
//! post-hoc analysis (that is what Figs. 2/3 are plotted from). This module
//! is the storage half: a flat CSV schema, stable across versions, written
//! with plain `std::fs` so external tooling (pandas, gnuplot) can consume
//! experiment runs directly.
//!
//! The `component` field is the only one that can contain arbitrary text
//! (`net:{link}` / `custom:{name}` labels), so it is quoted per RFC 4180
//! whenever it holds a delimiter, quote, or newline; the loader is strict —
//! a malformed row is an error, not a silently dropped measurement.

use crate::span::{Component, Span};
use std::io::{BufWriter, Write};
use std::path::Path;

/// The CSV header written by [`write_csv`].
pub const CSV_HEADER: &str = "job_id,msg_id,component,start_us,end_us,bytes,error";

/// Quote `field` per RFC 4180 if it contains a comma, quote, or line break
/// (doubling embedded quotes); otherwise return it unchanged.
fn escape_csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_string()
    }
}

/// Split one CSV row into exactly `n` fields, honouring RFC 4180 quoting.
/// Returns `None` on unbalanced quotes, garbage after a closing quote, or a
/// field count other than `n`.
fn split_row(row: &str, n: usize) -> Option<Vec<String>> {
    let mut fields = Vec::with_capacity(n);
    let mut chars = row.chars().peekable();
    loop {
        let mut field = String::new();
        if chars.peek() == Some(&'"') {
            chars.next();
            loop {
                match chars.next()? {
                    '"' => match chars.peek() {
                        Some('"') => {
                            chars.next();
                            field.push('"');
                        }
                        Some(',') | None => break,
                        // Garbage between the closing quote and the
                        // delimiter: reject rather than guess.
                        Some(_) => return None,
                    },
                    c => field.push(c),
                }
            }
        } else {
            while let Some(&c) = chars.peek() {
                if c == ',' {
                    break;
                }
                // A bare quote inside an unquoted field is malformed.
                if c == '"' {
                    return None;
                }
                field.push(c);
                chars.next();
            }
        }
        fields.push(field);
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(_) => return None,
        }
    }
    if fields.len() == n {
        Some(fields)
    } else {
        None
    }
}

/// Serialize one span as a CSV row. The component label — the only field
/// that can carry arbitrary text, e.g. `net:{link}` — is quoted/escaped
/// when it contains a delimiter, so hostile link names round-trip.
pub fn span_to_row(s: &Span) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        s.job_id,
        s.msg_id,
        escape_csv_field(&s.component.label()),
        s.start_us,
        s.end_us,
        s.bytes,
        s.error as u8
    )
}

/// Parse a component label written by [`Component::label`].
pub fn component_from_label(label: &str) -> Component {
    match label {
        "edge_producer" => Component::EdgeProducer,
        "edge_processor" => Component::EdgeProcessor,
        "broker" => Component::Broker,
        "cloud_processor" => Component::CloudProcessor,
        "param_server" => Component::ParamServer,
        other => {
            if let Some(link) = other.strip_prefix("net:") {
                Component::Network(link.to_string())
            } else if let Some(name) = other.strip_prefix("custom:") {
                Component::Custom(name.to_string())
            } else {
                Component::Custom(other.to_string())
            }
        }
    }
}

/// Parse a row written by [`span_to_row`]. Returns `None` on malformed rows
/// (wrong field count, unbalanced quotes, non-numeric fields, the header).
pub fn span_from_row(row: &str) -> Option<Span> {
    let fields = split_row(row.trim_end_matches(['\n', '\r']), 7)?;
    let error = match fields[6].as_str() {
        "0" => false,
        "1" => true,
        _ => return None,
    };
    Some(Span {
        job_id: fields[0].parse().ok()?,
        msg_id: fields[1].parse().ok()?,
        component: component_from_label(&fields[2]),
        start_us: fields[3].parse().ok()?,
        end_us: fields[4].parse().ok()?,
        bytes: fields[5].parse().ok()?,
        error,
    })
}

/// Write spans to `path` as CSV (header + one row per span).
pub fn write_csv(path: &Path, spans: &[Span]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{CSV_HEADER}")?;
    for s in spans {
        writeln!(w, "{}", span_to_row(s))?;
    }
    w.flush()
}

/// Split CSV text into records on newlines *outside* quoted fields, so a
/// quoted component label containing `\n` stays one record.
fn split_records(text: &str) -> Vec<String> {
    let mut records = Vec::new();
    let mut record = String::new();
    let mut in_quotes = false;
    for c in text.chars() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                record.push(c);
            }
            '\n' if !in_quotes => {
                records.push(std::mem::take(&mut record));
            }
            '\r' if !in_quotes => {} // swallow CR of CRLF record breaks
            c => record.push(c),
        }
    }
    if !record.is_empty() {
        records.push(record);
    }
    records
}

/// Load spans from a CSV written by [`write_csv`].
///
/// Records are split quote-aware (a quoted label containing a newline is
/// one record), and the loader is strict: a record that is neither the
/// leading header, blank, nor a well-formed span row is an `InvalidData`
/// error naming the record — a corrupted measurement file should fail
/// loudly, not silently drop the very rows (e.g. hostile `net:{link}`
/// labels) most likely to matter.
pub fn read_csv(path: &Path) -> std::io::Result<Vec<Span>> {
    let text = std::fs::read_to_string(path)?;
    let mut out = Vec::new();
    for (i, record) in split_records(&text).into_iter().enumerate() {
        if (i == 0 && record.trim() == CSV_HEADER) || record.trim().is_empty() {
            continue;
        }
        match span_from_row(&record) {
            Some(span) => out.push(span),
            None => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("malformed span row at record {}: {record:?}", i + 1),
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pilot-metrics-{}-{name}.csv", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_spans() {
        let reg = MetricsRegistry::new();
        reg.record(1, 1, Component::EdgeProducer, 0, 100, 6400);
        reg.record(1, 1, Component::Network("wan".into()), 100, 80_000, 6400);
        reg.record(1, 1, Component::CloudProcessor, 80_000, 81_000, 6400);
        let b = reg.start_span(1, 2, Component::Broker);
        reg.fail(b);
        let mut spans = reg.snapshot();
        spans.sort_by_key(|s| (s.msg_id, s.start_us));

        let path = tmp("roundtrip");
        write_csv(&path, &spans).unwrap();
        let mut loaded = read_csv(&path).unwrap();
        loaded.sort_by_key(|s| (s.msg_id, s.start_us));
        assert_eq!(loaded, spans);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_spans_rebuild_the_same_report() {
        let reg = MetricsRegistry::new();
        for m in 0..20 {
            reg.record(7, m, Component::EdgeProducer, m * 10, m * 10 + 5, 100);
            reg.record(7, m, Component::CloudProcessor, m * 10 + 5, m * 10 + 9, 100);
        }
        let path = tmp("report");
        write_csv(&path, &reg.snapshot()).unwrap();
        let loaded = read_csv(&path).unwrap();
        let original = reg.report();
        let rebuilt = crate::report::PipelineReport::from_spans(&loaded);
        assert_eq!(rebuilt.total_messages(), original.total_messages());
        assert_eq!(
            rebuilt.end_to_end.latency_us.mean(),
            original.end_to_end.latency_us.mean()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn component_labels_roundtrip() {
        for c in [
            Component::EdgeProducer,
            Component::EdgeProcessor,
            Component::Broker,
            Component::Network("edge->broker".into()),
            Component::CloudProcessor,
            Component::ParamServer,
            Component::Custom("fog".into()),
        ] {
            assert_eq!(component_from_label(&c.label()), c, "{c}");
        }
    }

    #[test]
    fn hostile_network_labels_roundtrip_through_rows() {
        for label in [
            "a,b",
            "quote\"inside",
            "new\nline",
            "cr\rlf",
            "trailing,comma,",
            "\"already quoted\"",
            ",",
            "",
        ] {
            let span = Span {
                job_id: 1,
                msg_id: 2,
                component: Component::Network(label.to_string()),
                start_us: 3,
                end_us: 4,
                bytes: 5,
                error: false,
            };
            let row = span_to_row(&span);
            assert!(!row.contains('\n') || row.contains('"'), "{row:?}");
            let parsed = span_from_row(&row).expect("row must parse");
            assert_eq!(parsed, span, "label {label:?}");
        }
    }

    #[test]
    fn quoted_rows_survive_a_disk_roundtrip() {
        let spans = vec![
            Span {
                job_id: 1,
                msg_id: 1,
                component: Component::Network("edge,zone-\"A\"\n->broker".into()),
                start_us: 0,
                end_us: 10,
                bytes: 64,
                error: false,
            },
            Span {
                job_id: 1,
                msg_id: 1,
                component: Component::Custom("a,b".into()),
                start_us: 10,
                end_us: 20,
                bytes: 64,
                error: true,
            },
        ];
        let path = tmp("quoted");
        write_csv(&path, &spans).unwrap();
        // The newline-bearing label is one quoted record across two
        // physical lines; the quote-aware record splitter keeps it whole.
        assert_eq!(read_csv(&path).unwrap(), spans);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_rows_are_rejected() {
        let path = tmp("malformed");
        std::fs::write(
            &path,
            format!("{CSV_HEADER}\n1,1,broker,0,10,8,0\nnot,a,row\n\n2,1,broker,0,10,8,1\n"),
        )
        .unwrap();
        let err = read_csv(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("record 3"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unbalanced_quotes_are_rejected() {
        for bad in [
            "1,1,\"net:open,0,10,8,0",   // unterminated quote
            "1,1,\"net:a\"x,0,10,8,0",   // garbage after closing quote
            "1,1,net:\"a\",0,10,8,0",    // bare quote in unquoted field
            "1,1,broker,0,10,8,2",       // error flag out of range
            "1,1,broker,0,10,8,0,extra", // too many fields
            "1,1,broker,0,10,8",         // too few fields
            "x,1,broker,0,10,8,0",       // non-numeric id
        ] {
            assert!(span_from_row(bad).is_none(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn clean_rows_stay_unquoted() {
        let span = Span {
            job_id: 9,
            msg_id: 8,
            component: Component::Broker,
            start_us: 1,
            end_us: 2,
            bytes: 3,
            error: false,
        };
        assert_eq!(span_to_row(&span), "9,8,broker,1,2,3,0");
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(read_csv(Path::new("/nonexistent/spans.csv")).is_err());
    }
}
