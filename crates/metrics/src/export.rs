//! Span persistence: dump a registry's raw spans to CSV and load them back.
//!
//! The paper's monitoring service retains per-component measurements for
//! post-hoc analysis (that is what Figs. 2/3 are plotted from). This module
//! is the storage half: a flat CSV schema, stable across versions, written
//! with plain `std::fs` so external tooling (pandas, gnuplot) can consume
//! experiment runs directly.

use crate::span::{Component, Span};
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// The CSV header written by [`write_csv`].
pub const CSV_HEADER: &str = "job_id,msg_id,component,start_us,end_us,bytes,error";

/// Serialize one span as a CSV row.
pub fn span_to_row(s: &Span) -> String {
    format!(
        "{},{},{},{},{},{},{}",
        s.job_id,
        s.msg_id,
        s.component.label(),
        s.start_us,
        s.end_us,
        s.bytes,
        s.error as u8
    )
}

/// Parse a component label written by [`Component::label`].
pub fn component_from_label(label: &str) -> Component {
    match label {
        "edge_producer" => Component::EdgeProducer,
        "edge_processor" => Component::EdgeProcessor,
        "broker" => Component::Broker,
        "cloud_processor" => Component::CloudProcessor,
        "param_server" => Component::ParamServer,
        other => {
            if let Some(link) = other.strip_prefix("net:") {
                Component::Network(link.to_string())
            } else if let Some(name) = other.strip_prefix("custom:") {
                Component::Custom(name.to_string())
            } else {
                Component::Custom(other.to_string())
            }
        }
    }
}

/// Parse a row written by [`span_to_row`]. Returns `None` on malformed rows
/// (including the header).
pub fn span_from_row(row: &str) -> Option<Span> {
    let mut parts = row.trim().splitn(7, ',');
    let job_id = parts.next()?.parse().ok()?;
    let msg_id = parts.next()?.parse().ok()?;
    let component = component_from_label(parts.next()?);
    let start_us = parts.next()?.parse().ok()?;
    let end_us = parts.next()?.parse().ok()?;
    let bytes = parts.next()?.parse().ok()?;
    let error = parts.next()? == "1";
    Some(Span {
        job_id,
        msg_id,
        component,
        start_us,
        end_us,
        bytes,
        error,
    })
}

/// Write spans to `path` as CSV (header + one row per span).
pub fn write_csv(path: &Path, spans: &[Span]) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{CSV_HEADER}")?;
    for s in spans {
        writeln!(w, "{}", span_to_row(s))?;
    }
    w.flush()
}

/// Load spans from a CSV written by [`write_csv`]; malformed rows are
/// skipped (robust to hand-edited files).
pub fn read_csv(path: &Path) -> std::io::Result<Vec<Span>> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if line.starts_with("job_id") || line.trim().is_empty() {
            continue;
        }
        if let Some(span) = span_from_row(&line) {
            out.push(span);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pilot-metrics-{}-{name}.csv", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_spans() {
        let reg = MetricsRegistry::new();
        reg.record(1, 1, Component::EdgeProducer, 0, 100, 6400);
        reg.record(1, 1, Component::Network("wan".into()), 100, 80_000, 6400);
        reg.record(1, 1, Component::CloudProcessor, 80_000, 81_000, 6400);
        let b = reg.start_span(1, 2, Component::Broker);
        reg.fail(b);
        let mut spans = reg.snapshot();
        spans.sort_by_key(|s| (s.msg_id, s.start_us));

        let path = tmp("roundtrip");
        write_csv(&path, &spans).unwrap();
        let mut loaded = read_csv(&path).unwrap();
        loaded.sort_by_key(|s| (s.msg_id, s.start_us));
        assert_eq!(loaded, spans);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_spans_rebuild_the_same_report() {
        let reg = MetricsRegistry::new();
        for m in 0..20 {
            reg.record(7, m, Component::EdgeProducer, m * 10, m * 10 + 5, 100);
            reg.record(7, m, Component::CloudProcessor, m * 10 + 5, m * 10 + 9, 100);
        }
        let path = tmp("report");
        write_csv(&path, &reg.snapshot()).unwrap();
        let loaded = read_csv(&path).unwrap();
        let original = reg.report();
        let rebuilt = crate::report::PipelineReport::from_spans(&loaded);
        assert_eq!(rebuilt.total_messages(), original.total_messages());
        assert_eq!(
            rebuilt.end_to_end.latency_us.mean(),
            original.end_to_end.latency_us.mean()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn component_labels_roundtrip() {
        for c in [
            Component::EdgeProducer,
            Component::EdgeProcessor,
            Component::Broker,
            Component::Network("edge->broker".into()),
            Component::CloudProcessor,
            Component::ParamServer,
            Component::Custom("fog".into()),
        ] {
            assert_eq!(component_from_label(&c.label()), c, "{c}");
        }
    }

    #[test]
    fn malformed_rows_skipped() {
        let path = tmp("malformed");
        std::fs::write(
            &path,
            format!("{CSV_HEADER}\n1,1,broker,0,10,8,0\nnot,a,row\n\n2,1,broker,0,10,8,1\n"),
        )
        .unwrap();
        let spans = read_csv(&path).unwrap();
        assert_eq!(spans.len(), 2);
        assert!(spans[1].error);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(read_csv(Path::new("/nonexistent/spans.csv")).is_err());
    }
}
