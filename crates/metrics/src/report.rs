//! Aggregation of raw spans into the per-component and end-to-end statistics
//! the paper's figures plot: throughput (messages/s and MB/s), latency
//! quantiles, and a bottleneck verdict.
//!
//! The *linking* step joins spans by `(job_id, msg_id)`: a message's
//! end-to-end latency is the gap between the earliest span start (the edge
//! producer picking it up) and the latest span end (the cloud processor
//! finishing it). This is exactly how the paper attributes Fig. 2/3 latency,
//! and how it diagnoses that "the Kafka broker can process more data than
//! the consuming processing tasks" at four partitions.

use crate::histogram::Histogram;
use crate::span::{Component, Span};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Aggregate statistics for one component.
#[derive(Debug, Clone)]
pub struct ComponentStats {
    pub component: Component,
    /// Successful spans.
    pub count: u64,
    /// Failed spans.
    pub errors: u64,
    /// Total payload bytes across successful spans.
    pub bytes: u64,
    /// Service-time histogram (µs) of successful spans.
    pub service_us: Histogram,
    /// Wall-clock busy window: earliest start to latest end (µs).
    pub window_us: u64,
}

impl ComponentStats {
    /// Messages per second over the component's busy window.
    pub fn throughput_msgs(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        self.count as f64 / (self.window_us as f64 / 1e6)
    }

    /// Megabytes per second over the component's busy window.
    pub fn throughput_mb(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / (self.window_us as f64 / 1e6)
    }

    /// Mean service time in milliseconds.
    pub fn mean_service_ms(&self) -> f64 {
        self.service_us.mean() / 1e3
    }
}

/// End-to-end (cross-component) message statistics for one job.
#[derive(Debug, Clone)]
pub struct EndToEnd {
    /// Number of messages with at least one span.
    pub messages: u64,
    /// Histogram of end-to-end latency (µs): first span start → last span end
    /// per message.
    pub latency_us: Histogram,
    /// Pipeline throughput in messages/s over the whole job window.
    pub throughput_msgs: f64,
    /// Pipeline throughput in MB/s (bytes = max bytes seen for the message
    /// across components, i.e. the payload size, counted once).
    pub throughput_mb: f64,
}

/// A full report over a set of spans: per-component stats plus end-to-end
/// linkage.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    pub components: Vec<ComponentStats>,
    pub end_to_end: EndToEnd,
}

/// Incremental report aggregation: feed spans one at a time ([`Self::add`])
/// and [`Self::finish`]. One pass, no span clones — the registry's report
/// paths stream shard contents through this instead of materialising a
/// cloned `Vec<Span>` (ruinous at ~1M spans).
#[derive(Debug, Default)]
pub struct ReportBuilder {
    /// component → (hist, count, errors, bytes, min_start, max_end)
    per_comp: BTreeMap<Component, (Histogram, u64, u64, u64, u64, u64)>,
    /// (job_id, msg_id) → (first_start, last_end, payload_bytes)
    per_msg: BTreeMap<(u64, u64), (u64, u64, u64)>,
}

impl ReportBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one span into the aggregate.
    pub fn add(&mut self, s: &Span) {
        let e = self
            .per_comp
            .entry(s.component.clone())
            .or_insert_with(|| (Histogram::new(), 0, 0, 0, u64::MAX, 0));
        if s.error {
            e.2 += 1;
        } else {
            e.0.record(s.duration_us());
            e.1 += 1;
            e.3 += s.bytes;
        }
        e.4 = e.4.min(s.start_us);
        e.5 = e.5.max(s.end_us);

        if !s.error {
            let e = self
                .per_msg
                .entry((s.job_id, s.msg_id))
                .or_insert((u64::MAX, 0, 0));
            e.0 = e.0.min(s.start_us);
            e.1 = e.1.max(s.end_us);
            // Per-message payload size: the max bytes any *transport/
            // processing* span carried. ParamServer spans carry model
            // weights, not the message payload — counting them would
            // inflate small-message throughput (an 11,552-weight
            // auto-encoder publishes 92 KB per 6 KB message).
            if s.component != Component::ParamServer {
                e.2 = e.2.max(s.bytes);
            }
        }
    }

    /// Aggregate everything folded so far into the final report.
    pub fn finish(self) -> PipelineReport {
        let components = self
            .per_comp
            .into_iter()
            .map(
                |(component, (service_us, count, errors, bytes, min_s, max_e))| ComponentStats {
                    component,
                    count,
                    errors,
                    bytes,
                    service_us,
                    window_us: max_e.saturating_sub(if min_s == u64::MAX { 0 } else { min_s }),
                },
            )
            .collect();

        let mut latency_us = Histogram::new();
        let mut total_bytes = 0u64;
        let mut job_start = u64::MAX;
        let mut job_end = 0u64;
        for &(first, last, bytes) in self.per_msg.values() {
            latency_us.record(last.saturating_sub(first));
            total_bytes += bytes;
            job_start = job_start.min(first);
            job_end = job_end.max(last);
        }
        let messages = self.per_msg.len() as u64;
        let window = job_end.saturating_sub(if job_start == u64::MAX { 0 } else { job_start });
        let (throughput_msgs, throughput_mb) = if window == 0 {
            (0.0, 0.0)
        } else {
            let secs = window as f64 / 1e6;
            (messages as f64 / secs, total_bytes as f64 / 1e6 / secs)
        };

        PipelineReport {
            components,
            end_to_end: EndToEnd {
                messages,
                latency_us,
                throughput_msgs,
                throughput_mb,
            },
        }
    }
}

impl PipelineReport {
    /// Build a report from raw spans.
    pub fn from_spans(spans: &[Span]) -> Self {
        let mut b = ReportBuilder::new();
        for s in spans {
            b.add(s);
        }
        b.finish()
    }

    /// Number of distinct messages observed.
    pub fn total_messages(&self) -> u64 {
        self.end_to_end.messages
    }

    /// Stats for one component, if present.
    pub fn component(&self, c: &Component) -> Option<&ComponentStats> {
        self.components.iter().find(|s| &s.component == c)
    }

    /// The bottleneck: the component with the highest mean service time
    /// (weighted by how saturated it is, i.e. busy fraction of its window).
    /// Returns `None` when no spans were recorded.
    pub fn bottleneck(&self) -> Option<&ComponentStats> {
        self.components
            .iter()
            .filter(|c| c.count > 0)
            .max_by(|a, b| {
                let load_a = a.service_us.sum() as f64 / a.window_us.max(1) as f64;
                let load_b = b.service_us.sum() as f64 / b.window_us.max(1) as f64;
                load_a.partial_cmp(&load_b).unwrap()
            })
    }

    /// Total errors across components.
    pub fn total_errors(&self) -> u64 {
        self.components.iter().map(|c| c.errors).sum()
    }

    /// Render a per-component CSV table:
    /// `component,count,errors,bytes,mean_ms,p50_ms,p99_ms,msgs_per_s,mb_per_s`
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "component,count,errors,bytes,mean_ms,p50_ms,p99_ms,msgs_per_s,mb_per_s\n",
        );
        for c in &self.components {
            let _ = writeln!(
                out,
                "{},{},{},{},{:.3},{:.3},{:.3},{:.2},{:.3}",
                c.component.label(),
                c.count,
                c.errors,
                c.bytes,
                c.mean_service_ms(),
                c.service_us.median() as f64 / 1e3,
                c.service_us.p99() as f64 / 1e3,
                c.throughput_msgs(),
                c.throughput_mb(),
            );
        }
        let e = &self.end_to_end;
        let _ = writeln!(
            out,
            "end_to_end,{},{},-,{:.3},{:.3},{:.3},{:.2},{:.3}",
            e.messages,
            self.total_errors(),
            e.latency_us.mean() / 1e3,
            e.latency_us.median() as f64 / 1e3,
            e.latency_us.p99() as f64 / 1e3,
            e.throughput_msgs,
            e.throughput_mb,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Component as C;

    fn span(job: u64, msg: u64, c: C, s: u64, e: u64, b: u64) -> Span {
        Span {
            job_id: job,
            msg_id: msg,
            component: c,
            start_us: s,
            end_us: e,
            bytes: b,
            error: false,
        }
    }

    #[test]
    fn empty_report() {
        let r = PipelineReport::from_spans(&[]);
        assert_eq!(r.total_messages(), 0);
        assert!(r.bottleneck().is_none());
        assert_eq!(r.end_to_end.throughput_msgs, 0.0);
    }

    #[test]
    fn end_to_end_latency_spans_components() {
        // msg 1: producer 0-100, broker 150-200, cloud 300-1000 → e2e = 1000 µs
        let spans = vec![
            span(1, 1, C::EdgeProducer, 0, 100, 64),
            span(1, 1, C::Broker, 150, 200, 64),
            span(1, 1, C::CloudProcessor, 300, 1000, 64),
        ];
        let r = PipelineReport::from_spans(&spans);
        assert_eq!(r.total_messages(), 1);
        assert_eq!(r.end_to_end.latency_us.max(), 1000);
    }

    #[test]
    fn payload_bytes_counted_once_per_message() {
        let spans = vec![
            span(1, 1, C::EdgeProducer, 0, 100, 64),
            span(1, 1, C::Broker, 100, 200, 64),
            span(1, 2, C::EdgeProducer, 200, 300, 64),
            span(1, 2, C::Broker, 300, 1_000_000, 64),
        ];
        let r = PipelineReport::from_spans(&spans);
        // 2 msgs * 64 B over 1 s = 128 B/s = 0.000128 MB/s
        assert!((r.end_to_end.throughput_mb - 0.000128).abs() < 1e-9);
        assert!((r.end_to_end.throughput_msgs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_is_most_loaded_component() {
        // Broker does 10 µs of work per message; cloud does 900 µs.
        let mut spans = Vec::new();
        for m in 0..10u64 {
            let t = m * 1000;
            spans.push(span(1, m, C::Broker, t, t + 10, 8));
            spans.push(span(1, m, C::CloudProcessor, t + 10, t + 910, 8));
        }
        let r = PipelineReport::from_spans(&spans);
        assert_eq!(r.bottleneck().unwrap().component, C::CloudProcessor);
    }

    #[test]
    fn errors_excluded_from_throughput_but_counted() {
        let mut spans = vec![span(1, 1, C::Broker, 0, 10, 8)];
        spans.push(Span {
            error: true,
            ..span(1, 2, C::Broker, 0, 10, 8)
        });
        let r = PipelineReport::from_spans(&spans);
        let b = r.component(&C::Broker).unwrap();
        assert_eq!(b.count, 1);
        assert_eq!(b.errors, 1);
        assert_eq!(r.total_errors(), 1);
        assert_eq!(r.total_messages(), 1); // errored msg had no ok spans
    }

    #[test]
    fn component_throughput_uses_busy_window() {
        // 100 messages of 1 KB each, broker busy from 0 to 1 s.
        let mut spans = Vec::new();
        for m in 0..100u64 {
            let t = m * 10_000;
            spans.push(span(1, m, C::Broker, t, t + 10_000, 1000));
        }
        let r = PipelineReport::from_spans(&spans);
        let b = r.component(&C::Broker).unwrap();
        assert!((b.throughput_msgs() - 100.0).abs() < 1.0);
        assert!((b.throughput_mb() - 0.1).abs() < 0.01);
    }

    #[test]
    fn csv_has_header_and_all_rows() {
        let spans = vec![
            span(1, 1, C::EdgeProducer, 0, 100, 64),
            span(1, 1, C::Broker, 100, 200, 64),
        ];
        let r = PipelineReport::from_spans(&spans);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.trim().lines().collect();
        assert_eq!(lines.len(), 4); // header + 2 components + end_to_end
        assert!(lines[0].starts_with("component,"));
        assert!(lines[3].starts_with("end_to_end,"));
    }

    #[test]
    fn param_server_spans_do_not_inflate_payload_bytes() {
        let spans = vec![
            span(1, 1, C::EdgeProducer, 0, 100, 6_400),
            span(1, 1, C::ParamServer, 100, 200, 92_416),
            span(1, 2, C::EdgeProducer, 200, 300, 6_400),
            span(1, 2, C::ParamServer, 300, 1_000_000, 92_416),
        ];
        let r = PipelineReport::from_spans(&spans);
        // 2 msgs * 6,400 B over 1 s — the 92 KB weight uploads are not
        // message payload.
        assert!((r.end_to_end.throughput_mb - 0.0128).abs() < 1e-6);
    }

    #[test]
    fn messages_from_different_jobs_not_linked() {
        let spans = vec![
            span(1, 7, C::EdgeProducer, 0, 100, 8),
            span(2, 7, C::CloudProcessor, 100, 50_000, 8),
        ];
        let r = PipelineReport::from_spans(&spans);
        assert_eq!(r.total_messages(), 2);
        // Neither message's latency is 50 000 µs end-to-end.
        assert!(r.end_to_end.latency_us.max() < 50_000);
    }
}
