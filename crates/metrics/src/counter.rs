//! Lock-free counters for hot-path counting (messages sent, bytes moved,
//! errors observed).

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
///
/// Uses `Relaxed` ordering: counters are statistics, not synchronisation.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Create a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.value.swap(0, Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn add_and_get() {
        let c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn reset_returns_previous() {
        let c = Counter::new();
        c.add(7);
        assert_eq!(c.reset(), 7);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = Arc::new(Counter::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let c = Arc::clone(&c);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.incr();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }
}
