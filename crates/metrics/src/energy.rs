//! Energy-consumption estimation (paper Section V, future work:
//! "investigate further scheduling and approaches, e.g., energy
//! consumption").
//!
//! The model is deliberately simple — active time × a per-resource-class
//! power draw, plus an idle baseline — which is the standard first-order
//! model for placement studies. It lets placement policies and the ablation
//! benches compare, e.g., running a model on many small edge devices against
//! one large cloud VM.

use serde::{Deserialize, Serialize};

/// Coarse hardware classes along the continuum, with representative
/// power draws (taken from public spec sheets: a Raspberry Pi 4 draws
/// ~2.7 W idle / ~6.4 W loaded; cloud VM figures are per-core shares of a
/// dual-socket server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceClass {
    /// Raspberry-Pi-class edge device (1 core, ~4 GB).
    EdgeDevice,
    /// Medium cloud VM (4–6 cores).
    CloudMedium,
    /// Large cloud VM (10 cores, 44 GB — the paper's LRZ "large").
    CloudLarge,
    /// HPC node share.
    HpcNode,
}

impl ResourceClass {
    /// Idle power draw in watts.
    pub fn idle_watts(self) -> f64 {
        match self {
            ResourceClass::EdgeDevice => 2.7,
            ResourceClass::CloudMedium => 25.0,
            ResourceClass::CloudLarge => 60.0,
            ResourceClass::HpcNode => 150.0,
        }
    }

    /// Fully-loaded power draw in watts.
    pub fn active_watts(self) -> f64 {
        match self {
            ResourceClass::EdgeDevice => 6.4,
            ResourceClass::CloudMedium => 80.0,
            ResourceClass::CloudLarge => 180.0,
            ResourceClass::HpcNode => 400.0,
        }
    }
}

/// Accumulates busy/idle time for one resource and converts it to joules.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyModel {
    class: ResourceClass,
    busy_secs: f64,
    wall_secs: f64,
}

impl EnergyModel {
    /// Create a model for a resource of the given class.
    pub fn new(class: ResourceClass) -> Self {
        Self {
            class,
            busy_secs: 0.0,
            wall_secs: 0.0,
        }
    }

    /// Record `secs` of active computation.
    pub fn record_busy(&mut self, secs: f64) {
        self.busy_secs += secs.max(0.0);
    }

    /// Set the total wall-clock lifetime of the resource. Idle time is
    /// `wall - busy`.
    pub fn set_wall(&mut self, secs: f64) {
        self.wall_secs = secs.max(0.0);
    }

    /// Total busy seconds recorded so far.
    pub fn busy_secs(&self) -> f64 {
        self.busy_secs
    }

    /// Estimated energy in joules: busy time at active watts, remaining wall
    /// time at idle watts. If wall < busy (caller forgot `set_wall`), wall is
    /// clamped up to busy.
    pub fn joules(&self) -> f64 {
        let wall = self.wall_secs.max(self.busy_secs);
        let idle = wall - self.busy_secs;
        self.busy_secs * self.class.active_watts() + idle * self.class.idle_watts()
    }

    /// Utilisation in `[0, 1]`: busy / wall.
    pub fn utilisation(&self) -> f64 {
        let wall = self.wall_secs.max(self.busy_secs);
        if wall == 0.0 {
            0.0
        } else {
            self.busy_secs / wall
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_idle_resource_draws_idle_power() {
        let mut m = EnergyModel::new(ResourceClass::EdgeDevice);
        m.set_wall(100.0);
        assert!((m.joules() - 270.0).abs() < 1e-9);
        assert_eq!(m.utilisation(), 0.0);
    }

    #[test]
    fn fully_busy_resource_draws_active_power() {
        let mut m = EnergyModel::new(ResourceClass::EdgeDevice);
        m.record_busy(100.0);
        m.set_wall(100.0);
        assert!((m.joules() - 640.0).abs() < 1e-9);
        assert!((m.utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_busy_idle() {
        let mut m = EnergyModel::new(ResourceClass::CloudLarge);
        m.record_busy(30.0);
        m.set_wall(100.0);
        // 30 s * 180 W + 70 s * 60 W = 5400 + 4200 = 9600 J
        assert!((m.joules() - 9600.0).abs() < 1e-9);
        assert!((m.utilisation() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn wall_clamped_to_busy() {
        let mut m = EnergyModel::new(ResourceClass::CloudMedium);
        m.record_busy(10.0);
        // set_wall never called
        assert!((m.joules() - 800.0).abs() < 1e-9);
        assert!((m.utilisation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn negative_inputs_ignored() {
        let mut m = EnergyModel::new(ResourceClass::HpcNode);
        m.record_busy(-5.0);
        m.set_wall(-1.0);
        assert_eq!(m.busy_secs(), 0.0);
        assert_eq!(m.joules(), 0.0);
    }

    #[test]
    fn active_exceeds_idle_for_all_classes() {
        for c in [
            ResourceClass::EdgeDevice,
            ResourceClass::CloudMedium,
            ResourceClass::CloudLarge,
            ResourceClass::HpcNode,
        ] {
            assert!(c.active_watts() > c.idle_watts());
        }
    }
}
