//! Chrome `trace_event` export: serialize span chains and gauge frames to
//! the JSON Array Format loadable by `chrome://tracing` and Perfetto.
//!
//! Each [`Span`] becomes a complete (`"ph":"X"`) event whose `pid` is the
//! job id and whose `tid` is a stable per-component row, so a loaded trace
//! shows one horizontal track per pipeline component with the linked
//! per-message chain (EdgeProducer → Network → Broker → Network →
//! CloudProcessor) readable left to right. Each gauge series from the
//! [`TelemetryFrame`] ring becomes a counter
//! (`"ph":"C"`) track. Metadata (`"ph":"M"`) events name the rows.
//!
//! The writer streams: [`write_chrome_trace_to`] emits through any
//! `io::Write` sink in bounded chunks, so the gateway's `GET /trace` can
//! serialize a million-span run straight to the socket without ever
//! materializing the full JSON, and the file/String exporters are thin
//! wrappers over the same code path. No JSON library is taken on as a
//! dependency — the events are hand-rolled via [`crate::json`], and
//! [`validate_trace_json`] proves the export well-formed in tests and CI.

use crate::json::{push_json_string, validate_json_counting};
use crate::span::Span;
use crate::telemetry::TelemetryFrame;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Flush the chunk buffer to the sink once it grows past this.
const CHUNK_BYTES: usize = 32 * 1024;

/// Stream spans + telemetry frames as a Chrome `trace_event` JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`) into `w`.
///
/// Output is written in ≤ ~32 KiB chunks: peak memory is bounded by the
/// chunk size, not the trace size. The byte stream is identical to
/// [`chrome_trace_json`]'s.
pub fn write_chrome_trace_to(
    w: &mut dyn Write,
    spans: &[Span],
    frames: &[TelemetryFrame],
) -> std::io::Result<()> {
    let mut chunk = String::with_capacity(CHUNK_BYTES + 1024);
    chunk.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Stable per-component rows: tid by first appearance, named via
    // metadata events so the viewer shows labels instead of numbers.
    let mut tids: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let label = s.component.label();
        let next = tids.len() as u64 + 1;
        let tid = *tids.entry(label.clone()).or_insert(next);
        push_event(&mut chunk, &mut first, |e| {
            e.push_str("\"name\":");
            push_json_string(e, &label);
            e.push_str(",\"cat\":\"span\",\"ph\":\"X\",\"ts\":");
            e.push_str(&s.start_us.to_string());
            e.push_str(",\"dur\":");
            e.push_str(&s.duration_us().to_string());
            e.push_str(",\"pid\":");
            e.push_str(&s.job_id.to_string());
            e.push_str(",\"tid\":");
            e.push_str(&tid.to_string());
            e.push_str(",\"args\":{\"msg_id\":");
            e.push_str(&s.msg_id.to_string());
            e.push_str(",\"bytes\":");
            e.push_str(&s.bytes.to_string());
            e.push_str(",\"error\":");
            e.push_str(if s.error { "true" } else { "false" });
            e.push('}');
        });
        flush_chunk(w, &mut chunk)?;
    }
    for (label, tid) in &tids {
        push_event(&mut chunk, &mut first, |e| {
            e.push_str("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
            e.push_str(&tid.to_string());
            e.push_str(",\"args\":{\"name\":");
            push_json_string(e, label);
            e.push('}');
        });
        flush_chunk(w, &mut chunk)?;
    }
    // Gauge series as counter tracks: one "C" event per gauge per frame.
    for f in frames {
        for (name, value) in &f.values {
            push_event(&mut chunk, &mut first, |e| {
                e.push_str("\"name\":");
                push_json_string(e, name);
                e.push_str(",\"cat\":\"gauge\",\"ph\":\"C\",\"ts\":");
                e.push_str(&f.t_us.to_string());
                e.push_str(",\"pid\":0,\"args\":{\"value\":");
                e.push_str(&value.to_string());
                e.push('}');
            });
        }
        flush_chunk(w, &mut chunk)?;
    }
    chunk.push_str("],\"displayTimeUnit\":\"ms\"}");
    w.write_all(chunk.as_bytes())
}

fn flush_chunk(w: &mut dyn Write, chunk: &mut String) -> std::io::Result<()> {
    if chunk.len() >= CHUNK_BYTES {
        w.write_all(chunk.as_bytes())?;
        chunk.clear();
    }
    Ok(())
}

/// Render spans + telemetry frames as one in-memory JSON string (the
/// buffered convenience wrapper over [`write_chrome_trace_to`]).
pub fn chrome_trace_json(spans: &[Span], frames: &[TelemetryFrame]) -> String {
    let mut out: Vec<u8> = Vec::with_capacity(128 + spans.len() * 160);
    write_chrome_trace_to(&mut out, spans, frames).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("trace writer emits UTF-8")
}

/// Write the Chrome trace for `spans` + `frames` to `path` (streamed
/// through a buffered file writer).
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    spans: &[Span],
    frames: &[TelemetryFrame],
) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    write_chrome_trace_to(&mut file, spans, frames)?;
    file.flush()
}

fn push_event(out: &mut String, first: &mut bool, body: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('{');
    body(out);
    out.push('}');
}

/// Validate `text` as Chrome-trace JSON: it must parse as a JSON value
/// (full grammar — objects, arrays, strings with escapes, numbers, bools,
/// null) and contain a `traceEvents` array. Returns the number of events.
///
/// This is deliberately a *validator*, not a parser into a document tree —
/// it exists so tests and the CI smoke can assert "the export is loadable"
/// without taking a JSON crate dependency. The grammar checker itself is
/// [`crate::json::validate_json`], shared with the gateway's JSON
/// endpoints.
pub fn validate_trace_json(text: &str) -> Result<usize, String> {
    validate_json_counting(text, Some("traceEvents"))?
        .ok_or_else(|| "no traceEvents array found".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Component;
    use std::sync::Arc;

    fn span(component: Component, msg_id: u64, start: u64, end: u64) -> Span {
        Span {
            job_id: 3,
            msg_id,
            component,
            start_us: start,
            end_us: end,
            bytes: 64,
            error: false,
        }
    }

    #[test]
    fn empty_trace_is_valid_with_zero_events() {
        let json = chrome_trace_json(&[], &[]);
        assert_eq!(validate_trace_json(&json), Ok(0));
    }

    #[test]
    fn spans_and_frames_counted_as_events() {
        let spans = vec![
            span(Component::EdgeProducer, 1, 0, 10),
            span(Component::Broker, 1, 10, 20),
        ];
        let frames = vec![TelemetryFrame {
            t_us: 5,
            values: vec![(Arc::from("depth"), 3), (Arc::from("lag"), 7)],
        }];
        let json = chrome_trace_json(&spans, &frames);
        // 2 span events + 2 thread_name metadata + 2 counter events.
        assert_eq!(validate_trace_json(&json), Ok(6));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn hostile_component_labels_are_escaped() {
        let nasty = Component::Network("a,\"b\"\n\\c\td\u{1}".to_string());
        let json = chrome_trace_json(&[span(nasty, 9, 0, 5)], &[]);
        let n = validate_trace_json(&json).expect("escaped output must validate");
        assert_eq!(n, 2); // span + its thread_name metadata
    }

    #[test]
    fn same_component_shares_a_tid() {
        let spans = vec![
            span(Component::Broker, 1, 0, 1),
            span(Component::Broker, 2, 1, 2),
            span(Component::CloudProcessor, 1, 2, 3),
        ];
        let json = chrome_trace_json(&spans, &[]);
        // 3 spans but only 2 distinct rows → 2 metadata events.
        assert_eq!(validate_trace_json(&json), Ok(5));
    }

    #[test]
    fn write_chrome_trace_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("pilot_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let spans = vec![span(Component::EdgeProducer, 1, 0, 10)];
        write_chrome_trace(&path, &spans, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_trace_json(&text), Ok(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn streamed_output_is_byte_identical_to_buffered_across_chunks() {
        // Enough spans that the streaming path flushes several chunks.
        let spans: Vec<Span> = (0..2000)
            .map(|i| span(Component::Broker, i, i, i + 1))
            .collect();
        let frames: Vec<TelemetryFrame> = (0..50)
            .map(|t| TelemetryFrame {
                t_us: t,
                values: vec![(Arc::from("lag"), t as i64)],
            })
            .collect();
        let buffered = chrome_trace_json(&spans, &frames);
        assert!(buffered.len() > CHUNK_BYTES * 2, "must exercise chunking");
        let mut streamed: Vec<u8> = Vec::new();
        write_chrome_trace_to(&mut streamed, &spans, &frames).unwrap();
        assert_eq!(streamed, buffered.as_bytes());
        assert!(validate_trace_json(&buffered).unwrap() > 2000);
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"traceEvents\":[}",
            "{\"traceEvents\":[]} trailing",
            "{\"traceEvents\":[{\"a\":01}]}",
            "{\"traceEvents\":[\"unterminated]}",
            "{'traceEvents':[]}",
        ] {
            assert!(validate_trace_json(bad).is_err(), "accepted: {bad:?}");
        }
        // Valid JSON without the required array is also rejected.
        assert!(validate_trace_json("{\"other\":[]}").is_err());
        assert!(validate_trace_json("[1,2,3]").is_err());
    }

    #[test]
    fn validator_accepts_full_grammar() {
        let json = "{\"traceEvents\":[{\"s\":\"\\u00e9\\n\",\"n\":-1.5e+3,\
                    \"b\":true,\"x\":null,\"a\":[1,[2,{}]]}],\"k\":false}";
        assert_eq!(validate_trace_json(json), Ok(1));
    }
}
