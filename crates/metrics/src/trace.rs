//! Chrome `trace_event` export: serialize span chains and gauge frames to
//! the JSON Array Format loadable by `chrome://tracing` and Perfetto.
//!
//! Each [`Span`] becomes a complete (`"ph":"X"`) event whose `pid` is the
//! job id and whose `tid` is a stable per-component row, so a loaded trace
//! shows one horizontal track per pipeline component with the linked
//! per-message chain (EdgeProducer → Network → Broker → Network →
//! CloudProcessor) readable left to right. Each gauge series from the
//! [`TelemetryFrame`] ring becomes a counter
//! (`"ph":"C"`) track. Metadata (`"ph":"M"`) events name the rows.
//!
//! No JSON library is taken on as a dependency: the writer hand-rolls the
//! (flat, fully controlled) output, and [`validate_trace_json`] is a small
//! recursive-descent checker used by tests and the CI smoke to prove the
//! export is well-formed and non-empty.

use crate::span::Span;
use crate::telemetry::TelemetryFrame;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Render spans + telemetry frames as a Chrome `trace_event` JSON object
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
pub fn chrome_trace_json(spans: &[Span], frames: &[TelemetryFrame]) -> String {
    let mut out = String::with_capacity(128 + spans.len() * 160);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    // Stable per-component rows: tid by first appearance, named via
    // metadata events so the viewer shows labels instead of numbers.
    let mut tids: BTreeMap<String, u64> = BTreeMap::new();
    for s in spans {
        let label = s.component.label();
        let next = tids.len() as u64 + 1;
        let tid = *tids.entry(label.clone()).or_insert(next);
        push_event(&mut out, &mut first, |e| {
            e.push_str("\"name\":");
            push_json_string(e, &label);
            e.push_str(",\"cat\":\"span\",\"ph\":\"X\",\"ts\":");
            e.push_str(&s.start_us.to_string());
            e.push_str(",\"dur\":");
            e.push_str(&s.duration_us().to_string());
            e.push_str(",\"pid\":");
            e.push_str(&s.job_id.to_string());
            e.push_str(",\"tid\":");
            e.push_str(&tid.to_string());
            e.push_str(",\"args\":{\"msg_id\":");
            e.push_str(&s.msg_id.to_string());
            e.push_str(",\"bytes\":");
            e.push_str(&s.bytes.to_string());
            e.push_str(",\"error\":");
            e.push_str(if s.error { "true" } else { "false" });
            e.push('}');
        });
    }
    for (label, tid) in &tids {
        push_event(&mut out, &mut first, |e| {
            e.push_str("\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":");
            e.push_str(&tid.to_string());
            e.push_str(",\"args\":{\"name\":");
            push_json_string(e, label);
            e.push('}');
        });
    }
    // Gauge series as counter tracks: one "C" event per gauge per frame.
    for f in frames {
        for (name, value) in &f.values {
            push_event(&mut out, &mut first, |e| {
                e.push_str("\"name\":");
                push_json_string(e, name);
                e.push_str(",\"cat\":\"gauge\",\"ph\":\"C\",\"ts\":");
                e.push_str(&f.t_us.to_string());
                e.push_str(",\"pid\":0,\"args\":{\"value\":");
                e.push_str(&value.to_string());
                e.push('}');
            });
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Write the Chrome trace for `spans` + `frames` to `path`.
pub fn write_chrome_trace(
    path: impl AsRef<Path>,
    spans: &[Span],
    frames: &[TelemetryFrame],
) -> std::io::Result<()> {
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    file.write_all(chrome_trace_json(spans, frames).as_bytes())
}

fn push_event(out: &mut String, first: &mut bool, body: impl FnOnce(&mut String)) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push('{');
    body(out);
    out.push('}');
}

/// Append `s` as a JSON string literal, escaping per RFC 8259.
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Validate `text` as Chrome-trace JSON: it must parse as a JSON value
/// (full grammar — objects, arrays, strings with escapes, numbers, bools,
/// null) and contain a `traceEvents` array. Returns the number of events.
///
/// This is deliberately a *validator*, not a parser into a document tree —
/// it exists so tests and the CI smoke can assert "the export is loadable"
/// without taking a JSON crate dependency.
pub fn validate_trace_json(text: &str) -> Result<usize, String> {
    let mut v = Validator {
        bytes: text.as_bytes(),
        pos: 0,
        events: None,
        depth: 0,
    };
    v.skip_ws();
    v.value()?;
    v.skip_ws();
    if v.pos != v.bytes.len() {
        return Err(format!("trailing garbage at byte {}", v.pos));
    }
    v.events
        .ok_or_else(|| "no traceEvents array found".to_string())
}

struct Validator<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Number of elements of the top-level `traceEvents` array, once seen.
    events: Option<usize>,
    depth: usize,
}

impl Validator<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                self.peek().map(|b| b as char)
            ))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > 128 {
            return Err("nesting too deep".into());
        }
        self.skip_ws();
        let r = match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => {
                self.array()?;
                Ok(())
            }
            Some(b'"') => self.string().map(|_| ()),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        };
        self.depth -= 1;
        r
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            if key == "traceEvents" && self.peek() == Some(b'[') {
                let n = self.array()?;
                if self.events.is_none() {
                    self.events = Some(n);
                }
            } else {
                self.value()?;
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    /// Validate an array, returning its element count.
    fn array(&mut self) -> Result<usize, String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(0);
        }
        let mut n = 0;
        loop {
            self.value()?;
            n += 1;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(n);
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(c @ (b'"' | b'\\' | b'/')) => {
                            out.push(c as char);
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r' | b't' | b'b' | b'f') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!("bad \\u escape at byte {}", self.pos))
                                    }
                                }
                            }
                        }
                        other => {
                            return Err(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            ))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(format!("raw control byte {c:#04x} in string")),
                Some(_) => {
                    // Skip one UTF-8 scalar (input is a &str, so boundaries
                    // are valid by construction).
                    let ch = self.remaining_char();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn remaining_char(&self) -> char {
        // Safe: `bytes` comes from a &str and pos is always on a boundary.
        std::str::from_utf8(&self.bytes[self.pos..])
            .expect("validator input is UTF-8")
            .chars()
            .next()
            .expect("peeked non-empty")
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |v: &mut Self| {
            let s = v.pos;
            while matches!(v.peek(), Some(c) if c.is_ascii_digit()) {
                v.pos += 1;
            }
            v.pos > s
        };
        let int_start = self.pos;
        if !digits(self) {
            return Err(format!("bad number at byte {start}"));
        }
        // JSON forbids leading zeros ("01" is not a number).
        if self.pos - int_start > 1 && self.bytes[int_start] == b'0' {
            return Err(format!("leading zero in number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("bad number at byte {start}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Component;
    use std::sync::Arc;

    fn span(component: Component, msg_id: u64, start: u64, end: u64) -> Span {
        Span {
            job_id: 3,
            msg_id,
            component,
            start_us: start,
            end_us: end,
            bytes: 64,
            error: false,
        }
    }

    #[test]
    fn empty_trace_is_valid_with_zero_events() {
        let json = chrome_trace_json(&[], &[]);
        assert_eq!(validate_trace_json(&json), Ok(0));
    }

    #[test]
    fn spans_and_frames_counted_as_events() {
        let spans = vec![
            span(Component::EdgeProducer, 1, 0, 10),
            span(Component::Broker, 1, 10, 20),
        ];
        let frames = vec![TelemetryFrame {
            t_us: 5,
            values: vec![(Arc::from("depth"), 3), (Arc::from("lag"), 7)],
        }];
        let json = chrome_trace_json(&spans, &frames);
        // 2 span events + 2 thread_name metadata + 2 counter events.
        assert_eq!(validate_trace_json(&json), Ok(6));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"M\""));
    }

    #[test]
    fn hostile_component_labels_are_escaped() {
        let nasty = Component::Network("a,\"b\"\n\\c\td\u{1}".to_string());
        let json = chrome_trace_json(&[span(nasty, 9, 0, 5)], &[]);
        let n = validate_trace_json(&json).expect("escaped output must validate");
        assert_eq!(n, 2); // span + its thread_name metadata
    }

    #[test]
    fn same_component_shares_a_tid() {
        let spans = vec![
            span(Component::Broker, 1, 0, 1),
            span(Component::Broker, 2, 1, 2),
            span(Component::CloudProcessor, 1, 2, 3),
        ];
        let json = chrome_trace_json(&spans, &[]);
        // 3 spans but only 2 distinct rows → 2 metadata events.
        assert_eq!(validate_trace_json(&json), Ok(5));
    }

    #[test]
    fn write_chrome_trace_roundtrips_through_disk() {
        let dir = std::env::temp_dir().join("pilot_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let spans = vec![span(Component::EdgeProducer, 1, 0, 10)];
        write_chrome_trace(&path, &spans, &[]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(validate_trace_json(&text), Ok(2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_rejects_malformed_json() {
        for bad in [
            "",
            "{",
            "{\"traceEvents\":[}",
            "{\"traceEvents\":[]} trailing",
            "{\"traceEvents\":[{\"a\":01}]}",
            "{\"traceEvents\":[\"unterminated]}",
            "{'traceEvents':[]}",
        ] {
            assert!(validate_trace_json(bad).is_err(), "accepted: {bad:?}");
        }
        // Valid JSON without the required array is also rejected.
        assert!(validate_trace_json("{\"other\":[]}").is_err());
        assert!(validate_trace_json("[1,2,3]").is_err());
    }

    #[test]
    fn validator_accepts_full_grammar() {
        let json = "{\"traceEvents\":[{\"s\":\"\\u00e9\\n\",\"n\":-1.5e+3,\
                    \"b\":true,\"x\":null,\"a\":[1,[2,{}]]}],\"k\":false}";
        assert_eq!(validate_trace_json(json), Ok(1));
    }
}
