//! Span records: one timed unit of work in one pipeline component.
//!
//! A [`Span`] is the atom of the Pilot-Edge monitoring model. Every message
//! that flows through the pipeline produces one span per component it
//! touches; the `(job_id, msg_id)` key links them back together into an
//! end-to-end trace (paper Section II-B: "A unique job identifier ensures
//! that progress and errors can be consistently tracked across all
//! components").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies one pipeline run (one `EdgeToCloudPipeline.run()` invocation).
pub type JobId = u64;

/// Identifies one message within a job. Message ids are assigned by the
/// producing edge device and carried through broker and processors.
pub type MsgId = u64;

/// The pipeline component a span was recorded in.
///
/// The variants mirror the components of Fig. 1 of the paper. `Custom` covers
/// application-defined stages (e.g. an extra fog tier in a multi-layer
/// deployment).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Component {
    /// The edge data source (`produce_edge`).
    EdgeProducer,
    /// Edge-side processing (`process_edge`), used in hybrid deployments.
    EdgeProcessor,
    /// The message broker (append + fetch service time).
    Broker,
    /// Network transfer time on a named link (e.g. "edge->broker").
    Network(String),
    /// Cloud-side processing (`process_cloud`): pre-processing, training,
    /// inference.
    CloudProcessor,
    /// Parameter-server operations (model get/put/merge).
    ParamServer,
    /// Application-defined component.
    Custom(String),
}

impl Component {
    /// Short, stable label used in CSV output and reports.
    pub fn label(&self) -> String {
        match self {
            Component::EdgeProducer => "edge_producer".to_string(),
            Component::EdgeProcessor => "edge_processor".to_string(),
            Component::Broker => "broker".to_string(),
            Component::Network(link) => format!("net:{link}"),
            Component::CloudProcessor => "cloud_processor".to_string(),
            Component::ParamServer => "param_server".to_string(),
            Component::Custom(name) => format!("custom:{name}"),
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One timed unit of work: `component` handled message `(job_id, msg_id)`
/// between `start_us` and `end_us` (microseconds from the registry epoch),
/// touching `bytes` bytes of payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Span {
    pub job_id: JobId,
    pub msg_id: MsgId,
    pub component: Component,
    /// Start timestamp, µs since the registry's clock epoch.
    pub start_us: u64,
    /// End timestamp, µs since the registry's clock epoch. `end_us >= start_us`.
    pub end_us: u64,
    /// Payload bytes handled by this span (0 for control work).
    pub bytes: u64,
    /// Whether the unit of work failed. Failed spans are excluded from
    /// throughput but surfaced in error counts.
    pub error: bool,
}

impl Span {
    /// Service time of this span in microseconds.
    #[inline]
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Service time in seconds.
    #[inline]
    pub fn duration_secs(&self) -> f64 {
        self.duration_us() as f64 / 1e6
    }
}

/// Builder for a span whose end time is not yet known. Obtain one from
/// [`crate::MetricsRegistry::start_span`], then call
/// [`MetricsRegistry::finish`](crate::MetricsRegistry::finish) (or
/// [`MetricsRegistry::fail`](crate::MetricsRegistry::fail)) when the work is done.
#[derive(Debug)]
pub struct SpanBuilder {
    pub(crate) job_id: JobId,
    pub(crate) msg_id: MsgId,
    pub(crate) component: Component,
    pub(crate) start_us: u64,
    pub(crate) bytes: u64,
}

impl SpanBuilder {
    /// Set the number of payload bytes this span covers.
    pub fn bytes(mut self, bytes: u64) -> Self {
        self.bytes = bytes;
        self
    }

    /// Complete the span successfully at `end_us`.
    pub(crate) fn into_span(self, end_us: u64, error: bool) -> Span {
        Span {
            job_id: self.job_id,
            msg_id: self.msg_id,
            component: self.component,
            start_us: self.start_us,
            end_us: end_us.max(self.start_us),
            bytes: self.bytes,
            error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_is_end_minus_start() {
        let s = Span {
            job_id: 1,
            msg_id: 2,
            component: Component::Broker,
            start_us: 100,
            end_us: 350,
            bytes: 1024,
            error: false,
        };
        assert_eq!(s.duration_us(), 250);
        assert!((s.duration_secs() - 250e-6).abs() < 1e-12);
    }

    #[test]
    fn duration_saturates_on_clock_skew() {
        let s = Span {
            job_id: 1,
            msg_id: 2,
            component: Component::Broker,
            start_us: 400,
            end_us: 100,
            bytes: 0,
            error: false,
        };
        assert_eq!(s.duration_us(), 0);
    }

    #[test]
    fn component_labels_are_stable() {
        assert_eq!(Component::EdgeProducer.label(), "edge_producer");
        assert_eq!(Component::Network("wan".into()).label(), "net:wan");
        assert_eq!(Component::Custom("fog".into()).label(), "custom:fog");
    }

    #[test]
    fn builder_clamps_end_before_start() {
        let b = SpanBuilder {
            job_id: 1,
            msg_id: 1,
            component: Component::CloudProcessor,
            start_us: 500,
            bytes: 0,
        };
        let s = b.into_span(400, false);
        assert_eq!(s.start_us, 500);
        assert_eq!(s.end_us, 500);
    }
}
