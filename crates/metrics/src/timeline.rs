//! Time-bucketed series: throughput and latency *over time*.
//!
//! The paper's dynamism story (bursts, scaling, function swaps) is only
//! visible in a time dimension the aggregate report flattens away. A
//! [`Timeline`] rebuckets a job's spans into fixed windows, yielding the
//! per-window series (messages/s, MB/s, mean latency) that the `dynamism`
//! harness binary prints and the autoscaler tests assert on.

use crate::span::{Component, Span};

/// One time bucket's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBucket {
    /// Bucket start, µs since the clock epoch.
    pub start_us: u64,
    /// Spans completed successfully in this bucket.
    pub count: u64,
    /// Payload bytes completed in this bucket (successful spans).
    pub bytes: u64,
    /// Mean service time of spans completing in this bucket (µs,
    /// successful spans only).
    pub mean_service_us: f64,
    /// Error spans ending in this bucket — without this a window of
    /// failures is indistinguishable from an idle window.
    pub errors: u64,
}

impl TimeBucket {
    /// Messages per second within the bucket.
    pub fn rate(&self, bucket_us: u64) -> f64 {
        if bucket_us == 0 {
            return 0.0;
        }
        self.count as f64 / (bucket_us as f64 / 1e6)
    }

    /// MB per second within the bucket.
    pub fn mb_rate(&self, bucket_us: u64) -> f64 {
        if bucket_us == 0 {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / (bucket_us as f64 / 1e6)
    }
}

/// A bucketed view over one component's spans.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Bucket width in µs.
    pub bucket_us: u64,
    /// Consecutive buckets from the first to the last span (empty buckets
    /// included, with zero counts).
    pub buckets: Vec<TimeBucket>,
}

impl Timeline {
    /// Bucket the spans of `component` (or all components when `None`) by
    /// completion time. Error spans count toward each bucket's `errors`
    /// (and extend the bucket range) but not toward throughput/service.
    pub fn from_spans(spans: &[Span], component: Option<&Component>, bucket_us: u64) -> Self {
        assert!(bucket_us > 0, "bucket width must be > 0");
        let selected: Vec<&Span> = spans
            .iter()
            .filter(|s| component.is_none_or(|c| &s.component == c))
            .collect();
        if selected.is_empty() {
            return Self {
                bucket_us,
                buckets: Vec::new(),
            };
        }
        let first = selected.iter().map(|s| s.end_us).min().unwrap() / bucket_us;
        let last = selected.iter().map(|s| s.end_us).max().unwrap() / bucket_us;
        let n = (last - first + 1) as usize;
        let mut counts = vec![0u64; n];
        let mut bytes = vec![0u64; n];
        let mut service = vec![0u64; n];
        let mut errors = vec![0u64; n];
        for s in &selected {
            let b = (s.end_us / bucket_us - first) as usize;
            if s.error {
                errors[b] += 1;
            } else {
                counts[b] += 1;
                bytes[b] += s.bytes;
                service[b] += s.duration_us();
            }
        }
        let buckets = (0..n)
            .map(|b| TimeBucket {
                start_us: (first + b as u64) * bucket_us,
                count: counts[b],
                bytes: bytes[b],
                mean_service_us: if counts[b] == 0 {
                    0.0
                } else {
                    service[b] as f64 / counts[b] as f64
                },
                errors: errors[b],
            })
            .collect();
        Self { bucket_us, buckets }
    }

    /// Peak per-bucket message rate.
    pub fn peak_rate(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.rate(self.bucket_us))
            .fold(0.0, f64::max)
    }

    /// CSV rendering: `t_ms,count,errors,msgs_per_s,mb_per_s,mean_service_ms`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms,count,errors,msgs_per_s,mb_per_s,mean_service_ms\n");
        for b in &self.buckets {
            out.push_str(&format!(
                "{:.1},{},{},{:.2},{:.4},{:.3}\n",
                b.start_us as f64 / 1e3,
                b.count,
                b.errors,
                b.rate(self.bucket_us),
                b.mb_rate(self.bucket_us),
                b.mean_service_us / 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(end_us: u64, bytes: u64, dur: u64) -> Span {
        Span {
            job_id: 1,
            msg_id: end_us,
            component: Component::CloudProcessor,
            start_us: end_us - dur,
            end_us,
            bytes,
            error: false,
        }
    }

    #[test]
    fn empty_spans_empty_timeline() {
        let t = Timeline::from_spans(&[], None, 1000);
        assert!(t.buckets.is_empty());
        assert_eq!(t.peak_rate(), 0.0);
    }

    #[test]
    fn buckets_cover_span_range_contiguously() {
        let spans = vec![span(1_500, 10, 100), span(4_500, 10, 100)];
        let t = Timeline::from_spans(&spans, None, 1_000);
        // Buckets 1..=4 → 4 buckets, including empty 2 and 3.
        assert_eq!(t.buckets.len(), 4);
        assert_eq!(t.buckets[0].count, 1);
        assert_eq!(t.buckets[1].count, 0);
        assert_eq!(t.buckets[3].count, 1);
        assert_eq!(t.buckets[0].start_us, 1_000);
    }

    #[test]
    fn rates_are_per_second() {
        let spans: Vec<Span> = (0..10).map(|i| span(500 + i * 10, 1_000, 5)).collect();
        let t = Timeline::from_spans(&spans, None, 1_000);
        assert_eq!(t.buckets.len(), 1);
        // 10 msgs in a 1 ms bucket = 10,000 msgs/s.
        assert!((t.buckets[0].rate(1_000) - 10_000.0).abs() < 1e-9);
        // 10 KB in 1 ms = 10 MB/s.
        assert!((t.buckets[0].mb_rate(1_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn component_filter() {
        let mut spans = vec![span(100, 1, 10)];
        spans.push(Span {
            component: Component::Broker,
            ..span(150, 1, 10)
        });
        let t = Timeline::from_spans(&spans, Some(&Component::Broker), 1_000);
        assert_eq!(t.buckets.iter().map(|b| b.count).sum::<u64>(), 1);
    }

    #[test]
    fn errors_counted_but_not_throughput() {
        let mut bad = span(100, 64, 10);
        bad.error = true;
        let t = Timeline::from_spans(&[bad], None, 1_000);
        // A window of failures is visible — not an empty timeline …
        assert_eq!(t.buckets.len(), 1);
        assert_eq!(t.buckets[0].errors, 1);
        // … but contributes nothing to the success-side series.
        assert_eq!(t.buckets[0].count, 0);
        assert_eq!(t.buckets[0].bytes, 0);
        assert_eq!(t.buckets[0].mean_service_us, 0.0);
        assert_eq!(t.peak_rate(), 0.0);
    }

    #[test]
    fn errors_and_successes_split_per_bucket() {
        let mut spans = vec![span(500, 10, 5), span(600, 10, 5)];
        let mut bad = span(700, 10, 5);
        bad.error = true;
        spans.push(bad);
        let mut bad2 = span(1_500, 10, 5);
        bad2.error = true;
        spans.push(bad2);
        let t = Timeline::from_spans(&spans, None, 1_000);
        assert_eq!(t.buckets.len(), 2);
        assert_eq!((t.buckets[0].count, t.buckets[0].errors), (2, 1));
        assert_eq!((t.buckets[1].count, t.buckets[1].errors), (0, 1));
        let csv = t.to_csv();
        assert!(csv.starts_with("t_ms,count,errors,"));
        assert!(csv.lines().nth(1).unwrap().contains(",2,1,"));
    }

    #[test]
    fn mean_service_time() {
        let spans = vec![span(500, 1, 100), span(600, 1, 300)];
        let t = Timeline::from_spans(&spans, None, 1_000);
        assert!((t.buckets[0].mean_service_us - 200.0).abs() < 1e-9);
    }

    #[test]
    fn peak_rate_finds_burst() {
        let mut spans: Vec<Span> = (0..5).map(|i| span(1_000 + i * 100, 1, 10)).collect();
        spans.extend((0..50).map(|i| span(5_000 + i * 10, 1, 10)));
        let t = Timeline::from_spans(&spans, None, 1_000);
        // Burst bucket has 50 msgs/ms = 50,000/s.
        assert!((t.peak_rate() - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn csv_shape() {
        let spans = vec![span(100, 1, 10)];
        let t = Timeline::from_spans(&spans, None, 1_000);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("t_ms,"));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        Timeline::from_spans(&[], None, 0);
    }
}
