//! Time-bucketed series: throughput and latency *over time*.
//!
//! The paper's dynamism story (bursts, scaling, function swaps) is only
//! visible in a time dimension the aggregate report flattens away. A
//! [`Timeline`] rebuckets a job's spans into fixed windows, yielding the
//! per-window series (messages/s, MB/s, mean latency) that the `dynamism`
//! harness binary prints and the autoscaler tests assert on.

use crate::span::{Component, Span};

/// One time bucket's aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeBucket {
    /// Bucket start, µs since the clock epoch.
    pub start_us: u64,
    /// Spans completed in this bucket.
    pub count: u64,
    /// Payload bytes completed in this bucket.
    pub bytes: u64,
    /// Mean service time of spans completing in this bucket (µs).
    pub mean_service_us: f64,
}

impl TimeBucket {
    /// Messages per second within the bucket.
    pub fn rate(&self, bucket_us: u64) -> f64 {
        if bucket_us == 0 {
            return 0.0;
        }
        self.count as f64 / (bucket_us as f64 / 1e6)
    }

    /// MB per second within the bucket.
    pub fn mb_rate(&self, bucket_us: u64) -> f64 {
        if bucket_us == 0 {
            return 0.0;
        }
        (self.bytes as f64 / 1e6) / (bucket_us as f64 / 1e6)
    }
}

/// A bucketed view over one component's spans.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Bucket width in µs.
    pub bucket_us: u64,
    /// Consecutive buckets from the first to the last span (empty buckets
    /// included, with zero counts).
    pub buckets: Vec<TimeBucket>,
}

impl Timeline {
    /// Bucket the spans of `component` (or all components when `None`) by
    /// completion time.
    pub fn from_spans(spans: &[Span], component: Option<&Component>, bucket_us: u64) -> Self {
        assert!(bucket_us > 0, "bucket width must be > 0");
        let selected: Vec<&Span> = spans
            .iter()
            .filter(|s| !s.error && component.is_none_or(|c| &s.component == c))
            .collect();
        if selected.is_empty() {
            return Self {
                bucket_us,
                buckets: Vec::new(),
            };
        }
        let first = selected.iter().map(|s| s.end_us).min().unwrap() / bucket_us;
        let last = selected.iter().map(|s| s.end_us).max().unwrap() / bucket_us;
        let n = (last - first + 1) as usize;
        let mut counts = vec![0u64; n];
        let mut bytes = vec![0u64; n];
        let mut service = vec![0u64; n];
        for s in &selected {
            let b = (s.end_us / bucket_us - first) as usize;
            counts[b] += 1;
            bytes[b] += s.bytes;
            service[b] += s.duration_us();
        }
        let buckets = (0..n)
            .map(|b| TimeBucket {
                start_us: (first + b as u64) * bucket_us,
                count: counts[b],
                bytes: bytes[b],
                mean_service_us: if counts[b] == 0 {
                    0.0
                } else {
                    service[b] as f64 / counts[b] as f64
                },
            })
            .collect();
        Self { bucket_us, buckets }
    }

    /// Peak per-bucket message rate.
    pub fn peak_rate(&self) -> f64 {
        self.buckets
            .iter()
            .map(|b| b.rate(self.bucket_us))
            .fold(0.0, f64::max)
    }

    /// CSV rendering: `t_ms,count,msgs_per_s,mb_per_s,mean_service_ms`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms,count,msgs_per_s,mb_per_s,mean_service_ms\n");
        for b in &self.buckets {
            out.push_str(&format!(
                "{:.1},{},{:.2},{:.4},{:.3}\n",
                b.start_us as f64 / 1e3,
                b.count,
                b.rate(self.bucket_us),
                b.mb_rate(self.bucket_us),
                b.mean_service_us / 1e3,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(end_us: u64, bytes: u64, dur: u64) -> Span {
        Span {
            job_id: 1,
            msg_id: end_us,
            component: Component::CloudProcessor,
            start_us: end_us - dur,
            end_us,
            bytes,
            error: false,
        }
    }

    #[test]
    fn empty_spans_empty_timeline() {
        let t = Timeline::from_spans(&[], None, 1000);
        assert!(t.buckets.is_empty());
        assert_eq!(t.peak_rate(), 0.0);
    }

    #[test]
    fn buckets_cover_span_range_contiguously() {
        let spans = vec![span(1_500, 10, 100), span(4_500, 10, 100)];
        let t = Timeline::from_spans(&spans, None, 1_000);
        // Buckets 1..=4 → 4 buckets, including empty 2 and 3.
        assert_eq!(t.buckets.len(), 4);
        assert_eq!(t.buckets[0].count, 1);
        assert_eq!(t.buckets[1].count, 0);
        assert_eq!(t.buckets[3].count, 1);
        assert_eq!(t.buckets[0].start_us, 1_000);
    }

    #[test]
    fn rates_are_per_second() {
        let spans: Vec<Span> = (0..10).map(|i| span(500 + i * 10, 1_000, 5)).collect();
        let t = Timeline::from_spans(&spans, None, 1_000);
        assert_eq!(t.buckets.len(), 1);
        // 10 msgs in a 1 ms bucket = 10,000 msgs/s.
        assert!((t.buckets[0].rate(1_000) - 10_000.0).abs() < 1e-9);
        // 10 KB in 1 ms = 10 MB/s.
        assert!((t.buckets[0].mb_rate(1_000) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn component_filter() {
        let mut spans = vec![span(100, 1, 10)];
        spans.push(Span {
            component: Component::Broker,
            ..span(150, 1, 10)
        });
        let t = Timeline::from_spans(&spans, Some(&Component::Broker), 1_000);
        assert_eq!(t.buckets.iter().map(|b| b.count).sum::<u64>(), 1);
    }

    #[test]
    fn errors_excluded() {
        let mut bad = span(100, 1, 10);
        bad.error = true;
        let t = Timeline::from_spans(&[bad], None, 1_000);
        assert!(t.buckets.is_empty());
    }

    #[test]
    fn mean_service_time() {
        let spans = vec![span(500, 1, 100), span(600, 1, 300)];
        let t = Timeline::from_spans(&spans, None, 1_000);
        assert!((t.buckets[0].mean_service_us - 200.0).abs() < 1e-9);
    }

    #[test]
    fn peak_rate_finds_burst() {
        let mut spans: Vec<Span> = (0..5).map(|i| span(1_000 + i * 100, 1, 10)).collect();
        spans.extend((0..50).map(|i| span(5_000 + i * 10, 1, 10)));
        let t = Timeline::from_spans(&spans, None, 1_000);
        // Burst bucket has 50 msgs/ms = 50,000/s.
        assert!((t.peak_rate() - 50_000.0).abs() < 1e-6);
    }

    #[test]
    fn csv_shape() {
        let spans = vec![span(100, 1, 10)];
        let t = Timeline::from_spans(&spans, None, 1_000);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.starts_with("t_ms,"));
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_bucket_panics() {
        Timeline::from_spans(&[], None, 0);
    }
}
