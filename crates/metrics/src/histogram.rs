//! A log-bucketed histogram for latency-like values.
//!
//! Recording is O(1) (a leading-zeros computation plus an array increment);
//! quantile queries walk the fixed bucket array. Precision is bounded: each
//! power-of-two range is split into [`SUB_BUCKETS`] linear sub-buckets, so
//! the relative quantile error is at most `1/SUB_BUCKETS` (6.25%) — plenty
//! for the latency distributions in the paper's figures, at a fraction of
//! the footprint of a full HDR histogram.

/// Linear sub-buckets per power-of-two range.
pub const SUB_BUCKETS: usize = 16;
/// Number of power-of-two ranges covered (values up to 2^40 µs ≈ 12 days).
const RANGES: usize = 40;
const NBUCKETS: usize = RANGES * SUB_BUCKETS;

/// A fixed-size log-bucketed histogram of `u64` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Box<[u64; NBUCKETS]>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: Box::new([0u64; NBUCKETS]),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        // Values below SUB_BUCKETS map 1:1 into the first range.
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        // `range` is the index of the highest set bit; split that
        // power-of-two span into SUB_BUCKETS linear sub-buckets.
        let range = 63 - value.leading_zeros() as usize;
        let base = range.saturating_sub(3); // first 4 bits fit in range 0
        let shift = range.saturating_sub(4);
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        (base * SUB_BUCKETS + sub).min(NBUCKETS - 1)
    }

    /// Representative (upper-bound) value for bucket `i`; inverse of
    /// [`Self::bucket_index`] up to bucket granularity.
    fn bucket_value(i: usize) -> u64 {
        if i < SUB_BUCKETS {
            return i as u64;
        }
        let base = i / SUB_BUCKETS;
        let sub = i % SUB_BUCKETS;
        let range = base + 3;
        let shift = range - 4;
        ((1u64 << range) | ((sub as u64) << shift)) + (1u64 << shift) - 1
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact arithmetic mean of recorded values (not bucketed).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// Exact minimum recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q` in `[0, 1]`. Returns the upper bound of the
    /// bucket containing the q-th value; exact `min`/`max` are substituted at
    /// the extremes.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min();
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Median (p50).
    pub fn median(&self) -> u64 {
        self.quantile(0.5)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// True if no values were recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert!(h.is_empty());
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..SUB_BUCKETS as u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.count(), 16);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        assert_eq!(h.mean(), 25.0);
        assert_eq!(h.sum(), 100);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        // Uniform values across several decades.
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        for q in [0.1, 0.25, 0.5, 0.9, 0.99] {
            let est = h.quantile(q) as f64;
            let exact = (q * 10_000.0).round() * 37.0;
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.08, "q={q} est={est} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn quantile_extremes_are_exact() {
        let mut h = Histogram::new();
        h.record(123);
        h.record(456_789);
        assert_eq!(h.quantile(0.0), 123);
        assert_eq!(h.quantile(1.0), 456_789);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(10);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 10);
        assert_eq!(a.max(), 1_000_000);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Histogram::new();
        a.record(42);
        let before = (a.count(), a.min(), a.max(), a.sum());
        a.merge(&Histogram::new());
        assert_eq!(before, (a.count(), a.min(), a.max(), a.sum()));
    }

    #[test]
    fn bucket_roundtrip_bounds() {
        // bucket_value(bucket_index(v)) must be >= v and within 1/SUB_BUCKETS.
        for v in [
            1u64,
            15,
            16,
            17,
            100,
            1_000,
            65_535,
            1 << 30,
            (1 << 35) + 12345,
        ] {
            let i = Histogram::bucket_index(v);
            let ub = Histogram::bucket_value(i);
            assert!(ub >= v, "v={v} i={i} ub={ub}");
            assert!(
                (ub - v) as f64 <= v as f64 / (SUB_BUCKETS as f64 / 2.0) + 1.0,
                "v={v} ub={ub}"
            );
        }
    }

    #[test]
    fn median_of_symmetric_data() {
        let mut h = Histogram::new();
        for v in 1..=1001u64 {
            h.record(v * 1000);
        }
        let med = h.median() as f64;
        assert!((med - 501_000.0).abs() / 501_000.0 < 0.07, "med={med}");
    }
}
