//! Property round-trip: `write_csv` → `read_csv` is the identity over
//! arbitrary spans covering *every* [`Component`] variant, including
//! `Network`/`Custom` labels built from a hostile character set (commas,
//! quotes, CR/LF, tabs) that would corrupt a naive unquoted CSV row.

use pilot_metrics::export::{component_from_label, span_from_row, span_to_row};
use pilot_metrics::{read_csv, write_csv, Component, Span};
use proptest::prelude::*;

/// Characters chosen to break unquoted CSV: delimiters, quotes, record
/// separators, plus benign filler.
const HOSTILE: &[char] = &[
    ',', '"', '\n', '\r', '\t', 'a', 'z', '0', '-', '>', ' ', 'é', '|',
];

/// Build a label from charset indices (the stub proptest has no string
/// strategy, so strings are generated via `collection::vec` of indices).
fn label_from(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|&i| HOSTILE[i % HOSTILE.len()])
        .collect()
}

/// Decode a component from a variant selector + label material. Covers all
/// seven variants; `Network`/`Custom` get the hostile label.
fn component_from(selector: usize, label: String) -> Component {
    match selector % 7 {
        0 => Component::EdgeProducer,
        1 => Component::EdgeProcessor,
        2 => Component::Broker,
        3 => Component::CloudProcessor,
        4 => Component::ParamServer,
        5 => Component::Network(label),
        _ => Component::Custom(label),
    }
}

fn tmp(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "pilot-metrics-prop-{}-{name}.csv",
        std::process::id()
    ));
    p
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        .. ProptestConfig::default()
    })]

    /// A single span of any shape survives row serialization.
    #[test]
    fn prop_row_roundtrip(
        selector in 0usize..7,
        label_idx in proptest::collection::vec(0usize..64, 0..12),
        job_id in 0u64..1 << 40,
        msg_id in 0u64..u64::MAX / 2,
        start in 0u64..1 << 40,
        dur in 0u64..1 << 20,
        bytes in 0u64..1 << 32,
        error in proptest::bool::ANY,
    ) {
        let span = Span {
            job_id,
            msg_id,
            component: component_from(selector, label_from(&label_idx)),
            start_us: start,
            end_us: start + dur,
            bytes,
            error,
        };
        let row = span_to_row(&span);
        let parsed = span_from_row(&row);
        prop_assert_eq!(parsed.as_ref(), Some(&span), "row {:?}", row);
    }

    /// A whole file of hostile spans survives the disk round-trip, in
    /// order, via the quote-aware record splitter.
    #[test]
    fn prop_file_roundtrip(
        shapes in proptest::collection::vec(
            (0usize..7, proptest::collection::vec(0usize..64, 0..10), 0u64..1000),
            1..20,
        ),
        case_tag in 0u64..u64::MAX / 2,
    ) {
        let spans: Vec<Span> = shapes
            .iter()
            .enumerate()
            .map(|(i, (selector, label_idx, start))| Span {
                job_id: 1,
                msg_id: i as u64,
                component: component_from(*selector, label_from(label_idx)),
                start_us: *start,
                end_us: *start + 5,
                bytes: 64,
                error: i % 3 == 0,
            })
            .collect();
        let path = tmp(&format!("file-{case_tag}"));
        write_csv(&path, &spans).unwrap();
        let loaded = read_csv(&path).unwrap();
        std::fs::remove_file(&path).ok();
        prop_assert_eq!(loaded, spans);
    }

    /// Label → component parsing is total and agrees with `label()` for
    /// whatever `Component::label` can emit.
    #[test]
    fn prop_label_roundtrip(
        selector in 0usize..7,
        label_idx in proptest::collection::vec(0usize..64, 0..12),
    ) {
        let c = component_from(selector, label_from(&label_idx));
        prop_assert_eq!(component_from_label(&c.label()), c);
    }
}
